//! Warm-recovery registration: `dump_states` →
//! `register_with_restore` must reproduce exactly the network a cold
//! registration builds — same sink results *and* same operator
//! memories (checked by maintaining both networks past the restore
//! point and comparing deltas).

use pgq_algebra::fra::Fra;
use pgq_common::intern::Symbol;
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;
use pgq_ivm::{DataflowNetwork, RegisterOptions, RestoreStates};

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

fn scan(var: &str, label: &str) -> Fra {
    Fra::ScanVertices {
        var: var.into(),
        labels: vec![s(label)],
        props: vec![],
        carry_map: false,
    }
}

fn edges(src: &str, dst: &str, ty: &str) -> Fra {
    Fra::ScanEdges {
        src: src.into(),
        edge: "e".into(),
        dst: dst.into(),
        types: vec![s(ty)],
        src_labels: vec![],
        dst_labels: vec![],
        src_props: vec![],
        edge_props: vec![],
        dst_props: vec![],
        dir: pgq_common::dir::Direction::Out,
        carry_maps: (false, false, false),
    }
}

/// A join plan with downstream distinct — exercises Join, scans and
/// Distinct restore paths.
fn join_plan() -> Fra {
    Fra::Distinct {
        input: Box::new(Fra::HashJoin {
            left: Box::new(scan("a", "A")),
            right: Box::new(edges("a", "b", "R")),
            left_keys: vec![0],
            right_keys: vec![0],
        }),
    }
}

fn seed_graph() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let mut tx = Transaction::new();
    let mut vs = Vec::new();
    for i in 0..6 {
        let label = if i % 2 == 0 { "A" } else { "B" };
        vs.push(tx.create_vertex([s(label)], Properties::new()));
    }
    for i in 0..5 {
        tx.create_edge(vs[i], vs[i + 1], s("R"), Properties::new());
    }
    g.apply(&tx).unwrap();
    g
}

fn results_of(net: &DataflowNetwork, sid: pgq_ivm::SinkId) -> Vec<(String, i64)> {
    let mut rows: Vec<(String, i64)> = net
        .view(sid)
        .results()
        .into_iter()
        .map(|(t, m)| (format!("{t}"), m))
        .collect();
    rows.sort();
    rows
}

#[test]
fn restore_reproduces_cold_registration() {
    let g = seed_graph();
    let plan = join_plan();

    let mut cold = DataflowNetwork::new();
    let cold_sid = cold.register("v", &plan, &g);
    let states = cold.dump_states();
    assert!(!states.is_empty());

    let mut warm = DataflowNetwork::new();
    let warm_sid = warm.register_with_restore("v", &plan, &g, RegisterOptions::default(), &states);
    assert_eq!(results_of(&cold, cold_sid), results_of(&warm, warm_sid));

    // The real test: operator *memories* must match, which only shows
    // up when maintenance probes them. Drive identical transactions
    // through both networks and compare.
    let mut g2 = g.clone();
    let mut tx = Transaction::new();
    let a = tx.create_vertex([s("A")], Properties::new());
    let ids: Vec<_> = g2.vertex_ids().collect();
    let tgt = *ids.iter().max().unwrap();
    tx.create_edge(a, tgt, s("R"), Properties::new());
    let events = g2.apply(&tx).unwrap();
    cold.on_transaction(&g2, &events);
    warm.on_transaction(&g2, &events);
    assert_eq!(results_of(&cold, cold_sid), results_of(&warm, warm_sid));
}

#[test]
fn empty_states_degrade_to_cold_start() {
    let g = seed_graph();
    let plan = join_plan();

    let mut cold = DataflowNetwork::new();
    let cold_sid = cold.register("v", &plan, &g);

    let mut warm = DataflowNetwork::new();
    let warm_sid = warm.register_with_restore(
        "v",
        &plan,
        &g,
        RegisterOptions::default(),
        &RestoreStates::new(),
    );
    assert_eq!(results_of(&cold, cold_sid), results_of(&warm, warm_sid));
}

#[test]
fn check_mismatch_is_a_miss_not_a_corruption() {
    let g = seed_graph();
    let plan = join_plan();

    let mut cold = DataflowNetwork::new();
    let cold_sid = cold.register("v", &plan, &g);

    // Re-key every stored bag under a wrong check hash: every lookup
    // must miss and recovery must silently cold-start — never restore
    // foreign state.
    let mut poisoned = RestoreStates::new();
    for (fp, check, bag) in cold.dump_states().iter() {
        poisoned.insert(fp, check ^ 0xFFFF_FFFF, bag.to_vec());
    }
    let mut warm = DataflowNetwork::new();
    let warm_sid =
        warm.register_with_restore("v", &plan, &g, RegisterOptions::default(), &poisoned);
    assert_eq!(results_of(&cold, cold_sid), results_of(&warm, warm_sid));
}

#[test]
fn dump_states_roundtrips_through_iter() {
    let g = seed_graph();
    let mut net = DataflowNetwork::new();
    net.register("v", &join_plan(), &g);
    let states = net.dump_states();
    let mut rebuilt = RestoreStates::new();
    for (fp, check, bag) in states.iter() {
        rebuilt.insert(fp, check, bag.to_vec());
        assert_eq!(states.lookup(fp, check), Some(bag));
        assert_eq!(states.lookup(fp, check ^ 1), None);
    }
    assert_eq!(rebuilt.len(), states.len());
}
