//! Counter-pinning for the ⨝ⁿ intersection on a known hub motif: the
//! sorted-run backend must *gallop* through a hub-degree candidate list
//! (probe counts bounded by the intersection output, not the input
//! degree), while the hash-trie backend pays one probe per element of
//! the smallest input. Guards against an accidental quadratic (or
//! linear-in-degree) fallback in the leapfrog cursors.
//!
//! Run with `cargo test -p pgq_ivm --features ivm-stats`. The counters
//! are process globals; this file keeps every assertion in one test and
//! lives in its own integration-test binary (= its own process), so it
//! cannot race the alloc_counters suite.
#![cfg(feature = "ivm-stats")]

use pgq_common::tuple::Tuple;
use pgq_common::value::Value;
use pgq_ivm::delta::Delta;
use pgq_ivm::stats::counters;
use pgq_ivm::wcoj::MultiwayJoinOp;

/// Hub degree of the test motif. The certified bench runs at ≥ 10k;
/// here the degree only needs to dwarf the pinned probe bounds.
const DEGREE: i64 = 1024;
/// Closing edges — the intersection output size.
const CLOSERS: i64 = 8;

fn edge(a: i64, b: i64) -> (Tuple, i64) {
    (Tuple::from_iter([Value::Int(a), Value::Int(b)]), 1)
}

/// Build a triangle operator (vars a=0, b=1, c=2 over inputs R0(a,b),
/// R1(b,c), R2(c,a)) seeded with the two-hub motif: R1 = out(hub 1) is
/// a high block of `DEGREE` values, R2 = in(hub 0) is a low block of
/// `DEGREE` values plus `CLOSERS` values from the high block. R0 is
/// left empty; the measured delta is the bridge edge (0, 1), whose pass
/// intersects the two hub-degree lists to bind c.
fn seeded(sorted: bool) -> MultiwayJoinOp {
    let var_of = vec![vec![0, 1], vec![1, 2], vec![2, 0]];
    let mut op = MultiwayJoinOp::with_backend(&var_of, 3, sorted);
    let r0 = Delta::default();
    let mut r1 = Delta::default();
    let mut r2 = Delta::default();
    for i in 0..DEGREE {
        let (t, m) = edge(1, 10_000 + i); // high block: out(hub 1)
        r1.push(t, m);
        let (t, m) = edge(100 + i, 0); // low block: in(hub 0)
        r2.push(t, m);
    }
    for k in 0..CLOSERS {
        // Every 128th high-block value also points at hub 0.
        let (t, m) = edge(10_000 + k * (DEGREE / CLOSERS), 0);
        r2.push(t, m);
    }
    let mut ignore = Delta::default();
    op.apply(&[&r0, &r1, &r2], &mut ignore);
    op
}

/// Counters for one bridge-edge delta (insert then delete) through a
/// freshly seeded operator; also checks the output bag.
fn measure(sorted: bool) -> counters::Counters {
    let mut op = seeded(sorted);
    let bridge = Delta::from_iter([edge(0, 1)]);
    let empty = Delta::default();
    counters::reset();
    let mut out = Delta::default();
    op.apply(&[&bridge, &empty, &empty], &mut out);
    out.consolidate_in_place();
    assert_eq!(
        out.iter().count(),
        CLOSERS as usize,
        "bridge insert must emit one triangle per closer (sorted={sorted})"
    );
    assert!(out.iter().all(|(_, m)| *m == 1));
    let retract = Delta::from_iter([(Tuple::from_iter([Value::Int(0), Value::Int(1)]), -1)]);
    let mut out = Delta::default();
    op.apply(&[&retract, &empty, &empty], &mut out);
    out.consolidate_in_place();
    assert_eq!(out.iter().count(), CLOSERS as usize);
    assert!(out.iter().all(|(_, m)| *m == -1));
    counters::snapshot()
}

#[test]
fn sorted_intersections_gallop_past_hub_degree() {
    let sorted = measure(true);
    let hash = measure(false);

    // The hash trie iterates the smallest candidate set — hub degree —
    // probing the other side per element, for both the insert and the
    // retraction.
    assert!(
        hash.intersect_probes >= 2 * DEGREE as u64,
        "hash backend should pay per-element probes at hub degree: {hash:?}"
    );
    assert_eq!(hash.gallop_steps, 0, "hash backend never gallops: {hash:?}");

    // The sorted backend leapfrogs: seeks are bounded by the output
    // (closers), not the degree — two orders of magnitude under the
    // hash probe count at this scale — and galloping takes logarithmic
    // steps per seek. The bounds are loose (4× headroom over measured)
    // but far below any linear-in-degree regression.
    assert!(
        sorted.intersect_probes <= 256,
        "sorted backend must not scan hub-degree lists: {sorted:?}"
    );
    assert!(
        sorted.gallop_steps > 0,
        "sorted backend should gallop: {sorted:?}"
    );
    assert!(
        sorted.gallop_steps <= 2_048,
        "gallop steps should stay logarithmic per seek: {sorted:?}"
    );
    assert!(
        sorted.intersect_probes * 8 <= hash.intersect_probes,
        "galloping should beat per-element probing by a wide margin: sorted {sorted:?} vs hash {hash:?}"
    );
}
