//! Shared-network behaviour: hash-consed node sharing across views,
//! refcounted teardown on drop, re-share on re-register, and targeted
//! event routing (a transaction touching only label `A` delivers zero
//! events to scans over label `B`).

use pgq_algebra::fra::{Fra, PropPush};
use pgq_common::intern::Symbol;
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;
use pgq_ivm::DataflowNetwork;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

fn scan(var: &str, label: &str) -> Fra {
    Fra::ScanVertices {
        var: var.into(),
        labels: vec![s(label)],
        props: vec![],
        carry_map: false,
    }
}

/// The paper-example shape: ©(a:A) ⋈ ⇑[(a)-[:R]->(b)].
fn join_plan() -> Fra {
    Fra::HashJoin {
        left: Box::new(scan("a", "A")),
        right: Box::new(Fra::ScanEdges {
            src: "a".into(),
            edge: "e".into(),
            dst: "b".into(),
            types: vec![s("R")],
            src_labels: vec![],
            dst_labels: vec![],
            src_props: vec![],
            edge_props: vec![],
            dst_props: vec![],
            dir: pgq_common::dir::Direction::Out,
            carry_maps: (false, false, false),
        }),
        left_keys: vec![0],
        right_keys: vec![0],
    }
}

#[test]
fn identical_views_share_one_operator_chain() {
    let g = PropertyGraph::new();
    let mut net = DataflowNetwork::new();
    let plan = join_plan();
    net.register("v0", &plan, &g);
    let nodes_after_first = net.node_count();
    assert_eq!(nodes_after_first, 3, "scan + scan + join");
    for i in 1..8 {
        net.register(format!("v{i}"), &plan, &g);
    }
    assert_eq!(
        net.node_count(),
        nodes_after_first,
        "8 identical views must share one chain, not instantiate 8"
    );
    assert_eq!(net.sink_count(), 8);
    // The root join reports all 8 sinks as consumers.
    let summaries = net.node_summaries();
    let join = summaries.iter().find(|n| n.label == "⋈").unwrap();
    assert_eq!(join.consumers, 8);
}

#[test]
fn overlapping_views_share_the_common_prefix() {
    let g = PropertyGraph::new();
    let mut net = DataflowNetwork::new();
    net.register("base", &join_plan(), &g);
    let base_nodes = net.node_count();
    // A distinct view over the same join: only the δ node is new.
    let distinct = Fra::Distinct {
        input: Box::new(join_plan()),
    };
    net.register("d", &distinct, &g);
    assert_eq!(net.node_count(), base_nodes + 1, "only δ is new");
}

#[test]
fn shared_chain_maintains_all_views() {
    let mut g = PropertyGraph::new();
    let mut net = DataflowNetwork::new();
    let plan = join_plan();
    let a = net.register("v0", &plan, &g);
    let b = net.register("v1", &plan, &g);

    let mut tx = Transaction::new();
    let va = tx.create_vertex([s("A")], Properties::new());
    let vb = tx.create_vertex([s("B")], Properties::new());
    tx.create_edge(va, vb, s("R"), Properties::new());
    let events = g.apply(&tx).unwrap();
    net.on_transaction(&g, &events);

    assert!(net.sink_changed(a) && net.sink_changed(b));
    assert_eq!(net.view(a).row_count(), 1);
    assert_eq!(net.view(b).row_count(), 1);
    assert_eq!(net.view(a).results(), net.view(b).results());
}

#[test]
fn drop_releases_nodes_only_when_last_view_is_gone() {
    let g = PropertyGraph::new();
    let mut net = DataflowNetwork::new();
    let plan = join_plan();
    let v0 = net.register("v0", &plan, &g);
    let v1 = net.register("v1", &plan, &g);
    // A third view sharing only the vertex scan.
    let filtered = Fra::Distinct {
        input: Box::new(scan("a", "A")),
    };
    let v2 = net.register("v2", &filtered, &g);
    assert_eq!(net.node_count(), 4, "2 scans + join + δ");

    // Dropping one of the two identical views frees nothing.
    net.drop_sink(v0);
    assert_eq!(net.node_count(), 4, "v1 still references the chain");

    // Dropping the second frees the join and edge scan, but NOT the
    // vertex scan (v2 still reads it).
    net.drop_sink(v1);
    assert_eq!(net.node_count(), 2, "©(A) + δ survive for v2");

    net.drop_sink(v2);
    assert_eq!(net.node_count(), 0, "last view gone, network empty");
}

#[test]
fn reregistering_an_identical_query_reshares() {
    let mut g = PropertyGraph::new();
    let mut tx = Transaction::new();
    let va = tx.create_vertex([s("A")], Properties::new());
    let vb = tx.create_vertex([s("B")], Properties::new());
    tx.create_edge(va, vb, s("R"), Properties::new());
    g.apply(&tx).unwrap();

    let mut net = DataflowNetwork::new();
    let plan = join_plan();
    let keeper = net.register("keeper", &plan, &g);
    let victim = net.register("victim", &plan, &g);
    assert_eq!(net.node_count(), 3);
    net.drop_sink(victim);
    assert_eq!(net.node_count(), 3);

    // Re-register: must re-share (node count unchanged) and come up
    // with the populated state immediately.
    let again = net.register("again", &plan, &g);
    assert_eq!(net.node_count(), 3, "re-registration re-shares");
    assert_eq!(net.view(again).row_count(), 1);
    assert_eq!(net.view(again).results(), net.view(keeper).results());
}

#[test]
fn events_route_only_to_scans_that_can_match() {
    let mut g = PropertyGraph::new();
    let mut net = DataflowNetwork::new();
    net.register("as", &scan("a", "A"), &g);
    net.register("bs", &scan("b", "B"), &g);

    // A transaction touching only label A.
    let mut tx = Transaction::new();
    tx.create_vertex([s("A")], Properties::new());
    let events = g.apply(&tx).unwrap();
    net.on_transaction(&g, &events);

    let summaries = net.node_summaries();
    let a_scan = summaries.iter().find(|n| n.label == "©(A)").unwrap();
    let b_scan = summaries.iter().find(|n| n.label == "©(B)").unwrap();
    assert_eq!(a_scan.delivered_events, 1, "A scan sees the A event");
    assert_eq!(
        b_scan.delivered_events, 0,
        "a transaction touching only label A must deliver zero events to scans over label B"
    );
}

#[test]
fn prop_events_route_by_key_interest() {
    let mut g = PropertyGraph::new();
    let (v, _) = g.add_vertex([s("A")], Properties::new());

    let mut net = DataflowNetwork::new();
    // One scan pushes `lang`, the other pushes nothing.
    let with_prop = Fra::ScanVertices {
        var: "a".into(),
        labels: vec![s("A")],
        props: vec![PropPush {
            prop: s("lang"),
            col: "a.lang".into(),
        }],
        carry_map: false,
    };
    net.register("plain", &scan("a", "A"), &g);
    net.register("lang", &with_prop, &g);

    let ev = g
        .set_vertex_prop(v, s("lang"), pgq_common::value::Value::str("en"))
        .unwrap();
    net.on_transaction(&g, &[ev]);

    let summaries = net.node_summaries();
    let plain = summaries
        .iter()
        .find(|n| n.label == "©(A)" && n.delivered_events == 0);
    let lang = summaries.iter().find(|n| n.delivered_events == 1);
    assert!(
        plain.is_some(),
        "the prop-insensitive scan must not see the prop event: {summaries:?}"
    );
    assert!(
        lang.is_some(),
        "the lang-pushing scan must see the prop event: {summaries:?}"
    );
    assert_eq!(net.view_named("lang").unwrap().row_count(), 1);
}

#[test]
fn edge_events_route_by_type() {
    let mut g = PropertyGraph::new();
    let edge_scan = |ty: &str| Fra::ScanEdges {
        src: "a".into(),
        edge: "e".into(),
        dst: "b".into(),
        types: vec![s(ty)],
        src_labels: vec![],
        dst_labels: vec![],
        src_props: vec![],
        edge_props: vec![],
        dst_props: vec![],
        dir: pgq_common::dir::Direction::Out,
        carry_maps: (false, false, false),
    };
    let mut net = DataflowNetwork::new();
    net.register("knows", &edge_scan("KNOWS"), &g);
    net.register("likes", &edge_scan("LIKES"), &g);

    let mut tx = Transaction::new();
    let a = tx.create_vertex([s("P")], Properties::new());
    let b = tx.create_vertex([s("P")], Properties::new());
    tx.create_edge(a, b, s("KNOWS"), Properties::new());
    let events = g.apply(&tx).unwrap();
    net.on_transaction(&g, &events);

    let summaries = net.node_summaries();
    let knows = summaries.iter().find(|n| n.label == "⇑(KNOWS)").unwrap();
    let likes = summaries.iter().find(|n| n.label == "⇑(LIKES)").unwrap();
    assert!(knows.delivered_events > 0);
    assert_eq!(
        likes.delivered_events, 0,
        "KNOWS-only transaction must not reach the LIKES scan"
    );
    assert_eq!(net.view_named("knows").unwrap().row_count(), 1);
    assert_eq!(net.view_named("likes").unwrap().row_count(), 0);
}

/// Tentpole property: an alpha-renamed duplicate of a registered plan
/// adds ZERO new operator nodes — canonicalisation renames both to the
/// same positional form before consing.
#[test]
fn alpha_renamed_duplicate_adds_zero_nodes() {
    let g = PropertyGraph::new();
    let mut net = DataflowNetwork::new();
    net.register("orig", &join_plan(), &g);
    let nodes = net.node_count();

    // The same shape with every variable renamed.
    let renamed = Fra::HashJoin {
        left: Box::new(scan("x", "A")),
        right: Box::new(Fra::ScanEdges {
            src: "x".into(),
            edge: "r".into(),
            dst: "y".into(),
            types: vec![s("R")],
            src_labels: vec![],
            dst_labels: vec![],
            src_props: vec![],
            edge_props: vec![],
            dst_props: vec![],
            dir: pgq_common::dir::Direction::Out,
            carry_maps: (false, false, false),
        }),
        left_keys: vec![0],
        right_keys: vec![0],
    };
    let v = net.register("renamed", &renamed, &g);
    assert_eq!(
        net.node_count(),
        nodes,
        "alpha-renamed duplicate must instantiate zero new nodes"
    );
    assert_eq!(net.sink_count(), 2);
    // The collapsed view still answers with its own schema names.
    assert_eq!(
        net.view(v).columns(),
        ["x", "r", "y"],
        "sink reports the renamed view's own columns"
    );
}

/// Latent-waste regression (pre-canonicalisation): registering the same
/// query twice under different variable names built two scan chains and
/// delivered every event twice. The collapsed form must deliver each
/// event exactly once.
#[test]
fn renamed_duplicate_delivers_each_event_once() {
    let mut g = PropertyGraph::new();
    let mut net = DataflowNetwork::new();
    net.register("as", &scan("a", "A"), &g);
    net.register("ps", &scan("p", "A"), &g);
    assert_eq!(net.node_count(), 1, "one shared scan node");

    let mut tx = Transaction::new();
    tx.create_vertex([s("A")], Properties::new());
    let events = g.apply(&tx).unwrap();
    net.on_transaction(&g, &events);

    let summaries = net.node_summaries();
    assert_eq!(summaries.len(), 1);
    assert_eq!(
        summaries[0].delivered_events, 1,
        "the collapsed scan sees the event once, not once per view"
    );
    assert_eq!(net.view_named("as").unwrap().row_count(), 1);
    assert_eq!(net.view_named("ps").unwrap().row_count(), 1);
}

/// A family of views differing only in a top-level σ predicate keeps one
/// shared stateful prefix; each member pays a private stateless σ.
#[test]
fn where_family_shares_the_stateful_prefix() {
    use pgq_algebra::expr::ScalarExpr;
    use pgq_common::value::Value;
    use pgq_parser::ast::BinOp;

    let g = PropertyGraph::new();
    let mut net = DataflowNetwork::new();
    let base = Fra::ScanVertices {
        var: "p".into(),
        labels: vec![s("Post")],
        props: vec![PropPush {
            prop: s("lang"),
            col: "p.lang".into(),
        }],
        carry_map: false,
    };
    net.register("all", &base, &g);
    let prefix_nodes = net.node_count();

    for (i, lang) in ["en", "de", "fr", "hu"].iter().enumerate() {
        let filtered = Fra::Filter {
            input: Box::new(base.clone()),
            predicate: ScalarExpr::Binary(
                BinOp::Eq,
                Box::new(ScalarExpr::Col(1)),
                Box::new(ScalarExpr::Lit(Value::str(*lang))),
            ),
        };
        net.register(format!("f{i}"), &filtered, &g);
        assert_eq!(
            net.node_count(),
            prefix_nodes + i + 1,
            "each WHERE-family member adds exactly its private σ"
        );
    }
    // The private σ nodes are stateless: all materialised state lives in
    // the shared prefix.
    let summaries = net.node_summaries();
    let sigmas: Vec<_> = summaries.iter().filter(|n| n.label == "σ").collect();
    assert_eq!(sigmas.len(), 4);
    assert!(sigmas.iter().all(|n| n.own_tuples == 0));
}

/// Regression: an edge scan pushing a property of a *label-free*
/// endpoint must receive property events for any vertex — folding both
/// endpoints' label requirements into one union starved the free side
/// and left views permanently stale.
#[test]
fn unlabeled_endpoint_prop_changes_reach_edge_scans() {
    use pgq_common::value::Value;

    let mut g = PropertyGraph::new();
    let (a, _) = g.add_vertex([s("A")], Properties::new());
    let (b, _) = g.add_vertex([], Properties::new());
    g.add_edge(a, b, s("R"), Properties::new()).unwrap();

    // ⇑[(a:A)-[:R]->(b)] pushing b.x — src labeled, dst label-free.
    let plan = Fra::ScanEdges {
        src: "a".into(),
        edge: "e".into(),
        dst: "b".into(),
        types: vec![s("R")],
        src_labels: vec![s("A")],
        dst_labels: vec![],
        src_props: vec![],
        edge_props: vec![],
        dst_props: vec![PropPush {
            prop: s("x"),
            col: "b.x".into(),
        }],
        dir: pgq_common::dir::Direction::Out,
        carry_maps: (false, false, false),
    };
    let mut net = DataflowNetwork::new();
    let v = net.register("v", &plan, &g);
    assert_eq!(net.view(v).results()[0].0.get(3), &Value::Null);

    let ev = g.set_vertex_prop(b, s("x"), Value::str("new")).unwrap();
    net.on_transaction(&g, &[ev]);
    assert_eq!(
        net.view(v).results()[0].0.get(3),
        &Value::str("new"),
        "property change on the label-free endpoint must be routed"
    );
}
