//! Network-level integration tests: hand-built FRA plans driven through
//! `MaterializedView`, checking multi-operator interactions that unit
//! tests of individual operators cannot see (delta ordering between
//! siblings, consolidation across a transaction, memory accounting).

use pgq_algebra::expr::{AggCall, AggFunc, ScalarExpr};
use pgq_algebra::fra::{Fra, PropPush};
use pgq_common::intern::Symbol;
use pgq_common::tuple::Tuple;
use pgq_common::value::Value;
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;
use pgq_ivm::MaterializedView;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

fn scan(var: &str, label: &str) -> Fra {
    Fra::ScanVertices {
        var: var.into(),
        labels: vec![s(label)],
        props: vec![],
        carry_map: false,
    }
}

#[test]
fn join_over_two_scans_via_edges() {
    // ©(a:A) ⋈[a] ⇑[(a)-[:R]->(b)] — the canonical two-node Rete beta.
    let edges = Fra::ScanEdges {
        src: "a".into(),
        edge: "e".into(),
        dst: "b".into(),
        types: vec![s("R")],
        src_labels: vec![],
        dst_labels: vec![],
        src_props: vec![],
        edge_props: vec![],
        dst_props: vec![],
        dir: pgq_common::dir::Direction::Out,
        carry_maps: (false, false, false),
    };
    let plan = Fra::HashJoin {
        left: Box::new(scan("a", "A")),
        right: Box::new(edges),
        left_keys: vec![0],
        right_keys: vec![0],
    };

    let mut g = PropertyGraph::new();
    let mut view = MaterializedView::create_unchecked("j", &plan, &g);
    assert_eq!(view.row_count(), 0);

    // Edge arrives in the SAME transaction as its endpoints.
    let mut tx = Transaction::new();
    let a = tx.create_vertex([s("A")], Properties::new());
    let b = tx.create_vertex([s("B")], Properties::new());
    tx.create_edge(a, b, s("R"), Properties::new());
    let events = g.apply(&tx).unwrap();
    let delta = view.on_transaction(&g, &events);
    assert_eq!(delta.consolidate().len(), 1);
    assert_eq!(view.row_count(), 1);

    // Removing the A label kills the join result without touching edges.
    let ids: Vec<_> = g.vertex_ids().collect();
    let va = *ids.iter().min().unwrap();
    let ev = g.remove_label(va, s("A")).unwrap().unwrap();
    view.on_transaction(&g, &[ev]);
    assert_eq!(view.row_count(), 0);
}

#[test]
fn aggregate_over_join_consolidates_per_transaction() {
    // count(*) over ©(a:A): a transaction adding 3 and removing 1 must
    // produce exactly one -old/+new pair at the aggregate.
    let plan = Fra::Aggregate {
        input: Box::new(scan("a", "A")),
        group: vec![],
        aggs: vec![(
            AggCall {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
            },
            "n".into(),
        )],
    };
    let mut g = PropertyGraph::new();
    let (v0, _) = g.add_vertex([s("A")], Properties::new());
    let mut view = MaterializedView::create_unchecked("agg", &plan, &g);
    assert_eq!(view.rows(), vec![Tuple::new(vec![Value::Int(1)])]);

    let mut tx = Transaction::new();
    tx.create_vertex([s("A")], Properties::new());
    tx.create_vertex([s("A")], Properties::new());
    tx.create_vertex([s("A")], Properties::new());
    tx.delete_vertex(v0, true);
    let events = g.apply(&tx).unwrap();
    let delta = view.on_transaction(&g, &events).consolidate();
    // Exactly two entries: -⟨1⟩ and +⟨3⟩.
    assert_eq!(delta.len(), 2);
    assert_eq!(view.rows(), vec![Tuple::new(vec![Value::Int(3)])]);
}

#[test]
fn distinct_over_projection() {
    // δ π[lang] ©(p:Post{lang}) — language list maintenance.
    let plan = Fra::Distinct {
        input: Box::new(Fra::Project {
            input: Box::new(Fra::ScanVertices {
                var: "p".into(),
                labels: vec![s("Post")],
                props: vec![PropPush {
                    prop: s("lang"),
                    col: "p.lang".into(),
                }],
                carry_map: false,
            }),
            items: vec![(ScalarExpr::Col(1), "lang".into())],
        }),
    };
    let mut g = PropertyGraph::new();
    let mut view = MaterializedView::create_unchecked("langs", &plan, &g);
    for lang in ["en", "en", "de"] {
        let mut tx = Transaction::new();
        tx.create_vertex(
            [s("Post")],
            Properties::from_iter([("lang", Value::str(lang))]),
        );
        let events = g.apply(&tx).unwrap();
        view.on_transaction(&g, &events);
    }
    assert_eq!(view.row_count(), 2);

    // Retag the only 'de' post: 'de' leaves, nothing else changes.
    let de = g
        .vertex_ids()
        .find(|&v| g.vertex_prop(v, s("lang")) == Value::str("de"))
        .unwrap();
    let ev = g.set_vertex_prop(de, s("lang"), Value::str("en")).unwrap();
    let delta = view.on_transaction(&g, &[ev]).consolidate();
    assert_eq!(delta.len(), 1);
    assert_eq!(view.row_count(), 1);
}

#[test]
fn memory_accounting_tracks_graph_size() {
    let plan = scan("a", "A");
    let mut g = PropertyGraph::new();
    let mut view = MaterializedView::create_unchecked("m", &plan, &g);
    for _ in 0..10 {
        let mut tx = Transaction::new();
        tx.create_vertex([s("A")], Properties::new());
        let events = g.apply(&tx).unwrap();
        view.on_transaction(&g, &events);
    }
    // Scan memory (10) + result bag (10).
    assert_eq!(view.memory_tuples(), 20);
    assert_eq!(view.maintenance_count(), 10);
}

#[test]
fn unit_plan_emits_single_row_once() {
    let plan = Fra::Project {
        input: Box::new(Fra::Unit),
        items: vec![(ScalarExpr::lit(42), "x".into())],
    };
    let mut g = PropertyGraph::new();
    let mut view = MaterializedView::create_unchecked("u", &plan, &g);
    assert_eq!(view.rows(), vec![Tuple::new(vec![Value::Int(42)])]);
    // Unrelated updates leave it alone.
    let mut tx = Transaction::new();
    tx.create_vertex([s("A")], Properties::new());
    let events = g.apply(&tx).unwrap();
    let delta = view.on_transaction(&g, &events);
    assert!(delta.consolidate().is_empty());
    assert_eq!(view.row_count(), 1);
}
