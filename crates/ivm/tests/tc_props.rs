//! Property tests for the transitive-closure operator: after ANY
//! sequence of edge insertions/deletions, the incrementally maintained
//! path set must equal a from-scratch DFS enumeration (the baseline's
//! `enumerate_paths`), for several hop-bound configurations.

use pgq_algebra::fra::VarLenSpec;
use pgq_common::dir::Direction;
use pgq_common::intern::Symbol;
use pgq_common::path::PathValue;
use pgq_common::tuple::Tuple;
use pgq_common::value::Value;
use pgq_eval::enumerate_paths;
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;
use pgq_ivm::delta::Delta;
use pgq_ivm::tc::VarLengthOp;
use proptest::prelude::*;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

fn spec(min: u32, max: Option<u32>, dir: Direction) -> VarLenSpec {
    VarLenSpec {
        types: vec![s("R")],
        dir,
        dst_labels: vec![],
        dst_props: vec![],
        dst_carry_map: false,
        edge_prop_filters: vec![],
        min,
        max,
    }
}

/// The oracle: all paths from every vertex, as sorted path values.
fn oracle(g: &PropertyGraph, sp: &VarLenSpec) -> Vec<PathValue> {
    let mut out: Vec<PathValue> = Vec::new();
    let mut srcs: Vec<_> = g.vertex_ids().collect();
    srcs.sort_unstable();
    for v in srcs {
        out.extend(enumerate_paths(g, v, sp));
    }
    out.sort();
    out
}

/// Extract the maintained path set from the operator's cumulative output.
struct Maintained {
    op: VarLengthOp,
    acc: std::collections::BTreeMap<PathValue, i64>,
}

impl Maintained {
    fn new(g: &PropertyGraph, sp: &VarLenSpec) -> Maintained {
        // Left input: every vertex as a single-column tuple, so the TC's
        // output covers all sources.
        let left: Delta = {
            let mut srcs: Vec<_> = g.vertex_ids().collect();
            srcs.sort_unstable();
            srcs.into_iter()
                .map(|v| (Tuple::new(vec![Value::Node(v)]), 1))
                .collect()
        };
        let mut op = VarLengthOp::new(1, 0, sp);
        let init = op.initial(g, left);
        let mut m = Maintained {
            op,
            acc: Default::default(),
        };
        m.absorb(init);
        m
    }

    fn absorb(&mut self, d: Delta) {
        for (t, mult) in d.consolidate().into_entries() {
            // Tuple: [src, dst, path] — the path is the last column.
            let p = t
                .get(t.arity() - 1)
                .as_path()
                .cloned()
                .expect("path column");
            let e = self.acc.entry(p.clone()).or_insert(0);
            *e += mult;
            if *e == 0 {
                self.acc.remove(&p);
            }
        }
        self.acc.retain(|_, m| *m != 0);
    }

    fn paths(&self) -> Vec<PathValue> {
        assert!(
            self.acc.values().all(|&m| m == 1),
            "path multiplicities must be 1"
        );
        self.acc.keys().cloned().collect()
    }
}

/// Random edit scripts over a small vertex set.
#[derive(Clone, Debug)]
enum Edit {
    Add(usize, usize),
    Del(usize),
}

fn edits() -> impl Strategy<Value = Vec<Edit>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..6, 0usize..6).prop_map(|(a, b)| Edit::Add(a, b)),
            (any::<usize>()).prop_map(Edit::Del),
        ],
        1..20,
    )
}

fn run_config(script: &[Edit], min: u32, max: Option<u32>, dir: Direction) {
    let sp = spec(min, max, dir);
    let mut g = PropertyGraph::new();
    let vs: Vec<_> = (0..6)
        .map(|_| g.add_vertex([s("N")], Properties::new()).0)
        .collect();
    let mut maintained = Maintained::new(&g, &sp);

    for ed in script {
        let mut tx = Transaction::new();
        match ed {
            Edit::Add(a, b) => {
                tx.create_edge(vs[*a], vs[*b], s("R"), Properties::new());
            }
            Edit::Del(pick) => {
                let mut edges: Vec<_> = g.edge_ids().collect();
                edges.sort_unstable();
                if edges.is_empty() {
                    continue;
                }
                tx.delete_edge(edges[pick % edges.len()]);
            }
        }
        let events = g.apply(&tx).unwrap();
        let delta = maintained.op.on_events(&g, &events, Delta::new());
        maintained.absorb(delta);
        assert_eq!(
            maintained.paths(),
            oracle(&g, &sp),
            "divergence after {ed:?} (min={min}, max={max:?}, dir={dir:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn tc_matches_dfs_unbounded(script in edits()) {
        run_config(&script, 1, None, Direction::Out);
    }

    #[test]
    fn tc_matches_dfs_bounded(script in edits()) {
        run_config(&script, 1, Some(3), Direction::Out);
    }

    #[test]
    fn tc_matches_dfs_min_two(script in edits()) {
        run_config(&script, 2, Some(4), Direction::Out);
    }

    #[test]
    fn tc_matches_dfs_zero_min(script in edits()) {
        run_config(&script, 0, Some(2), Direction::Out);
    }

    #[test]
    fn tc_matches_dfs_reverse(script in edits()) {
        run_config(&script, 1, Some(3), Direction::In);
    }

    #[test]
    fn tc_matches_dfs_undirected(script in edits()) {
        run_config(&script, 1, Some(2), Direction::Both);
    }
}
