//! With the `ivm-stats` feature on, the hot-path counters must show that
//! steady-state join maintenance materialises **zero** key tuples per
//! match — the whole point of the borrowed-key memories — while still
//! doing real probe work.
//!
//! Run with `cargo test -p pgq_ivm --features ivm-stats`.
#![cfg(feature = "ivm-stats")]

use pgq_common::tuple::Tuple;
use pgq_common::value::Value;
use pgq_ivm::delta::Delta;
use pgq_ivm::join::JoinOp;
use pgq_ivm::semijoin::SemiJoinOp;
use pgq_ivm::stats::counters;

fn t(vals: &[i64]) -> Tuple {
    vals.iter().map(|&i| Value::Int(i)).collect()
}

fn d(entries: &[(&[i64], i64)]) -> Delta {
    entries.iter().map(|(v, m)| (t(v), *m)).collect()
}

/// The counters are process-globals, so keep all assertions in one test
/// (the default test harness runs tests in parallel threads).
#[test]
fn join_hot_path_materialises_no_keys() {
    // Seed a join with fan-out on both sides.
    let mut j = JoinOp::new(vec![0], vec![0], 2);
    let left: Vec<(Tuple, i64)> = (0..50).map(|i| (t(&[i % 5, i]), 1)).collect();
    let right: Vec<(Tuple, i64)> = (0..50).map(|i| (t(&[i % 5, 100 + i]), 1)).collect();
    j.on_deltas(left.into_iter().collect(), right.into_iter().collect());

    // Steady state: a delta batch through the join must do probe work
    // but allocate no key tuples at all.
    counters::reset();
    let out = j.on_deltas(d(&[(&[2, 999], 1)]), d(&[(&[3, 888], 1), (&[3, 777], -1)]));
    let snap = counters::snapshot();
    assert!(!out.is_empty(), "the batch should produce matches");
    assert!(
        snap.probe_hits > 0,
        "probes should have yielded matches: {snap:?}"
    );
    assert_eq!(
        snap.key_materializations, 0,
        "JoinOp::on_deltas must not materialise key tuples: {snap:?}"
    );

    // Semijoin steady state: support keys already exist, so an update
    // batch probes borrowed keys only.
    let mut sj = SemiJoinOp::new(vec![0], vec![0], false);
    sj.on_deltas(
        (0..20).map(|i| (t(&[i % 4, i]), 1)).collect(),
        (0..4).map(|i| (t(&[i]), 1)).collect(),
    );
    counters::reset();
    let out = sj.on_deltas(d(&[(&[1, 500], 1)]), d(&[(&[2], 1)]));
    let snap = counters::snapshot();
    assert!(!out.is_empty());
    assert_eq!(
        snap.key_materializations, 0,
        "steady-state semijoin must not materialise key tuples: {snap:?}"
    );

    // A brand-new support key is the sanctioned exception: exactly one
    // materialisation.
    counters::reset();
    sj.on_deltas(Delta::new(), d(&[(&[99], 1)]));
    let snap = counters::snapshot();
    assert_eq!(
        snap.key_materializations, 1,
        "first sighting of a support key materialises exactly once: {snap:?}"
    );

    // Event routing: a transaction touching only label A delivers its
    // event to the A scan and to no other scan in the shared network.
    use pgq_algebra::fra::Fra;
    use pgq_common::intern::Symbol;
    use pgq_graph::props::Properties;
    use pgq_graph::store::PropertyGraph;
    use pgq_graph::tx::Transaction;
    use pgq_ivm::DataflowNetwork;

    let scan = |var: &str, label: &str| Fra::ScanVertices {
        var: var.into(),
        labels: vec![Symbol::intern(label)],
        props: vec![],
        carry_map: false,
    };
    let mut g = PropertyGraph::new();
    let mut net = DataflowNetwork::new();
    net.register("as", &scan("a", "A"), &g);
    net.register("bs", &scan("b", "B"), &g);

    let mut tx = Transaction::new();
    tx.create_vertex([Symbol::intern("A")], Properties::new());
    let events = g.apply(&tx).unwrap();
    counters::reset();
    net.on_transaction(&g, &events);
    let snap = counters::snapshot();
    assert_eq!(
        snap.scan_events_delivered, 1,
        "one event, one matching scan — the B scan must receive nothing: {snap:?}"
    );

    // Canonicalisation regression: the same query registered under a
    // different variable name used to build a second scan chain and
    // double every delivery. The alpha-renamed duplicate must collapse
    // onto the existing node, keeping the global delivery count at one
    // per event.
    let mut g = PropertyGraph::new();
    let mut net = DataflowNetwork::new();
    net.register("as", &scan("a", "A"), &g);
    net.register("ps", &scan("p", "A"), &g);
    assert_eq!(net.node_count(), 1, "renamed duplicate hash-conses");
    let mut tx = Transaction::new();
    tx.create_vertex([Symbol::intern("A")], Properties::new());
    let events = g.apply(&tx).unwrap();
    counters::reset();
    net.on_transaction(&g, &events);
    let snap = counters::snapshot();
    assert_eq!(
        snap.scan_events_delivered, 1,
        "two renamed views, one collapsed scan: each event is delivered once: {snap:?}"
    );

    // Parallel scheduler: the same transaction propagated serially and
    // through a 4-thread worker pool must deliver each event exactly
    // once per matching scan — the dirty-closure may schedule extra
    // nodes as no-ops, but routing stays serial and nothing is
    // re-delivered by the workers.
    use pgq_common::pool::WorkerPool;

    let build = || {
        let mut g = PropertyGraph::new();
        let mut net = DataflowNetwork::new();
        net.register("as", &scan("a", "A"), &g);
        net.register("bs", &scan("b", "B"), &g);
        let mut tx = Transaction::new();
        tx.create_vertex([Symbol::intern("A")], Properties::new());
        tx.create_vertex([Symbol::intern("B")], Properties::new());
        let events = g.apply(&tx).unwrap();
        (g, net, events)
    };
    let (g, mut net, events) = build();
    counters::reset();
    net.on_transaction(&g, &events);
    let serial_delivered = counters::snapshot().scan_events_delivered;
    assert_eq!(
        serial_delivered, 2,
        "two events, one matching scan each (serial)"
    );

    let (g, mut net, events) = build();
    let pool = WorkerPool::new(4);
    counters::reset();
    net.on_transaction_with(&g, &events, Some(&pool));
    let par_delivered = counters::snapshot().scan_events_delivered;
    assert_eq!(
        par_delivered, serial_delivered,
        "parallel pass must not deliver any event twice"
    );
}
