//! Model-based property test: the hash-bucketed, borrowed-key
//! [`IndexedBag`] must be observationally equal to a naive
//! `FxHashMap<Tuple, i64>` model under random update/probe
//! interleavings — including transient negative multiplicities, which
//! the counting join memories rely on inside a batch.

use pgq_common::fxhash::FxHashMap;
use pgq_common::tuple::Tuple;
use pgq_common::value::Value;
use pgq_ivm::delta::IndexedBag;
use proptest::prelude::*;

/// Key-column variants exercised per case: single columns, multi-column
/// (including permuted), and the empty key (cross-product memory).
const KEY_SETS: &[&[usize]] = &[&[0], &[1], &[0, 2], &[], &[2, 1]];

fn tuple(a: i64, b: i64, c: i64) -> Tuple {
    [a, b, c].into_iter().map(Value::Int).collect()
}

/// Apply one signed update to the naive model.
fn model_update(model: &mut FxHashMap<Tuple, i64>, t: &Tuple, m: i64) {
    if m == 0 {
        return;
    }
    let e = model.entry(t.clone()).or_insert(0);
    *e += m;
    if *e == 0 {
        model.remove(t);
    }
}

/// The model's answer to a probe: all entries whose key columns equal the
/// probe tuple's, sorted for comparison.
fn model_probe(model: &FxHashMap<Tuple, i64>, probe: &Tuple, cols: &[usize]) -> Vec<(Tuple, i64)> {
    let mut out: Vec<(Tuple, i64)> = model
        .iter()
        .filter(|(t, _)| cols.iter().all(|&c| t.get(c) == probe.get(c)))
        .map(|(t, m)| (t.clone(), *m))
        .collect();
    out.sort_by(|x, y| x.0.total_cmp(&y.0));
    out
}

fn sorted(mut v: Vec<(Tuple, i64)>) -> Vec<(Tuple, i64)> {
    v.sort_by(|x, y| x.0.total_cmp(&y.0));
    v
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn indexed_bag_equals_naive_model(
        // (op selector, three small values, signed multiplicity): small
        // domains force key collisions, duplicate tuples, and exact
        // cancellations.
        ops in proptest::collection::vec(
            (0..4usize, 0..3i64, 0..3i64, 0..3i64, -2..3i64),
            1..80,
        ),
        key_choice in 0..KEY_SETS.len(),
    ) {
        let cols = KEY_SETS[key_choice];
        let mut bag = IndexedBag::new(cols.to_vec());
        let mut model: FxHashMap<Tuple, i64> = FxHashMap::default();

        for &(op, a, b, c, m) in &ops {
            let t = tuple(a, b, c);
            match op {
                // Weighted 3:1 towards updates so state builds up.
                0..=2 => {
                    bag.update(&t, m);
                    model_update(&mut model, &t, m);
                }
                _ => {
                    // Borrowed-key probe with `t` as the probing tuple.
                    let got = sorted(
                        bag.probe(&t, cols).map(|(x, m)| (x.clone(), m)).collect(),
                    );
                    let want = model_probe(&model, &t, cols);
                    prop_assert_eq!(got, want, "probe diverged for {}", t);
                    // Standalone-key probe must agree with the borrowed
                    // one.
                    let key = t.project(cols);
                    let got_key = sorted(
                        bag.get(&key).map(|(x, m)| (x.clone(), m)).collect(),
                    );
                    let want = model_probe(&model, &t, cols);
                    prop_assert_eq!(got_key, want, "get({}) diverged", key);
                }
            }
            prop_assert_eq!(bag.distinct_len(), model.len());
        }

        // Final state: full contents agree, and every stored key answers
        // correctly.
        let got: FxHashMap<Tuple, i64> =
            bag.iter().map(|(t, m)| (t.clone(), m)).collect();
        prop_assert_eq!(&got, &model);
        for t in model.keys() {
            let got = sorted(bag.probe(t, cols).map(|(x, m)| (x.clone(), m)).collect());
            let want = model_probe(&model, t, cols);
            prop_assert_eq!(got, want);
        }
    }
}
