//! Per-operator statistics of a running network — `EXPLAIN ANALYZE` for
//! the dataflow: which memories hold how many tuples.

use std::fmt;

use crate::op::Op;

/// Statistics of one operator (and its subtree).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpStats {
    /// Operator label.
    pub name: String,
    /// Tuples materialised in this operator's own memories.
    pub own_tuples: usize,
    /// Children, in input order.
    pub children: Vec<OpStats>,
}

impl OpStats {
    /// Total tuples across the subtree.
    pub fn total_tuples(&self) -> usize {
        self.own_tuples
            + self
                .children
                .iter()
                .map(OpStats::total_tuples)
                .sum::<usize>()
    }

    fn render(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "{}{} [{} tuples]",
            "  ".repeat(depth),
            self.name,
            self.own_tuples
        );
        for c in &self.children {
            c.render(out, depth + 1);
        }
    }
}

impl fmt::Display for OpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s, 0);
        f.write_str(&s)
    }
}

impl Op {
    /// Collect per-operator statistics.
    pub fn stats(&self) -> OpStats {
        match self {
            Op::Unit { .. } => OpStats {
                name: "Unit".into(),
                own_tuples: 0,
                children: vec![],
            },
            Op::Vertices(s) => OpStats {
                name: "©".into(),
                own_tuples: s.memory_tuples(),
                children: vec![],
            },
            Op::Edges(s) => OpStats {
                name: "⇑".into(),
                own_tuples: s.memory_tuples(),
                children: vec![],
            },
            Op::Join { left, right, join } => OpStats {
                name: "⋈".into(),
                own_tuples: join.memory_tuples(),
                children: vec![left.stats(), right.stats()],
            },
            Op::SemiJoin { left, right, join } => OpStats {
                name: "⋉/▷".into(),
                own_tuples: join.memory_tuples(),
                children: vec![left.stats(), right.stats()],
            },
            Op::VarLength { left, tc } => OpStats {
                name: format!("⋈* [{} paths]", tc.path_count()),
                own_tuples: tc.memory_tuples(),
                children: vec![left.stats()],
            },
            Op::Filter { input, .. } => OpStats {
                name: "σ".into(),
                own_tuples: 0,
                children: vec![input.stats()],
            },
            Op::Project { input, .. } => OpStats {
                name: "π".into(),
                own_tuples: 0,
                children: vec![input.stats()],
            },
            Op::Distinct { input, state } => OpStats {
                name: "δ".into(),
                own_tuples: state.memory_tuples(),
                children: vec![input.stats()],
            },
            Op::Aggregate { input, state } => OpStats {
                name: "γ".into(),
                own_tuples: state.memory_tuples(),
                children: vec![input.stats()],
            },
            Op::Unwind { input, .. } => OpStats {
                name: "ω".into(),
                own_tuples: 0,
                children: vec![input.stats()],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_algebra::fra::Fra;
    use pgq_common::intern::Symbol;
    use pgq_graph::props::Properties;
    use pgq_graph::store::PropertyGraph;

    #[test]
    fn stats_tree_counts_memories() {
        let mut g = PropertyGraph::new();
        for _ in 0..3 {
            g.add_vertex([Symbol::intern("X")], Properties::new());
        }
        let fra = Fra::Distinct {
            input: Box::new(Fra::ScanVertices {
                var: "n".into(),
                labels: vec![Symbol::intern("X")],
                props: vec![],
                carry_map: false,
            }),
        };
        let mut op = Op::build(&fra);
        op.initial(&g);
        let stats = op.stats();
        assert_eq!(stats.name, "δ");
        assert_eq!(stats.own_tuples, 3);
        assert_eq!(stats.children[0].own_tuples, 3);
        assert_eq!(stats.total_tuples(), 6);
        let rendered = stats.to_string();
        assert!(rendered.contains("δ [3 tuples]"));
        assert!(rendered.contains("  © [3 tuples]"));
    }
}
