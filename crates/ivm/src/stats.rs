//! Per-operator statistics of a running network — `EXPLAIN ANALYZE` for
//! the dataflow: which memories hold how many tuples — plus, behind the
//! `ivm-stats` feature, process-wide allocation/rehash/routing counters
//! for the hot path (see [`counters`]).

use std::fmt;

/// Allocation/rehash/routing accounting for the IVM hot path.
///
/// With the `ivm-stats` feature enabled, the delta/join/network layers
/// count four things; without it, every hook compiles to a no-op:
///
/// * **key materialisations** — a key [`Tuple`](pgq_common::tuple::Tuple)
///   was allocated on a probe/update path. The borrowed-key join memory
///   keeps this at zero per match; only first-insertions of new support
///   keys may count.
/// * **probe hits** — matches yielded by
///   [`IndexedBag::probe`](crate::delta::IndexedBag::probe) (the
///   borrowed-key path; standalone-key
///   [`get`](crate::delta::IndexedBag::get) is not counted), to show
///   the counters cover real work.
/// * **rehashes** — a join-memory hash map grew its capacity during an
///   update (amortised table growth, not per-match cost).
/// * **scan event deliveries** — a change event was routed to a scan
///   node by the
///   [`DataflowNetwork`](crate::network::DataflowNetwork)'s label/type
///   routing index (one count per event per scan node). A transaction
///   touching only label `A` must deliver zero events to scans over
///   label `B`; the per-node breakdown is always available via
///   [`node_summaries`](crate::network::DataflowNetwork::node_summaries).
///
/// `crates/ivm/tests/alloc_counters.rs` (run via
/// `cargo test -p pgq_ivm --features ivm-stats`, also a CI step)
/// asserts `snapshot().key_materializations == 0` across a steady-state
/// delta batch while `probe_hits > 0`, and that routed deliveries track
/// only the scans that can match.
pub mod counters {
    /// Counter snapshot; obtain via [`snapshot`].
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct Counters {
        /// Key tuples materialised on probe/update paths.
        pub key_materializations: u64,
        /// Matches yielded by indexed-bag probes.
        pub probe_hits: u64,
        /// Join-memory hash-map capacity growth events.
        pub rehashes: u64,
        /// Change events delivered to scan nodes by the routing index.
        pub scan_events_delivered: u64,
        /// Registrations whose plan the cost-based planner changed.
        pub planner_plans_changed: u64,
        /// Tuples emitted by binary hash-join nodes — on cyclic
        /// patterns planned as join trees this grows with the wedge
        /// count, the intermediate blow-up ⨝ⁿ avoids.
        pub join_tuples_emitted: u64,
        /// Tuples emitted by ⨝ⁿ worst-case-optimal join nodes (motif
        /// instances only, never wedges).
        pub wcoj_tuples_emitted: u64,
        /// Exponential-search steps taken by the sorted-run ⨝ⁿ
        /// sub-indexes while seeking (galloping). Grows with
        /// log(skipped), not with hub degree — the counter-pinning
        /// tests use it to guard against a quadratic fallback.
        pub gallop_steps: u64,
        /// Candidate membership tests performed by the ⨝ⁿ per-variable
        /// intersection (hash probes on the hash-trie backend, leapfrog
        /// seeks on the sorted backend).
        pub intersect_probes: u64,
        /// Operator nodes whose state was restored probe-free from a
        /// durable snapshot during warm recovery.
        pub restore_hits: u64,
        /// Operator nodes that fell back to cold initialisation during
        /// warm recovery (fingerprint absent from the snapshot).
        pub restore_misses: u64,
    }

    #[cfg(feature = "ivm-stats")]
    mod imp {
        use std::sync::atomic::{AtomicU64, Ordering};

        pub static KEY_MATERIALIZATIONS: AtomicU64 = AtomicU64::new(0);
        pub static PROBE_HITS: AtomicU64 = AtomicU64::new(0);
        pub static REHASHES: AtomicU64 = AtomicU64::new(0);
        pub static SCAN_EVENTS_DELIVERED: AtomicU64 = AtomicU64::new(0);
        pub static PLANNER_PLANS_CHANGED: AtomicU64 = AtomicU64::new(0);
        pub static JOIN_TUPLES_EMITTED: AtomicU64 = AtomicU64::new(0);
        pub static WCOJ_TUPLES_EMITTED: AtomicU64 = AtomicU64::new(0);
        pub static GALLOP_STEPS: AtomicU64 = AtomicU64::new(0);
        pub static INTERSECT_PROBES: AtomicU64 = AtomicU64::new(0);
        pub static RESTORE_HITS: AtomicU64 = AtomicU64::new(0);
        pub static RESTORE_MISSES: AtomicU64 = AtomicU64::new(0);

        pub fn bump(c: &AtomicU64) {
            c.fetch_add(1, Ordering::Relaxed);
        }

        pub fn add(c: &AtomicU64, n: u64) {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record a key-tuple materialisation on a hot path.
    #[inline]
    pub fn key_materialized() {
        #[cfg(feature = "ivm-stats")]
        imp::bump(&imp::KEY_MATERIALIZATIONS);
    }

    /// Record one match yielded by an indexed-bag probe.
    #[inline]
    pub fn probe_hit() {
        #[cfg(feature = "ivm-stats")]
        imp::bump(&imp::PROBE_HITS);
    }

    /// Record one change event routed to a scan node.
    #[inline]
    pub fn scan_event_delivered() {
        #[cfg(feature = "ivm-stats")]
        imp::bump(&imp::SCAN_EVENTS_DELIVERED);
    }

    /// Record a registration whose plan the cost-based planner changed.
    #[inline]
    pub fn planner_plan_changed() {
        #[cfg(feature = "ivm-stats")]
        imp::bump(&imp::PLANNER_PLANS_CHANGED);
    }

    /// Record one tuple emitted by a binary hash-join node.
    #[inline]
    pub fn join_tuple_emitted() {
        #[cfg(feature = "ivm-stats")]
        imp::bump(&imp::JOIN_TUPLES_EMITTED);
    }

    /// Record one tuple emitted by a ⨝ⁿ worst-case-optimal join node.
    #[inline]
    pub fn wcoj_tuple_emitted() {
        #[cfg(feature = "ivm-stats")]
        imp::bump(&imp::WCOJ_TUPLES_EMITTED);
    }

    /// Record `n` exponential-search steps taken by one sorted-run seek.
    #[inline]
    pub fn gallop_steps(n: u64) {
        #[cfg(not(feature = "ivm-stats"))]
        let _ = n;
        #[cfg(feature = "ivm-stats")]
        imp::add(&imp::GALLOP_STEPS, n);
    }

    /// Record one candidate membership test in a ⨝ⁿ intersection.
    #[inline]
    pub fn intersect_probe() {
        #[cfg(feature = "ivm-stats")]
        imp::bump(&imp::INTERSECT_PROBES);
    }

    /// Record one operator node restored probe-free from a snapshot.
    #[inline]
    pub fn restore_hit() {
        #[cfg(feature = "ivm-stats")]
        imp::bump(&imp::RESTORE_HITS);
    }

    /// Record one operator node cold-initialised during warm recovery.
    #[inline]
    pub fn restore_miss() {
        #[cfg(feature = "ivm-stats")]
        imp::bump(&imp::RESTORE_MISSES);
    }

    /// Record a hash-map rehash if `after > before` capacity.
    #[inline]
    pub fn rehash_if_grew(before: usize, after: usize) {
        #[cfg(not(feature = "ivm-stats"))]
        let _ = (before, after);
        #[cfg(feature = "ivm-stats")]
        if after > before {
            imp::bump(&imp::REHASHES);
        }
    }

    /// Current counter values (all zero when the feature is off).
    pub fn snapshot() -> Counters {
        #[cfg(feature = "ivm-stats")]
        {
            use std::sync::atomic::Ordering;
            Counters {
                key_materializations: imp::KEY_MATERIALIZATIONS.load(Ordering::Relaxed),
                probe_hits: imp::PROBE_HITS.load(Ordering::Relaxed),
                rehashes: imp::REHASHES.load(Ordering::Relaxed),
                scan_events_delivered: imp::SCAN_EVENTS_DELIVERED.load(Ordering::Relaxed),
                planner_plans_changed: imp::PLANNER_PLANS_CHANGED.load(Ordering::Relaxed),
                join_tuples_emitted: imp::JOIN_TUPLES_EMITTED.load(Ordering::Relaxed),
                wcoj_tuples_emitted: imp::WCOJ_TUPLES_EMITTED.load(Ordering::Relaxed),
                gallop_steps: imp::GALLOP_STEPS.load(Ordering::Relaxed),
                intersect_probes: imp::INTERSECT_PROBES.load(Ordering::Relaxed),
                restore_hits: imp::RESTORE_HITS.load(Ordering::Relaxed),
                restore_misses: imp::RESTORE_MISSES.load(Ordering::Relaxed),
            }
        }
        #[cfg(not(feature = "ivm-stats"))]
        Counters::default()
    }

    /// Reset all counters to zero (no-op when the feature is off).
    pub fn reset() {
        #[cfg(feature = "ivm-stats")]
        {
            use std::sync::atomic::Ordering;
            imp::KEY_MATERIALIZATIONS.store(0, Ordering::Relaxed);
            imp::PROBE_HITS.store(0, Ordering::Relaxed);
            imp::REHASHES.store(0, Ordering::Relaxed);
            imp::SCAN_EVENTS_DELIVERED.store(0, Ordering::Relaxed);
            imp::PLANNER_PLANS_CHANGED.store(0, Ordering::Relaxed);
            imp::JOIN_TUPLES_EMITTED.store(0, Ordering::Relaxed);
            imp::WCOJ_TUPLES_EMITTED.store(0, Ordering::Relaxed);
            imp::GALLOP_STEPS.store(0, Ordering::Relaxed);
            imp::INTERSECT_PROBES.store(0, Ordering::Relaxed);
            imp::RESTORE_HITS.store(0, Ordering::Relaxed);
            imp::RESTORE_MISSES.store(0, Ordering::Relaxed);
        }
    }
}

/// Statistics of one operator (and its subtree). Built by
/// [`DataflowNetwork::stats_of`](crate::network::DataflowNetwork::stats_of);
/// a node shared between views appears in every referencing view's tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpStats {
    /// Operator label.
    pub name: String,
    /// Tuples materialised in this operator's own memories.
    pub own_tuples: usize,
    /// Children, in input order.
    pub children: Vec<OpStats>,
}

impl OpStats {
    /// Total tuples across the subtree.
    pub fn total_tuples(&self) -> usize {
        self.own_tuples
            + self
                .children
                .iter()
                .map(OpStats::total_tuples)
                .sum::<usize>()
    }

    fn render(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "{}{} [{} tuples]",
            "  ".repeat(depth),
            self.name,
            self.own_tuples
        );
        for c in &self.children {
            c.render(out, depth + 1);
        }
    }
}

impl fmt::Display for OpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s, 0);
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use crate::MaterializedView;
    use pgq_algebra::fra::Fra;
    use pgq_common::intern::Symbol;
    use pgq_graph::props::Properties;
    use pgq_graph::store::PropertyGraph;

    #[test]
    fn stats_tree_counts_memories() {
        let mut g = PropertyGraph::new();
        for _ in 0..3 {
            g.add_vertex([Symbol::intern("X")], Properties::new());
        }
        let fra = Fra::Distinct {
            input: Box::new(Fra::ScanVertices {
                var: "n".into(),
                labels: vec![Symbol::intern("X")],
                props: vec![],
                carry_map: false,
            }),
        };
        let view = MaterializedView::create_unchecked("s", &fra, &g);
        let stats = view.network_stats();
        assert_eq!(stats.name, "δ");
        assert_eq!(stats.own_tuples, 3);
        assert_eq!(stats.children[0].own_tuples, 3);
        assert_eq!(stats.total_tuples(), 6);
        let rendered = stats.to_string();
        assert!(rendered.contains("δ [3 tuples]"));
        assert!(rendered.contains("  © [3 tuples]"));
    }
}
