#![warn(missing_docs)]
//! # pgq-ivm
//!
//! The incremental view maintenance engine: a Rete-style delta-propagation
//! network over FRA plans, with counting bag semantics (Gupta–Mumick /
//! Griffin–Libkin) and an incremental transitive-closure operator that
//! maintains Cypher-style edge-distinct paths as **atomic** values — the
//! paper's proposal for reconciling IVM with path ordering.
//!
//! ## Architecture: one shared dataflow network
//!
//! All operators live in an engine-owned [`DataflowNetwork`] — a flat
//! arena of operator nodes forming a DAG, not a per-view tree:
//!
//! * **Node sharing (hash-consing).** Registering a view walks its FRA
//!   plan bottom-up and reuses any node whose canonical
//!   [fingerprint](pgq_algebra::fingerprint) and full structure match an
//!   already-instantiated subplan. N overlapping views cost one shared
//!   operator chain plus their private suffixes; views are refcounted
//!   sinks, and dropping one releases only nodes no other view reaches.
//! * **Targeted event routing.** Scan nodes are indexed by vertex label
//!   and edge type (with property-key interest filters); each committed
//!   transaction's [`ChangeEvent`]s are delivered only to scans that can
//!   match them, instead of replaying every event through every view.
//! * **Delta pooling.** Every dataflow edge's buffer comes from a
//!   transaction-scoped pool and returns to it once consumed, so
//!   steady-state maintenance does not allocate per operator layer.
//! * **Topological scheduling.** A transaction is one pass over the
//!   dirty subgraph in ascending depth order; each stateful node updates
//!   its memories and appends its output delta for its consumers.
//!
//! Entry points: [`DataflowNetwork`] for engines serving many views;
//! [`MaterializedView`] as the standalone single-view façade. Feed
//! either the [`ChangeEvent`]s of each committed transaction and read
//! the maintained result bags back.
//!
//! [`ChangeEvent`]: pgq_graph::delta::ChangeEvent

pub mod aggregate;
pub mod basic;
pub mod delta;
pub mod distinct;
pub mod join;
pub mod network;
pub mod scan;
pub mod semijoin;
pub mod stats;
pub mod tc;
pub mod view;
pub mod wcoj;

pub use delta::Delta;
pub use network::{
    plan_stats, planner_enabled, sorted_wcoj_enabled, wcoj_enabled, DataflowNetwork, NodeId,
    NodeSummary, RegisterOptions, RestoreStates, SinkId, TxFootprint, ViewRef,
};
pub use view::MaterializedView;
