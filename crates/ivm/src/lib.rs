#![warn(missing_docs)]
//! # pgq-ivm
//!
//! The incremental view maintenance engine: a Rete-style delta-propagation
//! network over FRA plans, with counting bag semantics (Gupta–Mumick /
//! Griffin–Libkin) and an incremental transitive-closure operator that
//! maintains Cypher-style edge-distinct paths as **atomic** values — the
//! paper's proposal for reconciling IVM with path ordering.
//!
//! Entry point: [`MaterializedView`]. Feed it the [`ChangeEvent`]s of each
//! committed transaction and read the maintained result bag back.
//!
//! [`ChangeEvent`]: pgq_graph::delta::ChangeEvent

pub mod aggregate;
pub mod basic;
pub mod delta;
pub mod distinct;
pub mod join;
pub mod op;
pub mod scan;
pub mod semijoin;
pub mod stats;
pub mod tc;
pub mod view;

pub use delta::Delta;
pub use op::Op;
pub use view::MaterializedView;
