//! Incremental hash join with indexed memories on both sides.
//!
//! Standard bilinear delta rule over bags:
//! `Δ(L ⋈ R) = ΔL ⋈ R  ∪  (L + ΔL) ⋈ ΔR`.
//!
//! The hot path is allocation-free per match: memories are probed via
//! [`IndexedBag::probe`] (no key tuple is built), matches are consumed by
//! borrow (no clone into a temporary `Vec`), and output values are
//! assembled in a reused scratch buffer so each emitted tuple costs
//! exactly its own `Arc` allocation.

use pgq_common::tuple::Tuple;
use pgq_common::value::Value;

use crate::delta::{Delta, IndexedBag};
use crate::stats::counters;

/// A counting hash-join node. Output schema: left ++ (right minus its key
/// columns) — matching [`pgq_algebra::fra::Fra::HashJoin`].
#[derive(Clone, Debug)]
pub struct JoinOp {
    left_mem: IndexedBag,
    right_mem: IndexedBag,
    right_keep: Vec<usize>,
    /// Optional output permutation over the virtual row
    /// `left ++ right[right_keep]`, folded into emission so consumers
    /// that reorder columns (the ⋈* destination join) don't pay a second
    /// tuple materialisation per row.
    out_perm: Option<Vec<usize>>,
    /// Reused output-row assembly buffer.
    scratch: Vec<Value>,
}

/// Emit the (optionally permuted) output row `left ++ right[right_keep]`
/// with multiplicity `mult`, assembling the values in `scratch`.
fn emit(
    scratch: &mut Vec<Value>,
    l: &Tuple,
    r: &Tuple,
    right_keep: &[usize],
    out_perm: &Option<Vec<usize>>,
    mult: i64,
    out: &mut Delta,
) {
    scratch.clear();
    scratch.reserve(l.arity() + right_keep.len());
    match out_perm {
        None => {
            scratch.extend_from_slice(l.values());
            for &i in right_keep {
                scratch.push(r.get(i).clone());
            }
        }
        Some(perm) => {
            let la = l.arity();
            for &i in perm {
                if i < la {
                    scratch.push(l.get(i).clone());
                } else {
                    scratch.push(r.get(right_keep[i - la]).clone());
                }
            }
        }
    }
    counters::join_tuple_emitted();
    out.push(Tuple::from_slice(scratch), mult);
}

impl JoinOp {
    /// Create a join; `right_arity` is needed to compute the non-key
    /// columns of the right side that survive into the output.
    pub fn new(left_keys: Vec<usize>, right_keys: Vec<usize>, right_arity: usize) -> JoinOp {
        let right_keep = (0..right_arity)
            .filter(|i| !right_keys.contains(i))
            .collect();
        JoinOp {
            left_mem: IndexedBag::new(left_keys),
            right_mem: IndexedBag::new(right_keys),
            right_keep,
            out_perm: None,
            scratch: Vec::new(),
        }
    }

    /// Reorder emitted rows by `perm` (indexes into the unpermuted output
    /// `left ++ right[right_keep]`). Must cover every output column.
    pub fn with_output_perm(mut self, perm: Vec<usize>) -> JoinOp {
        self.out_perm = Some(perm);
        self
    }

    /// Tuples materialised in the two memories.
    pub fn memory_tuples(&self) -> usize {
        self.left_mem.distinct_len() + self.right_mem.distinct_len()
    }

    /// Process one batch of deltas from both inputs.
    pub fn on_deltas(&mut self, dl: Delta, dr: Delta) -> Delta {
        let mut out = Delta::new();
        self.apply(&dl, &dr, &mut out);
        out
    }

    /// Process one batch of borrowed deltas, appending output rows to
    /// `out`. Inputs are borrowed so a shared upstream node's delta can
    /// feed several joins without cloning.
    pub fn apply(&mut self, dl: &Delta, dr: &Delta, out: &mut Delta) {
        let JoinOp {
            left_mem,
            right_mem,
            right_keep,
            out_perm,
            scratch,
        } = self;
        // ΔL ⋈ R_old (right memory not yet updated).
        for (lt, lm) in dl.iter() {
            for (rt, rm) in right_mem.probe(lt, left_mem.key_cols()) {
                emit(scratch, lt, rt, right_keep, out_perm, lm * rm, out);
            }
        }
        // Update left memory → L_new.
        for (lt, lm) in dl.iter() {
            left_mem.update(lt, *lm);
        }
        // L_new ⋈ ΔR
        for (rt, rm) in dr.iter() {
            for (lt, lm) in left_mem.probe(rt, right_mem.key_cols()) {
                emit(scratch, lt, rt, right_keep, out_perm, lm * rm, out);
            }
        }
        for (rt, rm) in dr.iter() {
            right_mem.update(rt, *rm);
        }
    }

    /// Rebuild both memories from full input bags **without probing**
    /// — the warm-recovery path. Post-state is identical to
    /// `apply(dl, dr, &mut discard)` (apply's emissions are pure
    /// output; the memories only ever absorb the inputs), but the
    /// O(|L ⋈ R|) match enumeration a cold initialisation performs and
    /// throws away is skipped entirely.
    pub fn restore(&mut self, dl: &Delta, dr: &Delta) {
        for (lt, lm) in dl.iter() {
            self.left_mem.update(lt, *lm);
        }
        for (rt, rm) in dr.iter() {
            self.right_mem.update(rt, *rm);
        }
    }

    /// Reconstruct the full current output bag from the two memories
    /// (L ⋈ R as of now), appending to `out`. Used when a newly
    /// registered view attaches to an already-populated shared node and
    /// needs its complete state rather than a delta.
    pub fn replay_into(&mut self, out: &mut Delta) {
        let JoinOp {
            left_mem,
            right_mem,
            right_keep,
            out_perm,
            scratch,
        } = self;
        for (lt, lm) in left_mem.iter() {
            for (rt, rm) in right_mem.probe(lt, left_mem.key_cols()) {
                emit(scratch, lt, rt, right_keep, out_perm, lm * rm, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_common::value::Value;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    fn d(entries: &[(&[i64], i64)]) -> Delta {
        entries.iter().map(|(v, m)| (t(v), *m)).collect()
    }

    #[test]
    fn basic_join() {
        // L(a, x) ⋈[a] R(a, y) → (a, x, y)
        let mut j = JoinOp::new(vec![0], vec![0], 2);
        let out = j
            .on_deltas(d(&[(&[1, 10], 1)]), d(&[(&[1, 100], 1)]))
            .consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10, 100]), 1)]);
    }

    #[test]
    fn delta_join_both_sides_same_batch_counts_once() {
        let mut j = JoinOp::new(vec![0], vec![0], 2);
        // Pre-populate.
        j.on_deltas(d(&[(&[1, 10], 1)]), d(&[(&[1, 100], 1)]));
        // Add one tuple on each side in the same batch.
        let out = j
            .on_deltas(d(&[(&[1, 20], 1)]), d(&[(&[1, 200], 1)]))
            .consolidate();
        // New pairs: (20,100), (10,200), (20,200) — exactly three.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn retraction_propagates() {
        let mut j = JoinOp::new(vec![0], vec![0], 2);
        j.on_deltas(d(&[(&[1, 10], 1)]), d(&[(&[1, 100], 1)]));
        let out = j
            .on_deltas(d(&[(&[1, 10], -1)]), Delta::new())
            .consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10, 100]), -1)]);
    }

    #[test]
    fn multiplicities_multiply() {
        let mut j = JoinOp::new(vec![0], vec![0], 2);
        let out = j
            .on_deltas(d(&[(&[1, 10], 2)]), d(&[(&[1, 100], 3)]))
            .consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10, 100]), 6)]);
    }

    #[test]
    fn cross_product_when_no_keys() {
        let mut j = JoinOp::new(vec![], vec![], 1);
        let out = j
            .on_deltas(d(&[(&[1], 1), (&[2], 1)]), d(&[(&[7], 1)]))
            .consolidate();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn multi_column_keys() {
        let mut j = JoinOp::new(vec![0, 1], vec![1, 0], 3);
        // L(a,b,...) joins R(y,b,a) on (a=R.2? no: left (0,1)=(a,b), right (1,0)=(R1,R0)).
        let out = j
            .on_deltas(d(&[(&[1, 2, 5], 1)]), d(&[(&[2, 1, 9], 1)]))
            .consolidate();
        // Right keep = col 2 → output (1,2,5,9).
        assert_eq!(out.into_entries(), vec![(t(&[1, 2, 5, 9]), 1)]);
    }
}
