//! Incremental hash join with indexed memories on both sides.
//!
//! Standard bilinear delta rule over bags:
//! `Δ(L ⋈ R) = ΔL ⋈ R  ∪  (L + ΔL) ⋈ ΔR`.

use pgq_common::tuple::Tuple;

use crate::delta::{Delta, IndexedBag};

/// A counting hash-join node. Output schema: left ++ (right minus its key
/// columns) — matching [`pgq_algebra::fra::Fra::HashJoin`].
#[derive(Clone, Debug)]
pub struct JoinOp {
    left_mem: IndexedBag,
    right_mem: IndexedBag,
    right_keep: Vec<usize>,
}

impl JoinOp {
    /// Create a join; `right_arity` is needed to compute the non-key
    /// columns of the right side that survive into the output.
    pub fn new(left_keys: Vec<usize>, right_keys: Vec<usize>, right_arity: usize) -> JoinOp {
        let right_keep = (0..right_arity)
            .filter(|i| !right_keys.contains(i))
            .collect();
        JoinOp {
            left_mem: IndexedBag::new(left_keys),
            right_mem: IndexedBag::new(right_keys),
            right_keep,
        }
    }

    /// Tuples materialised in the two memories.
    pub fn memory_tuples(&self) -> usize {
        self.left_mem.distinct_len() + self.right_mem.distinct_len()
    }

    fn emit(&self, l: &Tuple, r: &Tuple, mult: i64, out: &mut Delta) {
        let mut vals = Vec::with_capacity(l.arity() + self.right_keep.len());
        vals.extend(l.values().iter().cloned());
        for &i in &self.right_keep {
            vals.push(r.get(i).clone());
        }
        out.push(Tuple::new(vals), mult);
    }

    /// Process one batch of deltas from both inputs.
    pub fn on_deltas(&mut self, dl: Delta, dr: Delta) -> Delta {
        let mut out = Delta::new();
        // ΔL ⋈ R_old
        for (lt, lm) in dl.iter() {
            let key = lt.project(self.left_mem.key_cols());
            // Right memory not yet updated → R_old.
            let matches: Vec<(Tuple, i64)> = self
                .right_mem
                .get(&key)
                .map(|(t, c)| (t.clone(), c))
                .collect();
            for (rt, rm) in matches {
                self.emit(lt, &rt, lm * rm, &mut out);
            }
        }
        // Update left memory → L_new.
        for (lt, lm) in dl.iter() {
            self.left_mem.update(lt, *lm);
        }
        // L_new ⋈ ΔR
        for (rt, rm) in dr.iter() {
            let key = rt.project(self.right_mem.key_cols());
            let matches: Vec<(Tuple, i64)> = self
                .left_mem
                .get(&key)
                .map(|(t, c)| (t.clone(), c))
                .collect();
            for (lt, lm) in matches {
                self.emit(&lt, rt, lm * rm, &mut out);
            }
        }
        for (rt, rm) in dr.iter() {
            self.right_mem.update(rt, *rm);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_common::value::Value;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    fn d(entries: &[(&[i64], i64)]) -> Delta {
        entries.iter().map(|(v, m)| (t(v), *m)).collect()
    }

    #[test]
    fn basic_join() {
        // L(a, x) ⋈[a] R(a, y) → (a, x, y)
        let mut j = JoinOp::new(vec![0], vec![0], 2);
        let out = j
            .on_deltas(d(&[(&[1, 10], 1)]), d(&[(&[1, 100], 1)]))
            .consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10, 100]), 1)]);
    }

    #[test]
    fn delta_join_both_sides_same_batch_counts_once() {
        let mut j = JoinOp::new(vec![0], vec![0], 2);
        // Pre-populate.
        j.on_deltas(d(&[(&[1, 10], 1)]), d(&[(&[1, 100], 1)]));
        // Add one tuple on each side in the same batch.
        let out = j
            .on_deltas(d(&[(&[1, 20], 1)]), d(&[(&[1, 200], 1)]))
            .consolidate();
        // New pairs: (20,100), (10,200), (20,200) — exactly three.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn retraction_propagates() {
        let mut j = JoinOp::new(vec![0], vec![0], 2);
        j.on_deltas(d(&[(&[1, 10], 1)]), d(&[(&[1, 100], 1)]));
        let out = j
            .on_deltas(d(&[(&[1, 10], -1)]), Delta::new())
            .consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10, 100]), -1)]);
    }

    #[test]
    fn multiplicities_multiply() {
        let mut j = JoinOp::new(vec![0], vec![0], 2);
        let out = j
            .on_deltas(d(&[(&[1, 10], 2)]), d(&[(&[1, 100], 3)]))
            .consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10, 100]), 6)]);
    }

    #[test]
    fn cross_product_when_no_keys() {
        let mut j = JoinOp::new(vec![], vec![], 1);
        let out = j
            .on_deltas(d(&[(&[1], 1), (&[2], 1)]), d(&[(&[7], 1)]))
            .consolidate();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn multi_column_keys() {
        let mut j = JoinOp::new(vec![0, 1], vec![1, 0], 3);
        // L(a,b,...) joins R(y,b,a) on (a=R.2? no: left (0,1)=(a,b), right (1,0)=(R1,R0)).
        let out = j
            .on_deltas(d(&[(&[1, 2, 5], 1)]), d(&[(&[2, 1, 9], 1)]))
            .consolidate();
        // Right keep = col 2 → output (1,2,5,9).
        assert_eq!(out.into_entries(), vec![(t(&[1, 2, 5, 9]), 1)]);
    }
}
