//! The shared dataflow network: one arena-allocated operator DAG serving
//! every registered view.
//!
//! This is the Rete idea the paper's propagation network is built on:
//! structurally identical relational-algebra subplans are compiled
//! **once** and shared across standing queries. Where the engine
//! previously gave every materialised view a private recursive operator
//! tree (cost O(#views) per transaction even for overlapping views),
//! the [`DataflowNetwork`] keeps a flat arena of operator nodes
//! ([`NodeId`]-indexed, explicit child→parent edges) in which a node may
//! feed any number of consumers, and views are refcounted **sink**
//! entries over the shared DAG.
//!
//! Three mechanisms keep per-transaction cost proportional to affected
//! state rather than to the number of registered queries:
//!
//! * **Canonicalisation + hash-consing** —
//!   [`register`](DataflowNetwork::register) first rewrites the plan
//!   into the [canonical form](pgq_algebra::canon) (alpha-renamed
//!   positional columns, sorted commutative structure, fused σ chains,
//!   normalised π positions), then keys every canonical subplan by its
//!   [fingerprint](pgq_algebra::fingerprint) and reuses an existing
//!   node when a full structural equality check confirms the match. N
//!   overlapping views instantiate one shared operator chain, not N —
//!   and "overlapping" is judged up to alpha-equivalence, so
//!   `MATCH (a:Post)` and `MATCH (p:Post)` are the same scan. A family
//!   of views differing only in a top-level `WHERE` shares its whole
//!   stateful prefix (scans, join memories) and pays one private
//!   stateless σ (plus its π) each, because canonicalisation keeps
//!   top-level filters as a *suffix* above the prefix instead of
//!   pushing them into it.
//! * **Targeted event routing** — scans are indexed by vertex label and
//!   edge type (plus property-key interest), and a transaction's change
//!   events are delivered only to the scan nodes that can possibly
//!   match them; a transaction touching only label `A` delivers zero
//!   events to scans over label `B`. Because alpha-equivalent scans
//!   collapse to one node, each event is delivered (and counted) once
//!   per *distinct* scan, not once per registered view.
//! * **Delta pooling** — every dataflow edge's delta buffer is drawn
//!   from a transaction-scoped pool and returned after its consumers
//!   have read it, so steady-state maintenance performs no per-layer
//!   allocation.
//!
//! Propagation is a single topologically-scheduled pass: dirty nodes are
//! processed in ascending depth order (every edge goes from a
//! strictly shallower node to a deeper one), each node reading its
//! children's pooled output deltas by reference and appending its own.
//!
//! With a [`WorkerPool`]
//! ([`on_transaction_with`](DataflowNetwork::on_transaction_with)), the
//! same pass runs *in parallel*: the arena's explicit child→parent
//! edges are the task graph, per-node atomic pending counters track how
//! many dirty children a node still waits on, and a node is handed to a
//! worker the moment its counter drains to zero. Every node still runs
//! exactly once per transaction with inputs that are a pure function of
//! the transaction — never of the schedule — which is the determinism
//! contract: for any thread count the per-view consolidated results are
//! identical to the serial pass (see ARCHITECTURE.md, "Parallel delta
//! propagation").
//!
//! # Invariants
//!
//! * **Consing is sound** because equality is checked on the full
//!   canonical plan (`Fra: PartialEq`), never on the fingerprint alone;
//!   a hash collision can therefore cost a linear probe, never shared
//!   state between different plans. Canonicalisation itself only
//!   permutes output columns (recorded in its mapping and undone by a
//!   tail projection), so a shared node computes the *identical* bag
//!   for every view that reaches it.
//! * **The routing index is rebuilt eagerly** on register/drop and
//!   never inside a measured transaction. Keep it that way: a
//!   lazily-stale index pushes the rebuild into the first transaction
//!   of engines cloned from a registered-but-never-maintained template,
//!   which benchmarks clone-per-iteration — it showed up as a phantom
//!   30% regression before this was learned (see ROADMAP performance
//!   notes, PR 3).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

use parking_lot::{Condvar, Mutex};
use pgq_algebra::expr::{AggCall, ScalarExpr};
use pgq_algebra::fra::Fra;
use pgq_algebra::plan::WcojMode;
use pgq_common::fxhash::FxHashMap;
use pgq_common::intern::Symbol;
use pgq_common::pool::WorkerPool;
use pgq_common::tuple::Tuple;
use pgq_common::value::Value;
use pgq_graph::delta::ChangeEvent;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::{NodeRef, Transaction, TxOp};

use crate::aggregate::AggregateOp;
use crate::basic::{filter_into, project_into, unwind_into};
use crate::delta::Delta;
use crate::distinct::DistinctOp;
use crate::join::JoinOp;
use crate::scan::{EdgeRouting, EdgeScan, EdgeScanSpec, ScanRouting, VertexRouting, VertexScan};
use crate::semijoin::SemiJoinOp;
use crate::stats::{counters, OpStats};
use crate::tc::VarLengthOp;
use crate::wcoj::MultiwayJoinOp;

/// Handle of an operator node in the network arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    fn ix(self) -> usize {
        self.0 as usize
    }
}

/// Handle of a view (sink) registered over the network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SinkId(u32);

impl SinkId {
    fn ix(self) -> usize {
        self.0 as usize
    }
}

/// One operator of the dataflow DAG. Mirrors the FRA operator set;
/// child links are arena indices instead of boxed subtrees.
#[derive(Clone, Debug)]
enum NodeKind {
    /// Constant single empty tuple.
    Unit { emitted: bool },
    /// © scan.
    Vertices(VertexScan),
    /// ⇑ scan.
    Edges(EdgeScan),
    /// Hash join.
    Join {
        left: NodeId,
        right: NodeId,
        op: JoinOp,
    },
    /// Semijoin / antijoin.
    SemiJoin {
        left: NodeId,
        right: NodeId,
        op: SemiJoinOp,
    },
    /// ⋈* variable-length join (owns internal scans, so it also
    /// receives routed events).
    VarLength { left: NodeId, op: Box<VarLengthOp> },
    /// σ.
    Filter {
        input: NodeId,
        predicate: ScalarExpr,
    },
    /// π, with its reusable row-assembly buffer.
    Project {
        input: NodeId,
        items: Vec<(ScalarExpr, String)>,
        scratch: Vec<Value>,
    },
    /// δ.
    Distinct { input: NodeId, op: DistinctOp },
    /// γ.
    Aggregate { input: NodeId, op: AggregateOp },
    /// ω.
    Unwind { input: NodeId, expr: ScalarExpr },
    /// ⨝ⁿ worst-case optimal n-ary join. One child link per input
    /// *position* — positions sharing an upstream node link it twice
    /// (each reference is its own dependency edge, like a self-join).
    Multiway {
        inputs: Vec<NodeId>,
        op: Box<MultiwayJoinOp>,
    },
}

impl NodeKind {
    /// Child links, one entry per incoming reference, in input order.
    fn children(&self) -> Vec<NodeId> {
        match self {
            NodeKind::Unit { .. } | NodeKind::Vertices(_) | NodeKind::Edges(_) => Vec::new(),
            NodeKind::Join { left, right, .. } | NodeKind::SemiJoin { left, right, .. } => {
                vec![*left, *right]
            }
            NodeKind::VarLength { left, .. } => vec![*left],
            NodeKind::Filter { input, .. }
            | NodeKind::Project { input, .. }
            | NodeKind::Distinct { input, .. }
            | NodeKind::Aggregate { input, .. }
            | NodeKind::Unwind { input, .. } => vec![*input],
            NodeKind::Multiway { inputs, .. } => inputs.clone(),
        }
    }

    /// Tuples materialised in this node's own memories.
    fn own_tuples(&self) -> usize {
        match self {
            NodeKind::Unit { .. }
            | NodeKind::Filter { .. }
            | NodeKind::Project { .. }
            | NodeKind::Unwind { .. } => 0,
            NodeKind::Vertices(s) => s.memory_tuples(),
            NodeKind::Edges(s) => s.memory_tuples(),
            NodeKind::Join { op, .. } => op.memory_tuples(),
            NodeKind::SemiJoin { op, .. } => op.memory_tuples(),
            NodeKind::VarLength { op, .. } => op.memory_tuples(),
            NodeKind::Distinct { op, .. } => op.memory_tuples(),
            NodeKind::Aggregate { op, .. } => op.memory_tuples(),
            NodeKind::Multiway { op, .. } => op.memory_tuples(),
        }
    }

    /// Display label (the same operator glyphs the old tree stats used).
    fn label(&self) -> String {
        fn syms(s: &[Symbol]) -> String {
            s.iter()
                .map(|x| x.resolve().to_string())
                .collect::<Vec<_>>()
                .join(",")
        }
        match self {
            NodeKind::Unit { .. } => "Unit".into(),
            NodeKind::Vertices(s) => format!("©({})", syms(&s.routing().labels)),
            NodeKind::Edges(s) => format!("⇑({})", syms(&s.routing().types)),
            NodeKind::Join { .. } => "⋈".into(),
            NodeKind::SemiJoin { .. } => "⋉/▷".into(),
            NodeKind::VarLength { op, .. } => format!("⋈* [{} paths]", op.path_count()),
            NodeKind::Filter { .. } => "σ".into(),
            NodeKind::Project { .. } => "π".into(),
            NodeKind::Distinct { .. } => "δ".into(),
            NodeKind::Aggregate { .. } => "γ".into(),
            NodeKind::Unwind { .. } => "ω".into(),
            NodeKind::Multiway { inputs, .. } => format!("⨝ⁿ [{} rels]", inputs.len()),
        }
    }
}

/// Arena slot: the operator plus its DAG bookkeeping.
#[derive(Clone, Debug)]
struct Node {
    kind: NodeKind,
    /// Canonical subplan this node implements — the hash-consing
    /// identity. Equal plans (confirmed by full structural comparison,
    /// so fingerprint collisions are harmless) share one node.
    plan: Fra,
    fingerprint: u64,
    /// Consumer nodes, one entry per incoming edge (a self-join parent
    /// appears twice).
    parents: Vec<NodeId>,
    /// Views reading this node's output directly.
    sinks: Vec<SinkId>,
    /// Change events routed to this node since creation (scan-bearing
    /// nodes only; the routing-exactness metric).
    delivered_events: u64,
}

/// A view: a refcounted sink over the shared DAG.
#[derive(Clone, Debug)]
struct Sink {
    name: String,
    columns: Vec<String>,
    root: NodeId,
    results: FxHashMap<Tuple, i64>,
    maintenance_count: u64,
    /// Generation of the last transaction that changed this view; the
    /// delta itself stays in the root's pooled output buffer (see
    /// [`DataflowNetwork::last_delta`]) — no copy is made.
    changed_gen: u64,
}

/// Pool of cleared [`Delta`] buffers: steady-state maintenance draws
/// every dataflow edge's buffer from here instead of allocating one per
/// operator layer per transaction.
#[derive(Clone, Debug, Default)]
struct DeltaPool {
    free: Vec<Delta>,
}

/// Keep at most this many spare buffers (bounds worst-case retention
/// after a wide transient).
const POOL_CAP: usize = 64;

impl DeltaPool {
    fn get(&mut self) -> Delta {
        self.free.pop().unwrap_or_default()
    }

    fn put(&mut self, mut d: Delta) {
        if self.free.len() < POOL_CAP {
            d.clear();
            self.free.push(d);
        }
    }
}

/// Per-transaction scheduling state, generation-stamped so nothing needs
/// clearing between transactions.
#[derive(Clone, Debug, Default)]
struct Scheduler {
    /// Min-heap of (depth, slot): nodes to process this transaction.
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// Topological depth per slot (0 = leaf; every edge increases it).
    depth: Vec<u32>,
    /// Generation at which the slot was queued (dedup for `heap`).
    queued: Vec<u64>,
    /// Generation at which events were routed to the slot.
    event_gen: Vec<u64>,
    /// Generation for which `outputs[slot]` is valid.
    out_gen: Vec<u64>,
    /// Generation at which `outputs[slot]` was last consolidated (skip
    /// duplicate consolidation when several consumers want it).
    consolidated_gen: Vec<u64>,
    /// Output delta of each processed node (pooled buffers).
    outputs: Vec<Delta>,
    /// Event-delivery dedup stamp (one count per event per node).
    deliver_stamp: Vec<u64>,
    /// Slots holding pooled outputs from the last transaction.
    produced: Vec<u32>,
}

impl Scheduler {
    fn grow(&mut self, n: usize) {
        if self.depth.len() < n {
            self.depth.resize(n, 0);
            self.queued.resize(n, 0);
            self.event_gen.resize(n, 0);
            self.out_gen.resize(n, 0);
            self.consolidated_gen.resize(n, 0);
            self.outputs.resize_with(n, Delta::new);
            self.deliver_stamp.resize(n, 0);
        }
    }

    /// Queue `slot` for processing this generation (idempotent).
    fn mark(&mut self, generation: u64, slot: u32) {
        if self.queued[slot as usize] != generation {
            self.queued[slot as usize] = generation;
            self.heap.push(Reverse((self.depth[slot as usize], slot)));
        }
    }
}

/// Reusable buffers of the parallel pass (transient per-transaction
/// state; cloning a network starts with fresh empty buffers).
#[derive(Debug, Default)]
struct ParState {
    /// Dirty-closure slots in discovery order (the task list).
    slots: Vec<u32>,
    /// slot → task index (valid only for slots queued this generation).
    task_of: Vec<u32>,
    /// Flattened per-task lists of parent *task* indices, with
    /// `parents_ix` holding the prefix offsets (`len = tasks + 1`).
    parents_flat: Vec<u32>,
    parents_ix: Vec<u32>,
    /// Dirty children a task still waits on (readiness counters).
    pending: Vec<AtomicU32>,
    /// Consolidate the task's own output (sink-facing or feeding δ/γ)?
    consolidate: Vec<bool>,
    /// Reusable ready-queue storage.
    ready: Vec<u32>,
}

impl Clone for ParState {
    fn clone(&self) -> ParState {
        ParState::default()
    }
}

/// Shared context of one parallel pass. Workers get disjoint `&mut`
/// access to arena slots and output buffers through the raw pointers;
/// see the safety argument on [`DataflowNetwork::on_transaction_par`].
struct ParShared<'a> {
    nodes: *mut Option<Node>,
    outputs: *mut Delta,
    queued: &'a [u64],
    event_gen: &'a [u64],
    slots: &'a [u32],
    parents_flat: &'a [u32],
    parents_ix: &'a [u32],
    pending: &'a [AtomicU32],
    consolidate: &'a [bool],
    generation: u64,
    g: &'a PropertyGraph,
    events: &'a [ChangeEvent],
    /// Tasks whose pending count reached zero, awaiting a worker.
    queue: Mutex<Vec<u32>>,
    work_cv: Condvar,
    /// Tasks not yet completed (pass-termination condition).
    remaining: AtomicUsize,
    /// Terminal abort: a task panicked, the ready queue was drained, and
    /// `remaining` will never drain to zero — workers exit on this flag
    /// instead. Set under the queue mutex so parked workers cannot miss
    /// the wake-up.
    aborted: AtomicBool,
    /// First panic payload raised by any worker's task.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// Safety: the raw pointers are only ever dereferenced at indices a
// worker owns (its current task's slot) or at indices whose owning task
// has completed (ordered by the AcqRel pending counters and the queue
// mutex); everything else is shared immutable borrows of `Sync` data.
unsafe impl Sync for ParShared<'_> {}

/// Everything a worker touches through `ParShared` must itself be safe
/// to share across threads (compile-time check).
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<PropertyGraph>();
    assert_sync::<ChangeEvent>();
    assert_sync::<Delta>();
};

impl ParShared<'_> {
    /// One worker's slice of the pass: pop ready tasks until none
    /// remain, running each exactly once.
    fn work_loop(&self) {
        loop {
            let task = {
                let mut q = self.queue.lock();
                loop {
                    // Checked before popping so no queued task runs
                    // after an abort (the abort path also drains the
                    // queue, but an in-flight completion may repopulate
                    // it afterwards).
                    if self.aborted.load(Ordering::Acquire) {
                        break None;
                    }
                    if let Some(t) = q.pop() {
                        break Some(t);
                    }
                    if self.remaining.load(Ordering::Acquire) == 0 {
                        break None;
                    }
                    self.work_cv.wait(&mut q);
                }
            };
            let Some(t) = task else { return };
            // Safety: `t` was popped from the ready queue, so this
            // worker owns it exclusively and all of its inputs flushed.
            match catch_unwind(AssertUnwindSafe(|| unsafe { self.run_task(t) })) {
                Ok(()) => self.complete(t),
                Err(payload) => {
                    {
                        let mut first = self.panic.lock();
                        if first.is_none() {
                            *first = Some(payload);
                        }
                    }
                    // Abort the pass terminally: raise the flag and
                    // drain queued tasks under the lock, then wake every
                    // parked worker. `remaining` is left untouched — a
                    // racing in-flight completion decrements it without
                    // being able to resurrect the pass.
                    {
                        let mut q = self.queue.lock();
                        self.aborted.store(true, Ordering::Release);
                        q.clear();
                    }
                    self.work_cv.notify_all();
                    return;
                }
            }
        }
    }

    /// Mark `t` complete: decrement each parent's readiness counter,
    /// queue parents that reach zero, and wake parked workers. Every
    /// wake-relevant state change happens while (or after) holding the
    /// queue mutex, so a worker between its empty-queue check and
    /// parking cannot miss its notification.
    fn complete(&self, t: u32) {
        let lo = self.parents_ix[t as usize] as usize;
        let hi = self.parents_ix[t as usize + 1] as usize;
        if lo != hi {
            let mut woke = 0usize;
            {
                let mut q = self.queue.lock();
                for &p in &self.parents_flat[lo..hi] {
                    // AcqRel: each child's releasing decrement
                    // happens-before the final acquiring one, so the
                    // parent's worker observes every child's output.
                    if self.pending[p as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                        q.push(p);
                        woke += 1;
                    }
                }
            }
            if woke == 1 {
                self.work_cv.notify_one();
            } else if woke > 1 {
                self.work_cv.notify_all();
            }
        }
        // Saturating decrement: `remaining` stops at zero instead of
        // wrapping, so no completion ordering can make the termination
        // check at the top of the work loop spuriously fail forever.
        let drained = self
            .remaining
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1));
        if drained == Ok(1) {
            drop(self.queue.lock());
            self.work_cv.notify_all();
        }
    }

    /// Run one node. Mirrors the borrow-by-reference branch of
    /// [`DataflowNetwork::run_node`]; the parallel pass never steals
    /// buffers or consolidates a child in place — a child feeding
    /// Distinct/γ consolidates its *own* output at production (the
    /// `consolidate` flag), which yields the same delta contents.
    ///
    /// # Safety
    ///
    /// `t` must be a ready task owned exclusively by the caller; see the
    /// safety argument on [`DataflowNetwork::run_parallel_pass`].
    unsafe fn run_task(&self, t: u32) {
        let slot = self.slots[t as usize] as usize;
        // Safety: exclusive access to this task's slot and buffer.
        let node = unsafe { (*self.nodes.add(slot)).as_mut().expect("live node") };
        let out = unsafe { &mut *self.outputs.add(slot) };
        let empty = Delta::new();
        let child = |id: NodeId| -> &Delta {
            if self.queued[id.ix()] == self.generation {
                // Safety: `id` is a task of this pass and an input of
                // `t`, so its owning worker has flushed and released it.
                unsafe { &*self.outputs.add(id.ix()) }
            } else {
                &empty
            }
        };
        let ev: &[ChangeEvent] = if self.event_gen[slot] == self.generation {
            self.events
        } else {
            &[]
        };
        match &mut node.kind {
            NodeKind::Unit { .. } => {}
            NodeKind::Vertices(scan) => scan.on_events_into(self.g, ev, out),
            NodeKind::Edges(scan) => scan.on_events_into(self.g, ev, out),
            NodeKind::Join { left, right, op } => op.apply(child(*left), child(*right), out),
            NodeKind::SemiJoin { left, right, op } => op.apply(child(*left), child(*right), out),
            NodeKind::VarLength { left, op } => op.on_events_into(self.g, ev, child(*left), out),
            NodeKind::Filter { input, predicate } => filter_into(predicate, child(*input), out),
            NodeKind::Project {
                input,
                items,
                scratch,
            } => project_into(items, child(*input), scratch, out),
            NodeKind::Distinct { input, op } => op.apply(child(*input), out),
            NodeKind::Aggregate { input, op } => op.apply(child(*input), out),
            NodeKind::Unwind { input, expr } => unwind_into(expr, child(*input), out),
            NodeKind::Multiway { inputs, op } => {
                let refs: Vec<&Delta> = inputs.iter().map(|&i| child(i)).collect();
                op.apply(&refs, out);
            }
        }
        if self.consolidate[t as usize] {
            out.consolidate_in_place();
        }
    }
}

/// One vertex-indexed routing target.
#[derive(Clone, Debug)]
struct VertexRoute {
    node: NodeId,
    /// Vertex creations/removals matter (scan membership).
    structural: bool,
    /// Label requirement. For vertex scans this is conjunctive (the
    /// vertex must carry all of them); for the endpoint interest of an
    /// edge scan it is a union (any overlap can matter).
    labels: Vec<Symbol>,
    conjunctive: bool,
    /// Property keys that can change emitted tuples; `None` = all.
    prop_keys: Option<Vec<Symbol>>,
}

impl VertexRoute {
    fn labels_admit(&self, has: impl Fn(Symbol) -> bool) -> bool {
        if self.labels.is_empty() {
            return true;
        }
        if self.conjunctive {
            self.labels.iter().all(|&l| has(l))
        } else {
            self.labels.iter().any(|&l| has(l))
        }
    }

    fn cares_about_key(&self, key: Symbol) -> bool {
        match &self.prop_keys {
            None => true,
            Some(keys) => keys.contains(&key),
        }
    }
}

/// One edge-indexed routing target.
#[derive(Clone, Debug)]
struct EdgeRoute {
    node: NodeId,
    /// Property keys that can change emitted tuples; `None` = all.
    prop_keys: Option<Vec<Symbol>>,
}

/// The label/type → scan-node routing index.
#[derive(Clone, Debug, Default)]
struct RoutingIndex {
    vertex_by_label: FxHashMap<Symbol, Vec<VertexRoute>>,
    /// Scans with no label requirement (must see all vertex events that
    /// pass their interest filter).
    vertex_any: Vec<VertexRoute>,
    edge_by_type: FxHashMap<Symbol, Vec<EdgeRoute>>,
    edge_any: Vec<EdgeRoute>,
}

impl RoutingIndex {
    fn clear(&mut self) {
        self.vertex_by_label.clear();
        self.vertex_any.clear();
        self.edge_by_type.clear();
        self.edge_any.clear();
    }

    fn add_vertex_route(&mut self, route: VertexRoute) {
        if route.labels.is_empty() {
            self.vertex_any.push(route);
        } else {
            for &l in &route.labels {
                self.vertex_by_label
                    .entry(l)
                    .or_default()
                    .push(route.clone());
            }
        }
    }

    fn add_edge_route(&mut self, types: &[Symbol], route: EdgeRoute) {
        if types.is_empty() {
            self.edge_any.push(route);
        } else {
            for &t in types {
                self.edge_by_type.entry(t).or_default().push(route.clone());
            }
        }
    }

    fn add_scan(&mut self, node: NodeId, routing: &ScanRouting) {
        match routing {
            ScanRouting::Vertex(VertexRouting { labels, prop_keys }) => {
                self.add_vertex_route(VertexRoute {
                    node,
                    structural: true,
                    labels: labels.clone(),
                    conjunctive: true,
                    prop_keys: prop_keys.clone(),
                });
            }
            ScanRouting::Edge(EdgeRouting {
                types,
                edge_prop_keys,
                src_interest,
                dst_interest,
            }) => {
                self.add_edge_route(
                    types,
                    EdgeRoute {
                        node,
                        prop_keys: edge_prop_keys.clone(),
                    },
                );
                // One vertex route per interested endpoint side, each
                // judged against its own conjunctive label requirement
                // (a label-free prop-bearing side lands in the
                // any-label bucket: any vertex can be that endpoint).
                // Structural vertex events never matter to an edge
                // scan: vertex deletions detach edges via their own
                // edge events, and a fresh vertex has no edges yet.
                for interest in [src_interest, dst_interest].into_iter().flatten() {
                    self.add_vertex_route(VertexRoute {
                        node,
                        structural: false,
                        labels: interest.labels.clone(),
                        conjunctive: true,
                        prop_keys: interest.prop_keys.clone(),
                    });
                }
            }
        }
    }
}

/// Aggregate description of one live node — the observable the
/// node-sharing and event-routing tests assert against.
#[derive(Clone, Debug)]
pub struct NodeSummary {
    /// Arena handle.
    pub id: NodeId,
    /// Operator glyph plus scan labels/types, e.g. `©(Post)`.
    pub label: String,
    /// Incoming consumer edges (parent edges + sink edges). A node
    /// shared by N views reports N consumers at the sharing boundary.
    pub consumers: usize,
    /// Change events routed to this node since creation (scan-bearing
    /// nodes only).
    pub delivered_events: u64,
    /// Tuples materialised in the node's own memories.
    pub own_tuples: usize,
    /// Topological depth (0 = leaf).
    pub depth: u32,
}

/// Options for [`DataflowNetwork::register_with`].
#[derive(Clone, Copy, Debug)]
pub struct RegisterOptions {
    /// Run the cost-based join-order planner before canonicalisation
    /// (the default). Disable for the syntactic-order baseline.
    pub plan: bool,
    /// Fusion policy for cyclic join regions: `CostBased` (default)
    /// weighs the catalog estimates, `Disabled` pins the
    /// binary-join-tree baseline benchmarks and differential tests
    /// compare against, `Forced` fuses every eligible region regardless
    /// of the estimates. Has no effect when `plan` is false (fusion is
    /// a planner decision).
    pub wcoj: WcojMode,
    /// Backend for ⨝ⁿ sub-indexes: `None` lets the catalog decide
    /// (sorted runs when the snapshot's out-degree skew reaches
    /// [`pgq_algebra::plan::SORTED_BACKEND_MIN_SKEW`], hash tries
    /// below it) under the process-wide [`sorted_wcoj_enabled`]
    /// toggle, `Some(true)` forces sorted runs with galloping
    /// intersection, `Some(false)` forces the hash-trie fallback
    /// (benchmarks pin one backend per engine this way).
    pub wcoj_sorted: Option<bool>,
}

impl Default for RegisterOptions {
    fn default() -> Self {
        RegisterOptions {
            plan: true,
            wcoj: WcojMode::CostBased,
            wcoj_sorted: None,
        }
    }
}

/// Fingerprint-keyed operator-state bags captured by a durable
/// snapshot, ready for warm re-registration via
/// [`DataflowNetwork::register_with_restore`].
///
/// Each entry pairs a node's content-stable plan fingerprint with a
/// second, domain-separated `check` hash
/// ([`Fra::snapshot_check`](pgq_algebra::fra::Fra::snapshot_check)) —
/// the stand-in for the full plan-equality confirmation in-process
/// hash-consing performs, since a snapshot cannot ship the plans
/// themselves — and the node's consolidated full output bag at
/// snapshot time.
#[derive(Clone, Debug, Default)]
pub struct RestoreStates {
    map: FxHashMap<u64, (u64, Vec<(Tuple, i64)>)>,
}

impl RestoreStates {
    /// Empty state map (every lookup misses, so recovery degrades to
    /// cold registration).
    pub fn new() -> RestoreStates {
        RestoreStates::default()
    }

    /// Add one node's bag under `(fingerprint, check)`.
    pub fn insert(&mut self, fingerprint: u64, check: u64, bag: Vec<(Tuple, i64)>) {
        self.map.insert(fingerprint, (check, bag));
    }

    /// The bag stored for `fingerprint`, verified against `check`.
    pub fn lookup(&self, fingerprint: u64, check: u64) -> Option<&[(Tuple, i64)]> {
        match self.map.get(&fingerprint) {
            Some((c, bag)) if *c == check => Some(bag.as_slice()),
            _ => None,
        }
    }

    /// Iterate all stored `(fingerprint, check, bag)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, &[(Tuple, i64)])> {
        self.map
            .iter()
            .map(|(fp, (check, bag))| (*fp, *check, bag.as_slice()))
    }

    /// Number of stored node states.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no states are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Is the cost-based planner globally enabled? `PGQ_DISABLE_PLANNER=1`
/// (or `true`) turns it off for the whole process — the CI fallback job
/// uses this to keep the unplanned path green. Public so EXPLAIN
/// surfaces can report the order that will actually execute.
pub fn planner_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        !std::env::var("PGQ_DISABLE_PLANNER")
            .is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
    })
}

/// Is worst-case optimal fusion of cyclic join regions globally
/// enabled? `PGQ_DISABLE_WCOJ=1` (or `true`) turns it off for the whole
/// process, keeping every cyclic pattern on the binary join-tree path —
/// the kill switch mirroring `PGQ_DISABLE_PLANNER`, used by the CI
/// fallback job. Public so EXPLAIN surfaces report the plan that will
/// actually execute.
pub fn wcoj_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        !std::env::var("PGQ_DISABLE_WCOJ").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
    })
}

/// May ⨝ⁿ nodes use the sorted-run sub-index backend (leapfrog with
/// galloping intersection)? `PGQ_WCOJ_SORTED=0` (or `false`) falls the
/// whole process back to the hash-trie backend — the fallback toggle
/// mirroring `PGQ_DISABLE_WCOJ`, exercised by the `wcoj-hash-fallback`
/// CI matrix leg. When enabled (the default), the registration-time
/// catalog still chooses per view: sorted runs only pay for themselves
/// on hub-skewed adjacency (see
/// [`pgq_algebra::plan::SORTED_BACKEND_MIN_SKEW`]). Both backends
/// maintain identical bags; only the intersection cost profile
/// differs.
pub fn sorted_wcoj_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        !std::env::var("PGQ_WCOJ_SORTED").is_ok_and(|v| v == "0" || v.eq_ignore_ascii_case("false"))
    })
}

/// Snapshot the planner-relevant statistics of `g`: label/type extents
/// from the secondary indexes, per-type distinct endpoints and
/// distinct-property-value estimates from the live
/// [cardinality catalog](pgq_graph::stats::CardinalityCatalog).
///
/// O(labels + types + property keys), independent of |V| and |E|. The
/// snapshot is immutable: plans chosen from it are **not** re-planned
/// as the graph drifts (re-register a view to replan against fresh
/// statistics).
pub fn plan_stats(g: &PropertyGraph) -> pgq_algebra::plan::PlanStats {
    let catalog = g.catalog();
    let mut stats = pgq_algebra::plan::PlanStats {
        vertices: g.vertex_count() as u64,
        edges: g.edge_count() as u64,
        out_degree_sq_sum: catalog.out_degree_second_moment(),
        out_degree_sources: catalog.out_degree_source_count(),
        ..Default::default()
    };
    for l in g.labels() {
        stats
            .label_counts
            .insert(l, g.vertices_with_label(l).len() as u64);
    }
    for t in g.edge_types() {
        stats
            .type_counts
            .insert(t, g.edges_with_type(t).len() as u64);
        stats
            .type_distinct_src
            .insert(t, catalog.distinct_sources(t) as u64);
        stats
            .type_distinct_dst
            .insert(t, catalog.distinct_targets(t) as u64);
    }
    for k in catalog.vertex_prop_keys() {
        stats
            .vertex_prop_distinct
            .insert(k, catalog.vertex_prop_distinct(k) as u64);
    }
    for k in catalog.edge_prop_keys() {
        stats
            .edge_prop_distinct
            .insert(k, catalog.edge_prop_distinct(k) as u64);
    }
    stats
}

/// Conservative scan-node footprint of a not-yet-applied
/// [`Transaction`], computed by [`DataflowNetwork::tx_footprint`].
///
/// Two transactions whose footprints are [`disjoint`](Self::disjoint)
/// dirty non-overlapping scan frontiers, so the engine may coalesce
/// them into one propagation pass (apply both to the graph, then
/// maintain once over the concatenated events). Soundness rests on the
/// store emitting events per operation: the concatenation of two
/// transactions' event streams equals the event stream of the single
/// merged transaction, which every scan already handles (scans read the
/// post-state graph). Disjointness is a *scan-level* rule, though: a
/// view joining two different scans can be dirtied by two
/// footprint-disjoint members of the same pass, so coalescing may
/// coarsen per-view *change notifications* — subscribers then see one
/// merged delta spanning several transactions (identical in content to
/// applying them back-to-back; only the notification granularity
/// changes).
#[derive(Clone, Debug, Default)]
pub struct TxFootprint {
    /// Sorted, deduplicated scan nodes the transaction may dirty.
    scans: Vec<NodeId>,
    /// The transaction references ids the current graph cannot resolve
    /// (e.g. deleting an edge created earlier in the same batch), so
    /// its reach cannot be bounded: conflicts with everything.
    unbounded: bool,
}

impl TxFootprint {
    /// The footprint that conflicts with every footprint.
    pub fn unbounded() -> TxFootprint {
        TxFootprint {
            scans: Vec::new(),
            unbounded: true,
        }
    }

    /// True when the transaction's reach could not be bounded.
    pub fn is_unbounded(&self) -> bool {
        self.unbounded
    }

    /// Scan nodes the transaction may dirty (meaningless when
    /// [unbounded](Self::is_unbounded)).
    pub fn scans(&self) -> &[NodeId] {
        &self.scans
    }

    /// True when the two footprints share no scan node (and both are
    /// bounded) — the coalescing rule.
    pub fn disjoint(&self, other: &TxFootprint) -> bool {
        if self.unbounded || other.unbounded {
            return false;
        }
        let (mut i, mut j) = (0, 0);
        while i < self.scans.len() && j < other.scans.len() {
            match self.scans[i].cmp(&other.scans[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Absorb `other` (accumulating a batch's combined footprint).
    pub fn merge(&mut self, other: &TxFootprint) {
        if other.unbounded {
            self.unbounded = true;
            self.scans.clear();
        } else if !self.unbounded {
            self.scans.extend_from_slice(&other.scans);
            self.seal();
        }
    }

    fn seal(&mut self) {
        self.scans.sort_unstable();
        self.scans.dedup();
    }
}

/// The engine-owned shared dataflow network. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct DataflowNetwork {
    nodes: Vec<Option<Node>>,
    free_nodes: Vec<u32>,
    sinks: Vec<Option<Sink>>,
    /// Fingerprint → candidate nodes (hash-consing index).
    cons: FxHashMap<u64, Vec<NodeId>>,
    routing: RoutingIndex,
    generation: u64,
    sched: Scheduler,
    pool: DeltaPool,
    /// Reusable buffers of the parallel pass.
    par: ParState,
    changed: Vec<SinkId>,
    /// Monotone per-event stamp backing `deliver_stamp`.
    event_serial: u64,
    /// Static empty delta handed out by [`DataflowNetwork::last_delta`]
    /// for unchanged sinks.
    empty: Delta,
}

impl DataflowNetwork {
    /// Fresh empty network.
    pub fn new() -> DataflowNetwork {
        DataflowNetwork::default()
    }

    // ---- registration ----------------------------------------------------

    /// Register a view over `fra`, sharing every subplan already
    /// instantiated in the network, and run the initial evaluation of
    /// whatever suffix is new. Returns the sink handle.
    ///
    /// Two rewrites run before instantiation, in order:
    ///
    /// 1. **Cost-based planning** ([`mod@pgq_algebra::plan`]): a statistics
    ///    snapshot of `g` (see [`plan_stats`]) drives a join-order
    ///    rewrite, so the dataflow's join memories hold the smallest
    ///    intermediates the estimator can find. Planning is a pure
    ///    function of plan structure and the snapshot — alpha-equivalent
    ///    queries plan identically, so sharing is preserved. The
    ///    snapshot is taken **once, here**: later graph drift never
    ///    re-plans a standing view (re-register to replan). Disable
    ///    globally with `PGQ_DISABLE_PLANNER=1` or per call via
    ///    [`DataflowNetwork::register_with`].
    /// 2. **Canonicalisation** ([`pgq_algebra::canon`]): sharing is up
    ///    to *alpha-equivalence* — registering `MATCH (a:Post)` after
    ///    `MATCH (p:Post)` (or the same `WHERE` with reordered
    ///    conjuncts, or the same `RETURN` under different aliases)
    ///    instantiates zero new nodes. When canonicalisation permutes
    ///    the output columns, a canonical tail projection — itself
    ///    hash-consed — restores the view's own column order; the sink
    ///    always reports the original [`Fra::schema`] names.
    pub fn register(&mut self, name: impl Into<String>, fra: &Fra, g: &PropertyGraph) -> SinkId {
        self.register_with(name, fra, g, RegisterOptions::default())
    }

    /// [`DataflowNetwork::register`] with explicit options (e.g. the
    /// planner-disabled baseline used by benchmarks and differential
    /// tests).
    pub fn register_with(
        &mut self,
        name: impl Into<String>,
        fra: &Fra,
        g: &PropertyGraph,
        options: RegisterOptions,
    ) -> SinkId {
        self.register_impl(name.into(), fra, g, options, None)
    }

    /// Warm-recovery registration: exactly
    /// [`DataflowNetwork::register_with`], except every operator node
    /// whose `(fingerprint, check)` pair hits in `states` rebuilds its
    /// memories probe-free from the snapshot's bags instead of
    /// recomputing its initial evaluation from scratch, and the sink's
    /// result bag is seeded from the stored root bag.
    ///
    /// **Precondition:** `g` must hold exactly the graph the states
    /// were dumped against (the durability layer guarantees this by
    /// replaying the WAL tail only *after* all views are restored).
    /// Misses degrade to cold initialisation per node — correctness
    /// never depends on the snapshot's contents, only recovery speed
    /// does.
    pub fn register_with_restore(
        &mut self,
        name: impl Into<String>,
        fra: &Fra,
        g: &PropertyGraph,
        options: RegisterOptions,
        states: &RestoreStates,
    ) -> SinkId {
        self.register_impl(name.into(), fra, g, options, Some(states))
    }

    fn register_impl(
        &mut self,
        name: String,
        fra: &Fra,
        g: &PropertyGraph,
        options: RegisterOptions,
        states: Option<&RestoreStates>,
    ) -> SinkId {
        let planned_storage;
        // Backend default for any ⨝ⁿ node this registration creates:
        // sorted runs on hub-skewed catalogs (galloping pays), hash
        // tries on low-skew ones (leapfrog constants don't). Only the
        // planned path snapshots statistics; the unplanned path never
        // fuses, so the flag is moot there.
        let mut catalog_sorted = true;
        let planned: &Fra = if options.plan && planner_enabled() {
            let snapshot = plan_stats(g);
            catalog_sorted =
                snapshot.out_degree_skew() >= pgq_algebra::plan::SORTED_BACKEND_MIN_SKEW;
            let opts = pgq_algebra::plan::PlanOptions {
                wcoj: if wcoj_enabled() {
                    options.wcoj
                } else {
                    WcojMode::Disabled
                },
            };
            let planned = pgq_algebra::plan::plan_with(fra, &snapshot, &opts);
            if planned.changed {
                crate::stats::counters::planner_plan_changed();
            }
            planned_storage = planned.fra;
            &planned_storage
        } else {
            fra
        };
        let canon = pgq_algebra::canon::canonicalize(planned);
        let plan = canon.with_restored_order();
        let sorted = options
            .wcoj_sorted
            .unwrap_or_else(|| sorted_wcoj_enabled() && catalog_sorted);
        let root = self.instantiate(&plan, g, sorted, states);
        // Build the sink's result bag: the root's stored snapshot bag
        // when warm-restoring (skipping the root's output enumeration
        // entirely), the (possibly shared) root's full replay otherwise.
        let stored_root = states.and_then(|s| {
            let n = self.node(root);
            s.lookup(n.fingerprint, n.plan.snapshot_check().0)
        });
        let mut results = FxHashMap::default();
        match stored_root {
            Some(bag) => {
                for (t, m) in bag {
                    *results.entry(t.clone()).or_insert(0) += m;
                }
                results.retain(|_, m| *m != 0);
            }
            None => {
                let mut init = self.pool.get();
                self.replay_into(root, &mut init);
                init.consolidate_in_place();
                for (t, m) in init.iter() {
                    *results.entry(t.clone()).or_insert(0) += m;
                }
                results.retain(|_, m| *m != 0);
                self.pool.put(init);
            }
        }

        let sink = Sink {
            name,
            columns: fra.schema(),
            root,
            results,
            maintenance_count: 0,
            changed_gen: 0,
        };
        let sid = match self.sinks.iter().position(Option::is_none) {
            Some(ix) => {
                self.sinks[ix] = Some(sink);
                SinkId(ix as u32)
            }
            None => {
                self.sinks.push(Some(sink));
                SinkId((self.sinks.len() - 1) as u32)
            }
        };
        self.node_mut(root).sinks.push(sid);
        // Rebuild the routing index eagerly: registration is already a
        // heavyweight operation, and a lazily-stale index would push the
        // rebuild into the first (often benchmarked) transaction — or
        // into every transaction of engines cloned from a
        // registered-but-never-maintained template.
        self.rebuild_routing();
        sid
    }

    /// Drop a view. Shared operator nodes are released only when their
    /// last consumer (parent edge or sink) is gone; the freed subgraph
    /// cascades bottom-up.
    pub fn drop_sink(&mut self, sid: SinkId) {
        let Some(sink) = self.sinks.get_mut(sid.ix()).and_then(Option::take) else {
            return;
        };
        let root = sink.root;
        let sinks = &mut self.node_mut(root).sinks;
        if let Some(pos) = sinks.iter().position(|&s| s == sid) {
            sinks.remove(pos);
        }
        self.collect_if_dead(root);
        self.rebuild_routing();
    }

    /// Instantiate (or share) the node for `fra`, children first.
    ///
    /// `sorted` picks the sub-index backend for any ⨝ⁿ node created
    /// here. Hash-consing matches on the *plan* only: if an identical
    /// Multiway node already exists, it is shared with whatever backend
    /// it was first created with (both backends maintain the same bag,
    /// so this only matters for benchmarks — which pin one backend per
    /// engine).
    fn instantiate(
        &mut self,
        fra: &Fra,
        g: &PropertyGraph,
        sorted: bool,
        states: Option<&RestoreStates>,
    ) -> NodeId {
        let fp = fra.fingerprint().0;
        if let Some(cands) = self.cons.get(&fp) {
            for &id in cands {
                if self.node(id).plan == *fra {
                    return id;
                }
            }
        }
        let kind = match fra {
            Fra::Unit => NodeKind::Unit { emitted: false },
            Fra::ScanVertices {
                labels,
                props,
                carry_map,
                ..
            } => NodeKind::Vertices(VertexScan::new(labels.clone(), props.clone(), *carry_map)),
            Fra::ScanEdges {
                types,
                src_labels,
                dst_labels,
                src_props,
                edge_props,
                dst_props,
                dir,
                carry_maps,
                ..
            } => NodeKind::Edges(EdgeScan::new(EdgeScanSpec {
                types: types.clone(),
                src_labels: src_labels.clone(),
                dst_labels: dst_labels.clone(),
                src_props: src_props.clone(),
                edge_props: edge_props.clone(),
                dst_props: dst_props.clone(),
                carry_maps: *carry_maps,
                dir: Some(*dir),
                edge_prop_filters: Vec::new(),
            })),
            Fra::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
            } => {
                let op = JoinOp::new(left_keys.clone(), right_keys.clone(), right.schema().len());
                let l = self.instantiate(left, g, sorted, states);
                let r = self.instantiate(right, g, sorted, states);
                NodeKind::Join {
                    left: l,
                    right: r,
                    op,
                }
            }
            Fra::SemiJoin {
                left,
                right,
                left_keys,
                right_keys,
                anti,
            } => {
                let op = SemiJoinOp::new(left_keys.clone(), right_keys.clone(), *anti);
                let l = self.instantiate(left, g, sorted, states);
                let r = self.instantiate(right, g, sorted, states);
                NodeKind::SemiJoin {
                    left: l,
                    right: r,
                    op,
                }
            }
            Fra::VarLengthJoin {
                left,
                src_col,
                spec,
                ..
            } => {
                let op = Box::new(VarLengthOp::new(left.schema().len(), *src_col, spec));
                let l = self.instantiate(left, g, sorted, states);
                NodeKind::VarLength { left: l, op }
            }
            Fra::Filter { input, predicate } => NodeKind::Filter {
                input: self.instantiate(input, g, sorted, states),
                predicate: predicate.clone(),
            },
            Fra::Project { input, items } => NodeKind::Project {
                input: self.instantiate(input, g, sorted, states),
                items: items.clone(),
                scratch: Vec::new(),
            },
            Fra::Distinct { input } => NodeKind::Distinct {
                input: self.instantiate(input, g, sorted, states),
                op: DistinctOp::new(),
            },
            Fra::Aggregate { input, group, aggs } => NodeKind::Aggregate {
                input: self.instantiate(input, g, sorted, states),
                op: AggregateOp::new(
                    group.iter().map(|(e, _)| e.clone()).collect(),
                    aggs.iter()
                        .map(|(c, _)| c.clone())
                        .collect::<Vec<AggCall>>(),
                ),
            },
            Fra::Unwind { input, expr, .. } => NodeKind::Unwind {
                input: self.instantiate(input, g, sorted, states),
                expr: expr.clone(),
            },
            Fra::MultiwayJoin {
                inputs,
                var_of,
                names,
            } => {
                let ids: Vec<NodeId> = inputs
                    .iter()
                    .map(|f| self.instantiate(f, g, sorted, states))
                    .collect();
                NodeKind::Multiway {
                    inputs: ids,
                    op: Box::new(MultiwayJoinOp::with_backend(var_of, names.len(), sorted)),
                }
            }
        };

        // Allocate the arena slot.
        let depth = kind
            .children()
            .into_iter()
            .map(|c| self.sched.depth[c.ix()] + 1)
            .max()
            .unwrap_or(0);
        let node = Node {
            kind,
            plan: fra.clone(),
            fingerprint: fp,
            parents: Vec::new(),
            sinks: Vec::new(),
            delivered_events: 0,
        };
        let id = match self.free_nodes.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = Some(node);
                NodeId(slot)
            }
            None => {
                self.nodes.push(Some(node));
                NodeId((self.nodes.len() - 1) as u32)
            }
        };
        self.sched.grow(self.nodes.len());
        self.sched.depth[id.ix()] = depth;
        // One parent edge per reference (a self-join registers twice).
        for child in self.node(id).kind.children() {
            self.node_mut(child).parents.push(id);
        }
        self.cons.entry(fp).or_default().push(id);
        match states {
            Some(s) => self.restore_node(id, g, s),
            None => self.init_node(id, g),
        }
        id
    }

    /// Populate a brand-new node's state from its children's full
    /// current outputs (children are either older shared nodes or were
    /// just initialised by the recursion).
    fn init_node(&mut self, id: NodeId, g: &PropertyGraph) {
        let children = self.node(id).kind.children();
        // Full current output of each child reference, consolidated.
        let mut child_deltas: Vec<Delta> = Vec::with_capacity(children.len());
        for c in children {
            let mut d = self.pool.get();
            self.replay_into(c, &mut d);
            d.consolidate_in_place();
            child_deltas.push(d);
        }
        let empty = Delta::new();
        let dl = child_deltas.first().unwrap_or(&empty);
        let dr = child_deltas.get(1).unwrap_or(&empty);
        let mut discard = self.pool.get();
        match &mut self.nodes[id.ix()].as_mut().expect("live node").kind {
            NodeKind::Unit { emitted } => *emitted = true,
            NodeKind::Vertices(scan) => {
                scan.initial(g);
            }
            NodeKind::Edges(scan) => {
                scan.initial(g);
            }
            NodeKind::Join { op, .. } => op.apply(dl, dr, &mut discard),
            NodeKind::SemiJoin { op, .. } => op.apply(dl, dr, &mut discard),
            NodeKind::VarLength { op, .. } => op.initial_into(g, dl, &mut discard),
            // Stateless operators have nothing to initialise.
            NodeKind::Filter { .. } | NodeKind::Project { .. } | NodeKind::Unwind { .. } => {}
            NodeKind::Distinct { op, .. } => op.apply(dl, &mut discard),
            NodeKind::Aggregate { op, .. } => op.apply(dl, &mut discard),
            NodeKind::Multiway { op, .. } => {
                let refs: Vec<&Delta> = child_deltas.iter().collect();
                op.apply(&refs, &mut discard);
            }
        }
        self.pool.put(discard);
        for d in child_deltas {
            self.pool.put(d);
        }
    }

    /// Warm-path twin of [`DataflowNetwork::init_node`]: populate a
    /// brand-new node's state from snapshot bags when its
    /// `(fingerprint, check)` pair hits, skipping the probe/enumerate
    /// work cold initialisation performs *and then discards* —
    /// `init_node` calls each operator's `apply` only for the state
    /// side effects, so an insert-only rebuild from the same inputs is
    /// state-identical at O(inputs) instead of O(output) cost.
    ///
    /// Child input bags come from their own stored entries when
    /// available (a parent's fingerprint being stored implies the
    /// subtree existed at snapshot time, so in practice they are) or
    /// from replay otherwise. A miss on the node itself falls back to
    /// [`DataflowNetwork::init_node`].
    fn restore_node(&mut self, id: NodeId, g: &PropertyGraph, states: &RestoreStates) {
        let hit = {
            let n = self.node(id);
            states
                .lookup(n.fingerprint, n.plan.snapshot_check().0)
                .is_some()
        };
        if !hit {
            crate::stats::counters::restore_miss();
            self.init_node(id, g);
            return;
        }
        crate::stats::counters::restore_hit();
        let children = self.node(id).kind.children();
        let mut child_deltas: Vec<Delta> = Vec::with_capacity(children.len());
        for c in children {
            let mut d = self.pool.get();
            let stored = {
                let n = self.node(c);
                states.lookup(n.fingerprint, n.plan.snapshot_check().0)
            };
            match stored {
                Some(bag) => {
                    for (t, m) in bag {
                        d.push(t.clone(), *m);
                    }
                }
                None => {
                    self.replay_into(c, &mut d);
                    d.consolidate_in_place();
                }
            }
            child_deltas.push(d);
        }
        let empty = Delta::new();
        let dl = child_deltas.first().unwrap_or(&empty);
        let dr = child_deltas.get(1).unwrap_or(&empty);
        let mut discard = self.pool.get();
        match &mut self.nodes[id.ix()].as_mut().expect("live node").kind {
            NodeKind::Unit { emitted } => *emitted = true,
            // Scans rebuild directly from the (already restored) graph;
            // their memories are a projection of it, not of any input.
            NodeKind::Vertices(scan) => {
                scan.initial(g);
            }
            NodeKind::Edges(scan) => {
                scan.initial(g);
            }
            // Probe-free memory rebuilds.
            NodeKind::Join { op, .. } => op.restore(dl, dr),
            NodeKind::SemiJoin { op, .. } => op.restore(dl, dr),
            // The path store's reachability index is not derivable from
            // the output bag alone; recompute (documented exception).
            NodeKind::VarLength { op, .. } => op.initial_into(g, dl, &mut discard),
            NodeKind::Filter { .. } | NodeKind::Project { .. } | NodeKind::Unwind { .. } => {}
            // Already linear in the input bag — `apply` *is* the
            // cheapest rebuild.
            NodeKind::Distinct { op, .. } => op.apply(dl, &mut discard),
            NodeKind::Aggregate { op, .. } => op.apply(dl, &mut discard),
            NodeKind::Multiway { op, .. } => {
                let refs: Vec<&Delta> = child_deltas.iter().collect();
                op.restore(&refs);
            }
        }
        self.pool.put(discard);
        for d in child_deltas {
            self.pool.put(d);
        }
    }

    /// Consolidated full output bag of every live operator node, keyed
    /// by `(fingerprint, check)` — the payload a durable snapshot
    /// stores and [`DataflowNetwork::register_with_restore`] later
    /// consumes in a fresh process.
    ///
    /// A fingerprint shared by two *live* nodes means two different
    /// plans collided in the primary hash (identical plans would have
    /// been hash-consed into one node); such an ambiguous key is
    /// dropped entirely rather than risk restoring one plan's state
    /// into the other's operator, and recovery cold-starts those
    /// nodes.
    pub fn dump_states(&mut self) -> RestoreStates {
        let live: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_some())
            .map(|i| NodeId(i as u32))
            .collect();
        let mut fp_count: FxHashMap<u64, u32> = FxHashMap::default();
        for &id in &live {
            *fp_count.entry(self.node(id).fingerprint).or_insert(0) += 1;
        }
        let mut states = RestoreStates::new();
        for id in live {
            let fp = self.node(id).fingerprint;
            if fp_count[&fp] > 1 {
                continue;
            }
            let check = self.node(id).plan.snapshot_check().0;
            let mut d = self.pool.get();
            self.replay_into(id, &mut d);
            d.consolidate_in_place();
            let bag: Vec<(Tuple, i64)> = d.iter().map(|(t, m)| (t.clone(), *m)).collect();
            self.pool.put(d);
            states.insert(fp, check, bag);
        }
        states
    }

    /// Append the node's full current output bag (as derivable from its
    /// memories) to `out`. Stateless operators recompute over their
    /// child's replay.
    fn replay_into(&mut self, id: NodeId, out: &mut Delta) {
        let stateless_child = match &self.node(id).kind {
            NodeKind::Filter { input, .. }
            | NodeKind::Project { input, .. }
            | NodeKind::Unwind { input, .. } => Some(*input),
            _ => None,
        };
        if let Some(c) = stateless_child {
            let mut tmp = self.pool.get();
            self.replay_into(c, &mut tmp);
            match &mut self.nodes[id.ix()].as_mut().expect("live node").kind {
                NodeKind::Filter { predicate, .. } => filter_into(predicate, &tmp, out),
                NodeKind::Project { items, scratch, .. } => project_into(items, &tmp, scratch, out),
                NodeKind::Unwind { expr, .. } => unwind_into(expr, &tmp, out),
                _ => unreachable!("stateless_child implies a stateless kind"),
            }
            self.pool.put(tmp);
            return;
        }
        match &mut self.nodes[id.ix()].as_mut().expect("live node").kind {
            NodeKind::Unit { emitted } => {
                if *emitted {
                    out.push(Tuple::unit(), 1);
                }
            }
            NodeKind::Vertices(s) => s.replay_into(out),
            NodeKind::Edges(s) => s.replay_into(out),
            NodeKind::Join { op, .. } => op.replay_into(out),
            NodeKind::SemiJoin { op, .. } => op.replay_into(out),
            NodeKind::VarLength { op, .. } => op.replay_into(out),
            NodeKind::Distinct { op, .. } => op.replay_into(out),
            NodeKind::Aggregate { op, .. } => op.replay_into(out),
            NodeKind::Multiway { op, .. } => op.replay_into(out),
            NodeKind::Filter { .. } | NodeKind::Project { .. } | NodeKind::Unwind { .. } => {
                unreachable!("handled above")
            }
        }
    }

    /// Free `id` if it has no consumers left, cascading to children.
    fn collect_if_dead(&mut self, id: NodeId) {
        {
            let node = self.node(id);
            if !node.parents.is_empty() || !node.sinks.is_empty() {
                return;
            }
        }
        let node = self.nodes[id.ix()].take().expect("live node");
        // Unlink from the hash-consing index.
        if let Some(bucket) = self.cons.get_mut(&node.fingerprint) {
            if let Some(pos) = bucket.iter().position(|&n| n == id) {
                bucket.swap_remove(pos);
            }
            if bucket.is_empty() {
                self.cons.remove(&node.fingerprint);
            }
        }
        // Return this slot's pooled output, if any survived.
        let out = std::mem::take(&mut self.sched.outputs[id.ix()]);
        self.pool.put(out);
        self.sched.out_gen[id.ix()] = 0;
        self.free_nodes.push(id.0);
        // Detach from children (one parent edge per reference) and
        // cascade.
        for child in node.kind.children() {
            let parents = &mut self.node_mut(child).parents;
            if let Some(pos) = parents.iter().position(|&p| p == id) {
                parents.swap_remove(pos);
            }
            self.collect_if_dead(child);
        }
    }

    // ---- maintenance -----------------------------------------------------

    /// Propagate one committed transaction through the shared DAG: route
    /// events to the scans that can match them, process dirty nodes in
    /// one topological pass, and fold root deltas into sink result bags.
    pub fn on_transaction(&mut self, g: &PropertyGraph, events: &[ChangeEvent]) {
        self.on_transaction_with(g, events, None);
    }

    /// [`DataflowNetwork::on_transaction`], optionally fanning the pass
    /// across a [`WorkerPool`].
    ///
    /// With `None` (or a one-thread pool) this is exactly the serial
    /// pass. Otherwise the dirty subgraph becomes a task graph — one
    /// task per node, readiness counted per dependency edge — and
    /// workers run every task exactly once as soon as all of its inputs
    /// have flushed. **Determinism contract:** for any thread count,
    /// every sink's consolidated results are identical to the serial
    /// pass (each node still runs once per transaction, on inputs that
    /// do not depend on the schedule); only the order of tuples inside
    /// intermediate deltas may differ. Narrow frontiers (fewer than two
    /// seeded scans) always take the serial path — the threshold depends
    /// only on event routing, never on the thread count.
    pub fn on_transaction_with(
        &mut self,
        g: &PropertyGraph,
        events: &[ChangeEvent],
        workers: Option<&WorkerPool>,
    ) {
        self.generation += 1;
        self.changed.clear();
        for s in self.sinks.iter_mut().flatten() {
            s.maintenance_count += 1;
        }
        if events.is_empty() {
            return;
        }
        // Recycle the previous transaction's edge buffers into the pool.
        while let Some(slot) = self.sched.produced.pop() {
            let d = std::mem::take(&mut self.sched.outputs[slot as usize]);
            self.pool.put(d);
        }
        self.route_events(g, events);
        match workers {
            Some(w) if w.threads() > 1 && self.sched.heap.len() >= 2 => {
                self.run_parallel_pass(g, events, w);
            }
            _ => self.run_serial_pass(g, events),
        }
        self.fold_sinks();
    }

    /// The classic single-threaded pass: dirty nodes in ascending depth
    /// order, with the buffer-stealing and lazy-consolidation tricks of
    /// [`DataflowNetwork::run_node`].
    fn run_serial_pass(&mut self, g: &PropertyGraph, events: &[ChangeEvent]) {
        while let Some(Reverse((_, slot))) = self.sched.heap.pop() {
            self.run_node(slot, g, events);
        }
    }

    /// Fold changed roots into sink result bags.
    fn fold_sinks(&mut self) {
        let generation = self.generation;
        for (ix, sink) in self.sinks.iter_mut().enumerate() {
            let Some(sink) = sink else { continue };
            let root = sink.root.ix();
            if self.sched.out_gen[root] != generation || self.sched.outputs[root].is_empty() {
                continue;
            }
            let delta = &self.sched.outputs[root];
            use std::collections::hash_map::Entry;
            for (t, m) in delta.iter() {
                match sink.results.entry(t.clone()) {
                    Entry::Occupied(mut e) => {
                        *e.get_mut() += m;
                        debug_assert!(*e.get() >= 0, "negative view multiplicity for {t}");
                        if *e.get() == 0 {
                            e.remove();
                        }
                    }
                    Entry::Vacant(v) => {
                        debug_assert!(*m >= 0, "negative view multiplicity for {t}");
                        v.insert(*m);
                    }
                }
            }
            sink.changed_gen = generation;
            self.changed.push(SinkId(ix as u32));
        }
    }

    /// The parallel topological pass behind
    /// [`DataflowNetwork::on_transaction_with`].
    ///
    /// Four serial phases bracket the concurrent one:
    ///
    /// 1. **Dirty closure.** The routed seeds plus every transitive
    ///    consumer become the task list (`sched.queued` doubles as the
    ///    membership mark). Nodes pulled in beyond what the serial pass
    ///    would run see empty inputs and are no-ops, so the closure is
    ///    semantically free — it is what lets readiness be counted up
    ///    front instead of discovered per produced delta.
    /// 2. **Task metadata.** Per task: the parent tasks (one entry per
    ///    dependency edge, so a self-join counts twice), an atomic
    ///    pending counter seeded with the task's dirty in-degree, and a
    ///    consolidation flag (sink-facing, or feeding Distinct/γ — the
    ///    parallel analogue of the serial pass's in-place child
    ///    consolidation).
    /// 3. **Buffer pre-assignment.** Every task's pooled output buffer,
    ///    `out_gen` stamp and `produced` entry are written here, because
    ///    workers cannot touch the pool or the scheduler.
    /// 4. After the broadcast: consolidation stamps, and panic
    ///    propagation (a poisoned pass leaves stamps that the next
    ///    generation ignores wholesale).
    ///
    /// # Safety argument
    ///
    /// Workers dereference two raw pointers ([`ParShared::nodes`] and
    /// [`ParShared::outputs`]) — exclusively at their own task's slot,
    /// and shared at child slots whose owning tasks have completed. The
    /// readiness counters (`AcqRel`) plus the ready-queue mutex order
    /// every child's writes before its parent's reads, and a DAG node is
    /// never its own child, so no `&mut` coexists with an aliasing `&`.
    fn run_parallel_pass(
        &mut self,
        g: &PropertyGraph,
        events: &[ChangeEvent],
        workers: &WorkerPool,
    ) {
        let generation = self.generation;
        let mut par = std::mem::take(&mut self.par);
        par.slots.clear();
        while let Some(Reverse((_, slot))) = self.sched.heap.pop() {
            par.slots.push(slot);
        }
        let mut i = 0;
        while i < par.slots.len() {
            let slot = par.slots[i] as usize;
            i += 1;
            let node = self.nodes[slot].as_ref().expect("live node");
            for &p in &node.parents {
                if self.sched.queued[p.ix()] != generation {
                    self.sched.queued[p.ix()] = generation;
                    par.slots.push(p.0);
                }
            }
        }
        let tasks = par.slots.len();
        if par.task_of.len() < self.nodes.len() {
            par.task_of.resize(self.nodes.len(), 0);
        }
        for (t, &slot) in par.slots.iter().enumerate() {
            par.task_of[slot as usize] = t as u32;
        }
        par.parents_flat.clear();
        par.parents_ix.clear();
        par.pending.clear();
        par.pending.resize_with(tasks, || AtomicU32::new(0));
        par.consolidate.clear();
        for t in 0..tasks {
            let slot = par.slots[t] as usize;
            par.parents_ix.push(par.parents_flat.len() as u32);
            let node = self.nodes[slot].as_ref().expect("live node");
            let mut consolidate = !node.sinks.is_empty();
            for &p in &node.parents {
                debug_assert_eq!(
                    self.sched.queued[p.ix()],
                    generation,
                    "closure covers parents"
                );
                let pt = par.task_of[p.ix()];
                par.parents_flat.push(pt);
                *par.pending[pt as usize].get_mut() += 1;
                if !consolidate {
                    consolidate = matches!(
                        self.nodes[p.ix()].as_ref().expect("live node").kind,
                        NodeKind::Distinct { .. } | NodeKind::Aggregate { .. }
                    );
                }
            }
            par.consolidate.push(consolidate);
        }
        par.parents_ix.push(par.parents_flat.len() as u32);
        for t in 0..tasks {
            let slot = par.slots[t] as usize;
            self.sched.outputs[slot] = self.pool.get();
            self.sched.out_gen[slot] = generation;
            self.sched.produced.push(slot as u32);
        }
        let mut ready = std::mem::take(&mut par.ready);
        ready.clear();
        for (t, pending) in par.pending.iter_mut().enumerate() {
            if *pending.get_mut() == 0 {
                ready.push(t as u32);
            }
        }
        let (reclaimed, panic) = {
            let shared = ParShared {
                nodes: self.nodes.as_mut_ptr(),
                outputs: self.sched.outputs.as_mut_ptr(),
                queued: &self.sched.queued,
                event_gen: &self.sched.event_gen,
                slots: &par.slots,
                parents_flat: &par.parents_flat,
                parents_ix: &par.parents_ix,
                pending: &par.pending,
                consolidate: &par.consolidate,
                generation,
                g,
                events,
                queue: Mutex::new(ready),
                work_cv: Condvar::new(),
                remaining: AtomicUsize::new(tasks),
                aborted: AtomicBool::new(false),
                panic: Mutex::new(None),
            };
            workers.broadcast(|_| shared.work_loop());
            (shared.queue.into_inner(), shared.panic.into_inner())
        };
        par.ready = reclaimed;
        for t in 0..tasks {
            if par.consolidate[t] {
                self.sched.consolidated_gen[par.slots[t] as usize] = generation;
            }
        }
        self.par = par;
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }

    /// Process one dirty node: pull the children's pooled deltas, run
    /// the operator, and wake consumers if anything came out.
    ///
    /// Allocation/copy discipline (what keeps the single-view hot path
    /// at parity with the old private-tree recursion):
    ///
    /// * Intermediate deltas are **not** consolidated; only a node read
    ///   by sinks consolidates its output (exactly the old once-per-view
    ///   `consolidate()`), and Distinct/Aggregate inputs are
    ///   consolidated in place at the child (their counting logic
    ///   processes each distinct tuple once).
    /// * A Filter/Project whose child feeds no other consumer **steals**
    ///   the child's output buffer and transforms it in place (the old
    ///   tree's move-through semantics); shared children are read by
    ///   borrow and copied only then.
    fn run_node(&mut self, slot: u32, g: &PropertyGraph, events: &[ChangeEvent]) {
        let generation = self.generation;
        // One preparatory pass over the node: what special handling does
        // its input need, and does its output face a sink?
        enum Prep {
            None,
            /// Distinct/γ consume each distinct tuple once: consolidate
            /// the child's buffer in place first (semantically neutral
            /// for any other consumer — same multiset).
            ConsolidateChild(NodeId),
            /// Filter/Project over an exclusive child can transform the
            /// child's buffer in place.
            TrySteal(NodeId),
        }
        let (prep, has_sinks) = {
            let node = self.nodes[slot as usize].as_ref().expect("live node");
            let prep = match &node.kind {
                NodeKind::Distinct { input, .. } | NodeKind::Aggregate { input, .. } => {
                    Prep::ConsolidateChild(*input)
                }
                NodeKind::Filter { input, .. } | NodeKind::Project { input, .. } => {
                    Prep::TrySteal(*input)
                }
                _ => Prep::None,
            };
            (prep, !node.sinks.is_empty())
        };
        let mut steal = None;
        match prep {
            Prep::None => {}
            Prep::ConsolidateChild(c) => {
                if self.sched.out_gen[c.ix()] == generation
                    && self.sched.consolidated_gen[c.ix()] != generation
                {
                    self.sched.outputs[c.ix()].consolidate_in_place();
                    self.sched.consolidated_gen[c.ix()] = generation;
                }
            }
            Prep::TrySteal(c) => {
                let node = self.node(c);
                if node.parents.len() + node.sinks.len() == 1
                    && self.sched.out_gen[c.ix()] == generation
                {
                    steal = Some(c);
                }
            }
        }
        let mut out;
        if let Some(c) = steal {
            let input = std::mem::take(&mut self.sched.outputs[c.ix()]);
            self.sched.out_gen[c.ix()] = 0;
            out = match &mut self.nodes[slot as usize].as_mut().expect("live node").kind {
                NodeKind::Filter { predicate, .. } => crate::basic::filter_delta(predicate, input),
                NodeKind::Project { items, .. } => crate::basic::project_delta(items, input),
                _ => unreachable!("steal implies Filter/Project"),
            };
        } else {
            out = self.pool.get();
            let empty = Delta::new();
            let sched = &self.sched;
            let ev: &[ChangeEvent] = if sched.event_gen[slot as usize] == generation {
                events
            } else {
                &[]
            };
            let child = |id: NodeId| -> &Delta {
                if sched.out_gen[id.ix()] == generation {
                    &sched.outputs[id.ix()]
                } else {
                    &empty
                }
            };
            match &mut self.nodes[slot as usize].as_mut().expect("live node").kind {
                NodeKind::Unit { .. } => {}
                NodeKind::Vertices(scan) => scan.on_events_into(g, ev, &mut out),
                NodeKind::Edges(scan) => scan.on_events_into(g, ev, &mut out),
                NodeKind::Join { left, right, op } => {
                    op.apply(child(*left), child(*right), &mut out)
                }
                NodeKind::SemiJoin { left, right, op } => {
                    op.apply(child(*left), child(*right), &mut out)
                }
                NodeKind::VarLength { left, op } => {
                    op.on_events_into(g, ev, child(*left), &mut out)
                }
                NodeKind::Filter { input, predicate } => {
                    filter_into(predicate, child(*input), &mut out)
                }
                NodeKind::Project {
                    input,
                    items,
                    scratch,
                } => project_into(items, child(*input), scratch, &mut out),
                NodeKind::Distinct { input, op } => op.apply(child(*input), &mut out),
                NodeKind::Aggregate { input, op } => op.apply(child(*input), &mut out),
                NodeKind::Unwind { input, expr } => unwind_into(expr, child(*input), &mut out),
                NodeKind::Multiway { inputs, op } => {
                    let refs: Vec<&Delta> = inputs.iter().map(|&i| child(i)).collect();
                    op.apply(&refs, &mut out);
                }
            }
        }
        // Only sink-facing outputs need consolidation (the old
        // once-per-view `consolidate()`); intermediate deltas flow raw.
        if has_sinks {
            out.consolidate_in_place();
            self.sched.consolidated_gen[slot as usize] = generation;
        }
        let produced = !out.is_empty();
        self.sched.outputs[slot as usize] = out;
        self.sched.out_gen[slot as usize] = generation;
        self.sched.produced.push(slot);
        if produced {
            let nodes = &self.nodes;
            let sched = &mut self.sched;
            for &p in &nodes[slot as usize].as_ref().expect("live node").parents {
                sched.mark(generation, p.0);
            }
        }
    }

    // ---- event routing ---------------------------------------------------

    fn rebuild_routing(&mut self) {
        self.routing.clear();
        for (ix, node) in self.nodes.iter().enumerate() {
            let Some(node) = node else { continue };
            let id = NodeId(ix as u32);
            match &node.kind {
                NodeKind::Vertices(s) => {
                    self.routing.add_scan(id, &ScanRouting::Vertex(s.routing()))
                }
                NodeKind::Edges(s) => self.routing.add_scan(id, &ScanRouting::Edge(s.routing())),
                NodeKind::VarLength { op, .. } => {
                    for r in op.routing() {
                        self.routing.add_scan(id, &r);
                    }
                }
                _ => {}
            }
        }
    }

    /// Deliver each event to the scan nodes that can possibly react to
    /// it, marking them dirty.
    fn route_events(&mut self, g: &PropertyGraph, events: &[ChangeEvent]) {
        let generation = self.generation;
        // The index is moved out for the duration of the loop so the
        // delivery closure can borrow `self` mutably.
        let routing = std::mem::take(&mut self.routing);
        for ev in events {
            self.event_serial += 1;
            let serial = self.event_serial;
            {
                let mut deliver = |node: NodeId, net: &mut Self| {
                    if net.sched.deliver_stamp[node.ix()] == serial {
                        return;
                    }
                    net.sched.deliver_stamp[node.ix()] = serial;
                    net.node_mut(node).delivered_events += 1;
                    counters::scan_event_delivered();
                    net.sched.event_gen[node.ix()] = generation;
                    net.sched.mark(generation, node.0);
                };
                match ev {
                    ChangeEvent::VertexAdded { id } | ChangeEvent::VertexRemoved { id, .. } => {
                        // Labels at creation time (post-state) or removal
                        // time (before-image).
                        let labels: &[Symbol] = match ev {
                            ChangeEvent::VertexRemoved { data, .. } => &data.labels,
                            _ => match g.vertex(*id) {
                                Some(d) => &d.labels,
                                None => &[],
                            },
                        };
                        for &l in labels {
                            if let Some(routes) = routing.vertex_by_label.get(&l) {
                                for r in routes {
                                    if r.structural && r.labels_admit(|x| labels.contains(&x)) {
                                        deliver(r.node, self);
                                    }
                                }
                            }
                        }
                        for r in &routing.vertex_any {
                            if r.structural {
                                deliver(r.node, self);
                            }
                        }
                    }
                    ChangeEvent::LabelAdded { label, .. }
                    | ChangeEvent::LabelRemoved { label, .. } => {
                        // Only scans requiring `label` can change
                        // membership; tuples never contain labels, so
                        // unrelated scans are unaffected.
                        if let Some(routes) = routing.vertex_by_label.get(label) {
                            for r in routes {
                                deliver(r.node, self);
                            }
                        }
                    }
                    ChangeEvent::VertexPropChanged { id, key, .. } => {
                        let labels: &[Symbol] = match g.vertex(*id) {
                            Some(d) => &d.labels,
                            // Deleted later in the same batch: the
                            // removal event routes the retraction.
                            None => &[],
                        };
                        for &l in labels {
                            if let Some(routes) = routing.vertex_by_label.get(&l) {
                                for r in routes {
                                    if r.cares_about_key(*key)
                                        && r.labels_admit(|x| labels.contains(&x))
                                    {
                                        deliver(r.node, self);
                                    }
                                }
                            }
                        }
                        for r in &routing.vertex_any {
                            if r.cares_about_key(*key) {
                                deliver(r.node, self);
                            }
                        }
                    }
                    ChangeEvent::EdgeAdded { id } => {
                        // Gone again within the same batch: the removal
                        // event covers any retraction, and the scan
                        // never saw the edge.
                        if let Some(data) = g.edge(*id) {
                            self.route_edge(&routing, data.ty, None, &mut deliver);
                        }
                    }
                    ChangeEvent::EdgeRemoved { data, .. } => {
                        self.route_edge(&routing, data.ty, None, &mut deliver);
                    }
                    ChangeEvent::EdgePropChanged { id, key, .. } => {
                        if let Some(data) = g.edge(*id) {
                            self.route_edge(&routing, data.ty, Some(*key), &mut deliver);
                        }
                    }
                }
            }
        }
        self.routing = routing;
    }

    fn route_edge(
        &mut self,
        routing: &RoutingIndex,
        ty: Symbol,
        key: Option<Symbol>,
        deliver: &mut impl FnMut(NodeId, &mut Self),
    ) {
        let admits = |r: &EdgeRoute| match (key, &r.prop_keys) {
            (None, _) => true,
            (Some(_), None) => true,
            (Some(k), Some(keys)) => keys.contains(&k),
        };
        if let Some(routes) = routing.edge_by_type.get(&ty) {
            for r in routes {
                if admits(r) {
                    deliver(r.node, self);
                }
            }
        }
        for r in &routing.edge_any {
            if admits(r) {
                deliver(r.node, self);
            }
        }
    }

    /// Conservative footprint of `tx` over the current routing index,
    /// computed **before** the transaction is applied (`g` is the
    /// pre-state). Over-approximates on purpose:
    ///
    /// * vertex-touching operations take every route of every label the
    ///   vertex can carry after the transaction (its current labels,
    ///   the transaction's creation labels, plus any label the
    ///   transaction attaches anywhere — post-state routing in the
    ///   private `route_events` makes label additions visible to
    ///   earlier events of the same batch), and all of
    ///   `vertex_any`, ignoring property-key interest filters;
    /// * edge-touching operations take every route of the edge's type
    ///   plus `edge_any`;
    /// * an id the pre-state cannot resolve (other than `NodeRef::New`)
    ///   makes the footprint [unbounded](TxFootprint::is_unbounded).
    pub fn tx_footprint(&self, g: &PropertyGraph, tx: &Transaction) -> TxFootprint {
        let mut fp = TxFootprint::default();
        // Labels attached anywhere in the transaction widen the possible
        // post-state of any vertex it touches.
        let added_labels: Vec<Symbol> = tx
            .ops()
            .iter()
            .filter_map(|op| match op {
                TxOp::AddLabel { label, .. } => Some(*label),
                _ => None,
            })
            .collect();
        let vertex_routes = |fp: &mut TxFootprint, labels: &[Symbol]| {
            for l in labels {
                if let Some(routes) = self.routing.vertex_by_label.get(l) {
                    for r in routes {
                        fp.scans.push(r.node);
                    }
                }
            }
            for r in &self.routing.vertex_any {
                fp.scans.push(r.node);
            }
        };
        let edge_routes = |fp: &mut TxFootprint, ty: Symbol| {
            if let Some(routes) = self.routing.edge_by_type.get(&ty) {
                for r in routes {
                    fp.scans.push(r.node);
                }
            }
            for r in &self.routing.edge_any {
                fp.scans.push(r.node);
            }
        };
        // Labels per `CreateVertex`, in order (resolves `NodeRef::New`).
        let mut created: Vec<&[Symbol]> = Vec::new();
        for op in tx.ops() {
            match op {
                TxOp::CreateVertex { labels, .. } => {
                    vertex_routes(&mut fp, labels);
                    vertex_routes(&mut fp, &added_labels);
                    created.push(labels);
                }
                TxOp::CreateEdge { ty, .. } => edge_routes(&mut fp, *ty),
                TxOp::DeleteVertex { id, detach } => {
                    let Some(data) = g.vertex(*id) else {
                        return TxFootprint::unbounded();
                    };
                    vertex_routes(&mut fp, &data.labels);
                    vertex_routes(&mut fp, &added_labels);
                    if *detach {
                        for &e in g.out_edges(*id).iter().chain(g.in_edges(*id)) {
                            let Some(ed) = g.edge(e) else {
                                return TxFootprint::unbounded();
                            };
                            edge_routes(&mut fp, ed.ty);
                        }
                    }
                }
                TxOp::DeleteEdge { id } => {
                    let Some(ed) = g.edge(*id) else {
                        return TxFootprint::unbounded();
                    };
                    edge_routes(&mut fp, ed.ty);
                }
                TxOp::SetVertexProp { id, .. } => {
                    let labels: &[Symbol] = match id {
                        NodeRef::Existing(v) => match g.vertex(*v) {
                            Some(data) => &data.labels,
                            None => return TxFootprint::unbounded(),
                        },
                        NodeRef::New(ix) => match created.get(*ix) {
                            Some(l) => l,
                            None => return TxFootprint::unbounded(),
                        },
                    };
                    vertex_routes(&mut fp, labels);
                    vertex_routes(&mut fp, &added_labels);
                }
                TxOp::SetEdgeProp { id, .. } => {
                    let Some(ed) = g.edge(*id) else {
                        return TxFootprint::unbounded();
                    };
                    edge_routes(&mut fp, ed.ty);
                }
                TxOp::AddLabel { id, label } | TxOp::RemoveLabel { id, label } => {
                    // Membership flips route only to scans requiring
                    // `label` (mirrors `route_events`); the id is
                    // resolved just to classify unknowns as unbounded.
                    if let NodeRef::Existing(v) = id {
                        if g.vertex(*v).is_none() {
                            return TxFootprint::unbounded();
                        }
                    }
                    if let Some(routes) = self.routing.vertex_by_label.get(label) {
                        for r in routes {
                            fp.scans.push(r.node);
                        }
                    }
                }
            }
        }
        fp.seal();
        fp
    }

    // ---- accessors -------------------------------------------------------

    fn node(&self, id: NodeId) -> &Node {
        self.nodes[id.ix()].as_ref().expect("live node")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id.ix()].as_mut().expect("live node")
    }

    fn sink(&self, sid: SinkId) -> &Sink {
        self.sinks[sid.ix()].as_ref().expect("live sink")
    }

    /// Number of live operator nodes in the arena (the node-sharing
    /// metric: N identical views keep this at one chain's worth).
    pub fn node_count(&self) -> usize {
        self.nodes.iter().flatten().count()
    }

    /// Number of live sinks (views).
    pub fn sink_count(&self) -> usize {
        self.sinks.iter().flatten().count()
    }

    /// Sinks whose results changed in the last
    /// [`on_transaction`](DataflowNetwork::on_transaction), in sink-id
    /// order.
    pub fn changed_sinks(&self) -> &[SinkId] {
        &self.changed
    }

    /// Did this sink's result change in the last transaction?
    pub fn sink_changed(&self, sid: SinkId) -> bool {
        self.sink(sid).changed_gen == self.generation && self.generation > 0
    }

    /// Consolidated root delta of the transaction just propagated by
    /// [`on_transaction`](DataflowNetwork::on_transaction) — a borrow of
    /// the root node's pooled output buffer, so it is valid only until
    /// the next mutation of the network (next transaction, register, or
    /// drop). Empty unless
    /// [`sink_changed`](DataflowNetwork::sink_changed) is true.
    pub fn last_delta(&self, sid: SinkId) -> &Delta {
        let sink = self.sink(sid);
        if sink.changed_gen == self.generation && self.generation > 0 {
            &self.sched.outputs[sink.root.ix()]
        } else {
            &self.empty
        }
    }

    /// Borrow a view handle for result access.
    pub fn view(&self, sid: SinkId) -> ViewRef<'_> {
        ViewRef { net: self, sid }
    }

    /// Look up a view by name.
    pub fn view_named(&self, name: &str) -> Option<ViewRef<'_>> {
        self.sinks.iter().enumerate().find_map(|(ix, s)| {
            s.as_ref().filter(|s| s.name == name).map(|_| ViewRef {
                net: self,
                sid: SinkId(ix as u32),
            })
        })
    }

    /// Summaries of all live nodes, in arena order.
    pub fn node_summaries(&self) -> Vec<NodeSummary> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(ix, n)| {
                n.as_ref().map(|n| NodeSummary {
                    id: NodeId(ix as u32),
                    label: n.kind.label(),
                    consumers: n.parents.len() + n.sinks.len(),
                    delivered_events: n.delivered_events,
                    own_tuples: n.kind.own_tuples(),
                    depth: self.sched.depth[ix],
                })
            })
            .collect()
    }

    /// Per-operator statistics of one view's subgraph, rendered as a
    /// tree (shared nodes appear in every referencing view's tree).
    pub fn stats_of(&self, sid: SinkId) -> OpStats {
        self.node_stats(self.sink(sid).root)
    }

    fn node_stats(&self, id: NodeId) -> OpStats {
        let node = self.node(id);
        let name = match &node.kind {
            NodeKind::Unit { .. } => "Unit".to_string(),
            NodeKind::Vertices(_) => "©".to_string(),
            NodeKind::Edges(_) => "⇑".to_string(),
            NodeKind::Join { .. } => "⋈".to_string(),
            NodeKind::SemiJoin { .. } => "⋉/▷".to_string(),
            NodeKind::VarLength { op, .. } => format!("⋈* [{} paths]", op.path_count()),
            NodeKind::Filter { .. } => "σ".to_string(),
            NodeKind::Project { .. } => "π".to_string(),
            NodeKind::Distinct { .. } => "δ".to_string(),
            NodeKind::Aggregate { .. } => "γ".to_string(),
            NodeKind::Unwind { .. } => "ω".to_string(),
            NodeKind::Multiway { inputs, .. } => format!("⨝ⁿ [{} rels]", inputs.len()),
        };
        OpStats {
            name,
            own_tuples: node.kind.own_tuples(),
            children: node
                .kind
                .children()
                .into_iter()
                .map(|c| self.node_stats(c))
                .collect(),
        }
    }

    /// Tuples materialised across one view's reachable subgraph plus its
    /// result bag. Shared nodes are counted once per view (each view
    /// reports the memory it depends on), but only once within a view
    /// even if referenced from several places in its plan.
    pub fn memory_tuples_of(&self, sid: SinkId) -> usize {
        let sink = self.sink(sid);
        let mut visited: Vec<NodeId> = Vec::new();
        let mut stack = vec![sink.root];
        let mut total = sink.results.len();
        while let Some(id) = stack.pop() {
            if visited.contains(&id) {
                continue;
            }
            visited.push(id);
            let node = self.node(id);
            total += node.kind.own_tuples();
            stack.extend(node.kind.children());
        }
        total
    }
}

/// Borrowed read access to one view's results — the engine-facing
/// equivalent of the old per-view `MaterializedView` getters.
#[derive(Clone, Copy)]
pub struct ViewRef<'a> {
    net: &'a DataflowNetwork,
    sid: SinkId,
}

impl<'a> ViewRef<'a> {
    /// View name.
    pub fn name(&self) -> &'a str {
        &self.net.sink(self.sid).name
    }

    /// Output column names.
    pub fn columns(&self) -> &'a [String] {
        &self.net.sink(self.sid).columns
    }

    /// Current result bag as `(tuple, multiplicity)` pairs, sorted for
    /// deterministic output.
    pub fn results(&self) -> Vec<(Tuple, i64)> {
        let results = &self.net.sink(self.sid).results;
        let mut out: Vec<(Tuple, i64)> = results.iter().map(|(t, m)| (t.clone(), *m)).collect();
        out.sort_by(|a, b| {
            a.0.values()
                .iter()
                .zip(b.0.values())
                .fold(std::cmp::Ordering::Equal, |acc, (x, y)| {
                    acc.then_with(|| x.total_cmp(y))
                })
                .then_with(|| a.0.arity().cmp(&b.0.arity()))
        });
        out
    }

    /// Flattened result rows (each tuple repeated by its multiplicity).
    pub fn rows(&self) -> Vec<Tuple> {
        let mut out = Vec::new();
        for (t, m) in self.results() {
            for _ in 0..m.max(0) {
                out.push(t.clone());
            }
        }
        out
    }

    /// Number of distinct result tuples.
    pub fn distinct_count(&self) -> usize {
        self.net.sink(self.sid).results.len()
    }

    /// Total row count (with multiplicities).
    pub fn row_count(&self) -> usize {
        self.net
            .sink(self.sid)
            .results
            .values()
            .map(|m| (*m).max(0) as usize)
            .sum()
    }

    /// Tuples materialised across the view's subgraph (memory metric).
    pub fn memory_tuples(&self) -> usize {
        self.net.memory_tuples_of(self.sid)
    }

    /// Number of maintenance rounds executed.
    pub fn maintenance_count(&self) -> u64 {
        self.net.sink(self.sid).maintenance_count
    }

    /// Per-operator statistics of the view's subgraph.
    pub fn network_stats(&self) -> OpStats {
        self.net.stats_of(self.sid)
    }
}

#[cfg(test)]
mod par_tests {
    use super::*;

    /// Regression test for the parallel-pass abort path: a panicking
    /// task must tear the pass down terminally. An earlier version
    /// stomped `remaining` to zero on abort, so any in-flight
    /// completion's `fetch_sub` wrapped the counter to `usize::MAX` and
    /// the surviving workers parked on the condvar forever (the
    /// broadcast never returned). With the `aborted` flag this test
    /// terminates, captures the payload, and runs no queued task after
    /// the abort.
    #[test]
    fn panicking_task_aborts_pass_without_deadlock() {
        const TASKS: usize = 64;
        let unit = || Node {
            kind: NodeKind::Unit { emitted: false },
            plan: Fra::Unit,
            fingerprint: 0,
            parents: Vec::new(),
            sinks: Vec::new(),
            delivered_events: 0,
        };
        // Slot 0 is empty, so its task panics on the "live node"
        // expect; every other task is an independent no-op, so plenty
        // of completions race the abort.
        let mut nodes: Vec<Option<Node>> = (0..TASKS)
            .map(|i| if i == 0 { None } else { Some(unit()) })
            .collect();
        let mut outputs: Vec<Delta> = (0..TASKS).map(|_| Delta::new()).collect();
        let queued = vec![0u64; TASKS];
        let event_gen = vec![0u64; TASKS];
        let slots: Vec<u32> = (0..TASKS as u32).collect();
        let parents_ix = vec![0u32; TASKS + 1];
        let pending: Vec<AtomicU32> = (0..TASKS).map(|_| AtomicU32::new(0)).collect();
        let consolidate = vec![false; TASKS];
        let g = PropertyGraph::new();
        for _ in 0..16 {
            let shared = ParShared {
                nodes: nodes.as_mut_ptr(),
                outputs: outputs.as_mut_ptr(),
                queued: &queued,
                event_gen: &event_gen,
                slots: &slots,
                parents_flat: &[],
                parents_ix: &parents_ix,
                pending: &pending,
                consolidate: &consolidate,
                generation: 1,
                g: &g,
                events: &[],
                queue: Mutex::new((0..TASKS as u32).rev().collect()),
                work_cv: Condvar::new(),
                remaining: AtomicUsize::new(TASKS),
                aborted: AtomicBool::new(false),
                panic: Mutex::new(None),
            };
            let workers = WorkerPool::new(4);
            workers.broadcast(|_| shared.work_loop());
            assert!(shared.aborted.load(Ordering::Acquire));
            let payload = shared.panic.into_inner().expect("panic captured");
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            assert!(msg.contains("live node"), "unexpected payload: {msg:?}");
        }
    }
}
