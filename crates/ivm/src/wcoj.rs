//! ⨝ⁿ — worst-case optimal n-ary join (generic join / leapfrog
//! triejoin) in counting delta form.
//!
//! Binary join trees are worst-case *suboptimal* on cyclic patterns:
//! maintaining a triangle query as `(R ⋈ S) ⋈ T` materialises the
//! Θ(|E|²) open wedges of `R ⋈ S` even when only O(|E|^{3/2})
//! triangles exist (the AGM bound). This operator joins all n inputs at
//! once, binding one *variable* at a time in a fixed global order and
//! intersecting, per variable, the candidate sets every input offers —
//! so no intermediate ever exceeds the final result's fractional edge
//! cover bound (Ngo–Porat–Ré–Rudra; Veldhuizen's leapfrog triejoin).
//!
//! # Delta form
//!
//! The maintenance rule is the n-ary extension of the bilinear binary
//! rule, evaluated as n sequential passes:
//!
//! ```text
//! Δ(R₁ ⋈ … ⋈ Rₙ) = Σᵢ  R₁ⁿᵉʷ ⋈ … ⋈ Rᵢ₋₁ⁿᵉʷ ⋈ ΔRᵢ ⋈ Rᵢ₊₁ᵒˡᵈ ⋈ … ⋈ Rₙᵒˡᵈ
//! ```
//!
//! Pass `i` seeds the join with each ΔRᵢ tuple (binding all of input
//! `i`'s variables at once), enumerates the remaining variables in
//! ascending global order by intersecting the other inputs' candidate
//! sets, and only then folds ΔRᵢ into input `i`'s memory — so memories
//! `j < i` are post-transaction and memories `j > i` pre-transaction,
//! exactly as the rule requires. Each inserted or deleted edge therefore
//! pays for the *new or vanished motif instances it participates in*,
//! never for wedge intermediates.
//!
//! # Memories
//!
//! Each input position keeps its own memory, even when several positions
//! share one upstream node (a triangle over a single edge type
//! hash-conses all three scans into one node; the sequential rule needs
//! per-position old/new staging regardless). A memory is a `full` map
//! (complete variable binding → multiplicity) plus a family of
//! `SubIndex`es — one per (bound-variable-set, next-variable) pair any
//! delta rule or replay can probe it with. The index family is computed
//! statically from the variable order at construction; maintenance
//! updates every index in lockstep.
//!
//! # Candidate backends: sorted runs vs hash tries
//!
//! A sub-index entry holds the candidate values of one variable under a
//! bound prefix, in one of two interchangeable backends:
//!
//! * **Sorted runs** (default) — a `SortedSet`: a large sorted `base`
//!   run (zero-multiplicity tombstones compacted lazily) plus a small
//!   sorted `tail` run that absorbs recent deltas and is merged into
//!   the base when it outgrows its cap, so per-delta maintenance stays
//!   amortised-logarithmic. The per-variable intersection walks all
//!   consulted sets **leapfrog-style** with exponential-search
//!   galloping (`SetCursor::seek_geq`): intersecting a 10-degree
//!   candidate list against a 10k-degree hub costs O(10·log 10k)
//!   comparisons instead of the O(10k)-sized hash iteration.
//! * **Hash tries** — plain `Value → multiplicity` hash maps; the
//!   intersection iterates the smallest map and probes the rest. O(1)
//!   per probe but cannot skip, so a hub pays its full degree. Kept as
//!   the `PGQ_WCOJ_SORTED=0` fallback (see
//!   [`sorted_wcoj_enabled`](crate::network::sorted_wcoj_enabled)).
//!
//! Both backends prune at zero net multiplicity, so presence ⇔ support
//! and the enumeration logic is backend-agnostic. The `ivm-stats`
//! counters `gallop_steps` / `intersect_probes` expose the intersection
//! work for the counter-pinning tests.
//!
//! Variable ids double as the elimination order **and** the output
//! column positions (see [`pgq_algebra::fra::Fra::MultiwayJoin`]), so
//! the emitted tuple is simply the binding vector.

use std::cmp::Ordering;

use pgq_common::fxhash::FxHashMap;
use pgq_common::tuple::Tuple;
use pgq_common::value::Value;

use crate::delta::Delta;
use crate::stats::counters;

/// Merge the sorted `tail` run into `base` once it exceeds
/// `TAIL_CAP_MIN + base/8` entries (amortises the O(base) merge over
/// Ω(base/8) inserts).
const TAIL_CAP_MIN: usize = 8;

/// Compact `base` tombstones once they outnumber live base entries
/// (and there are at least this many).
const COMPACT_MIN: usize = 8;

/// Candidate values of one variable under one bound prefix, as two
/// sorted runs: `base` (may carry zero-multiplicity tombstones) and a
/// small `tail` of recent updates. A value lives in **exactly one**
/// run (a tombstone counts as living in `base`), so updates are a
/// binary search and intersections never see duplicates.
#[derive(Clone, Debug, Default)]
struct SortedSet {
    /// Main run, ascending by [`Value::total_cmp`]; entries with
    /// multiplicity 0 are tombstones awaiting compaction.
    base: Vec<(Value, i64)>,
    /// Recent updates, ascending, tombstone-free, disjoint from `base`.
    tail: Vec<(Value, i64)>,
    /// Tombstones currently in `base`.
    zeros: usize,
}

impl SortedSet {
    fn with_entry(v: Value, m: i64) -> SortedSet {
        SortedSet {
            base: vec![(v, m)],
            tail: Vec::new(),
            zeros: 0,
        }
    }

    /// Live (non-tombstone) candidates.
    fn len(&self) -> usize {
        self.base.len() - self.zeros + self.tail.len()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fold one signed multiplicity update, keeping both runs sorted.
    fn add(&mut self, v: &Value, m: i64) {
        if let Ok(i) = self.base.binary_search_by(|(x, _)| x.total_cmp(v)) {
            let before = self.base[i].1;
            let after = before + m;
            self.base[i].1 = after;
            match (before == 0, after == 0) {
                (false, true) => {
                    self.zeros += 1;
                    if self.zeros >= COMPACT_MIN && self.zeros * 2 > self.base.len() {
                        self.base.retain(|&(_, c)| c != 0);
                        self.zeros = 0;
                    }
                }
                (true, false) => self.zeros -= 1,
                _ => {}
            }
            return;
        }
        match self.tail.binary_search_by(|(x, _)| x.total_cmp(v)) {
            Ok(i) => {
                self.tail[i].1 += m;
                if self.tail[i].1 == 0 {
                    self.tail.remove(i);
                }
            }
            Err(i) => {
                self.tail.insert(i, (v.clone(), m));
                if self.tail.len() > TAIL_CAP_MIN + self.base.len() / 8 {
                    self.merge_tail();
                }
            }
        }
    }

    /// Merge `tail` into `base`, dropping tombstones along the way.
    fn merge_tail(&mut self) {
        let mut merged = Vec::with_capacity(self.len());
        let mut bi = 0;
        let mut ti = 0;
        while bi < self.base.len() && ti < self.tail.len() {
            // Runs are disjoint, so the comparison is never Equal.
            if self.base[bi].0.total_cmp(&self.tail[ti].0) == Ordering::Less {
                if self.base[bi].1 != 0 {
                    merged.push(std::mem::replace(&mut self.base[bi], (Value::Null, 0)));
                }
                bi += 1;
            } else {
                merged.push(std::mem::replace(&mut self.tail[ti], (Value::Null, 0)));
                ti += 1;
            }
        }
        for e in &mut self.base[bi..] {
            if e.1 != 0 {
                merged.push(std::mem::replace(e, (Value::Null, 0)));
            }
        }
        for e in &mut self.tail[ti..] {
            merged.push(std::mem::replace(e, (Value::Null, 0)));
        }
        self.base = merged;
        self.tail.clear();
        self.zeros = 0;
    }
}

/// First index in the sorted run `xs[from..]` whose value is ≥ `bound`,
/// by exponential search from `from` (gallop doublings + binary search
/// within the last doubled window). Returns the index and the number of
/// comparison steps taken.
fn gallop_geq(xs: &[(Value, i64)], from: usize, bound: &Value) -> (usize, u64) {
    let n = xs.len();
    if from >= n || xs[from].0.total_cmp(bound) != Ordering::Less {
        return (from, 1);
    }
    let mut steps = 1u64;
    // Invariant: xs[lo] < bound.
    let mut lo = from;
    let mut step = 1usize;
    while lo + step < n && xs[lo + step].0.total_cmp(bound) == Ordering::Less {
        lo += step;
        step *= 2;
        steps += 1;
    }
    let mut hi = (lo + step).min(n);
    // Binary search (lo, hi]: first index ≥ bound.
    let mut l = lo + 1;
    while l < hi {
        let mid = l + (hi - l) / 2;
        steps += 1;
        if xs[mid].0.total_cmp(bound) == Ordering::Less {
            l = mid + 1;
        } else {
            hi = mid;
        }
    }
    (l, steps)
}

/// Leapfrog cursor over one [`SortedSet`]'s two runs, presenting the
/// merged ascending sequence of live candidates. `bi` always rests on a
/// live base entry (tombstones are hopped in `settle`).
struct SetCursor<'a> {
    base: &'a [(Value, i64)],
    tail: &'a [(Value, i64)],
    bi: usize,
    ti: usize,
}

impl<'a> SetCursor<'a> {
    fn new(set: &'a SortedSet) -> SetCursor<'a> {
        let mut c = SetCursor {
            base: &set.base,
            tail: &set.tail,
            bi: 0,
            ti: 0,
        };
        c.settle();
        c
    }

    /// Hop `bi` past tombstones.
    fn settle(&mut self) {
        while self.bi < self.base.len() && self.base[self.bi].1 == 0 {
            self.bi += 1;
        }
    }

    /// The smaller of the two run heads, i.e. the current candidate.
    fn current(&self) -> Option<&'a Value> {
        match (self.base.get(self.bi), self.tail.get(self.ti)) {
            (Some((b, _)), Some((t, _))) => {
                if b.total_cmp(t) == Ordering::Less {
                    Some(b)
                } else {
                    Some(t)
                }
            }
            (Some((b, _)), None) => Some(b),
            (None, Some((t, _))) => Some(t),
            (None, None) => None,
        }
    }

    /// Gallop both runs to the first candidate ≥ `bound`.
    fn seek_geq(&mut self, bound: &Value) {
        let (bi, s1) = gallop_geq(self.base, self.bi, bound);
        self.bi = bi;
        let (ti, s2) = gallop_geq(self.tail, self.ti, bound);
        self.ti = ti;
        counters::gallop_steps(s1 + s2);
        self.settle();
    }

    /// Step past the current candidate.
    fn advance(&mut self) {
        match (self.base.get(self.bi), self.tail.get(self.ti)) {
            (Some((b, _)), Some((t, _))) => {
                // Runs are disjoint: exactly one holds the current min.
                if b.total_cmp(t) == Ordering::Less {
                    self.bi += 1;
                    self.settle();
                } else {
                    self.ti += 1;
                }
            }
            (Some(_), None) => {
                self.bi += 1;
                self.settle();
            }
            (None, Some(_)) => self.ti += 1,
            (None, None) => {}
        }
    }
}

/// One sub-index entry: the candidates of one variable under one bound
/// prefix, in the operator's chosen backend.
#[derive(Clone, Debug)]
enum CandidateSet {
    /// Hash-trie backend: value → summed multiplicity, pruned at zero.
    Hash(FxHashMap<Value, i64>),
    /// Sorted-run backend (leapfrog + galloping).
    Sorted(SortedSet),
}

impl CandidateSet {
    fn new_entry(sorted: bool, v: Value, m: i64) -> CandidateSet {
        if sorted {
            CandidateSet::Sorted(SortedSet::with_entry(v, m))
        } else {
            let mut inner = FxHashMap::default();
            inner.insert(v, m);
            CandidateSet::Hash(inner)
        }
    }

    fn add(&mut self, v: &Value, m: i64) {
        match self {
            CandidateSet::Hash(inner) => {
                let c = inner.entry(v.clone()).or_insert(0);
                *c += m;
                if *c == 0 {
                    inner.remove(v);
                }
            }
            CandidateSet::Sorted(set) => set.add(v, m),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            CandidateSet::Hash(inner) => inner.is_empty(),
            CandidateSet::Sorted(set) => set.is_empty(),
        }
    }
}

/// One probe order over an input: bound variables (the lookup key) →
/// candidate values of one further variable, with summed multiplicities
/// (entries are pruned at zero, so presence ⇔ support).
#[derive(Clone, Debug)]
struct SubIndex {
    /// Global variable ids of the lookup key, ascending.
    key_vars: Vec<usize>,
    /// Column positions of `key_vars` in this input's tuples.
    key_cols: Vec<usize>,
    /// The variable whose candidates this index yields.
    val_var: usize,
    /// Column position of `val_var`.
    val_col: usize,
    /// Key values (in `key_vars` order) → candidate set.
    map: FxHashMap<Tuple, CandidateSet>,
}

/// Memory and static wiring of one input position.
#[derive(Clone, Debug)]
struct InputState {
    /// Distinct global variable ids bound by this input, ascending.
    vars: Vec<usize>,
    /// First column carrying each of `vars`.
    cols: Vec<usize>,
    /// Column pairs that must agree (the same variable mapped twice);
    /// tuples violating one can never join and are not stored.
    dup_checks: Vec<(usize, usize)>,
    /// Candidate-set backend: sorted runs (true) or hash tries.
    sorted: bool,
    /// Full binding (values of `vars`, in order) → multiplicity.
    full: FxHashMap<Tuple, i64>,
    /// Probe orders required by the delta rules and replay.
    indexes: Vec<SubIndex>,
}

impl InputState {
    /// Multiplicity of the current binding projected onto this input.
    fn full_count(&self, binding: &[Value], scratch: &mut Vec<Value>) -> i64 {
        scratch.clear();
        scratch.extend(self.vars.iter().map(|&v| binding[v].clone()));
        self.full
            .get(&Tuple::from_slice(scratch))
            .copied()
            .unwrap_or(0)
    }

    /// Fold one signed update into the full map and every sub-index.
    fn fold(&mut self, t: &Tuple, m: i64) {
        use std::collections::hash_map::Entry;
        if self.dup_checks.iter().any(|&(a, b)| t.get(a) != t.get(b)) {
            return;
        }
        let key = Tuple::new(self.cols.iter().map(|&c| t.get(c).clone()).collect());
        match self.full.entry(key) {
            Entry::Occupied(mut e) => {
                *e.get_mut() += m;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            Entry::Vacant(v) => {
                v.insert(m);
            }
        }
        let sorted = self.sorted;
        for idx in &mut self.indexes {
            let kt = Tuple::new(idx.key_cols.iter().map(|&c| t.get(c).clone()).collect());
            let val = t.get(idx.val_col);
            match idx.map.entry(kt) {
                Entry::Occupied(mut e) => {
                    e.get_mut().add(val, m);
                    if e.get().is_empty() {
                        e.remove();
                    }
                }
                Entry::Vacant(v) => {
                    v.insert(CandidateSet::new_entry(sorted, val.clone(), m));
                }
            }
        }
    }
}

/// One enumeration position of a rule: the variable to bind and the
/// `(input, index slot)` pairs whose candidate sets constrain it.
#[derive(Clone, Debug)]
struct Step {
    var: usize,
    consults: Vec<(usize, usize)>,
}

/// One delta rule (seed input `i`), or the full-replay pseudo-rule.
#[derive(Clone, Debug)]
struct Rule {
    /// `(variable, seed column)` pairs bound directly from a seed tuple.
    seed_binds: Vec<(usize, usize)>,
    /// Inputs whose variables the seed binds completely — checked (and
    /// multiplied in) before enumeration starts.
    prechecks: Vec<usize>,
    /// Remaining variables in ascending global order.
    steps: Vec<Step>,
    /// Inputs that participate in enumeration; their full-map count
    /// scales the final multiplicity.
    finals: Vec<usize>,
}

/// Is sorted `a` a subset of sorted `b`?
fn subset_of(a: &[usize], b: &[usize]) -> bool {
    let mut j = 0;
    'outer: for &x in a {
        while j < b.len() {
            let y = b[j];
            j += 1;
            if y == x {
                continue 'outer;
            }
            if y > x {
                return false;
            }
        }
        return false;
    }
    true
}

/// Find or create the sub-index of `input` keyed by `key_vars` yielding
/// candidates for `val_var`.
fn intern_index(input: &mut InputState, key_vars: Vec<usize>, val_var: usize) -> usize {
    if let Some(ix) = input
        .indexes
        .iter()
        .position(|x| x.key_vars == key_vars && x.val_var == val_var)
    {
        return ix;
    }
    let to_col = |v: usize| input.cols[input.vars.binary_search(&v).expect("var of this input")];
    let key_cols = key_vars.iter().map(|&v| to_col(v)).collect();
    let val_col = to_col(val_var);
    input.indexes.push(SubIndex {
        key_vars,
        key_cols,
        val_var,
        val_col,
        map: FxHashMap::default(),
    });
    input.indexes.len() - 1
}

/// Build the rule for `seed` (`None` = the replay pseudo-rule with
/// nothing bound), interning whatever sub-indexes it needs.
fn build_rule(inputs: &mut [InputState], nvars: usize, seed: Option<usize>) -> Rule {
    let bound: Vec<usize> = seed.map(|s| inputs[s].vars.clone()).unwrap_or_default();
    let seed_binds: Vec<(usize, usize)> = seed
        .map(|s| {
            inputs[s]
                .vars
                .iter()
                .copied()
                .zip(inputs[s].cols.iter().copied())
                .collect()
        })
        .unwrap_or_default();
    let mut prechecks = Vec::new();
    let mut finals = Vec::new();
    for (j, input) in inputs.iter().enumerate() {
        if Some(j) == seed {
            continue;
        }
        if subset_of(&input.vars, &bound) {
            prechecks.push(j);
        } else {
            finals.push(j);
        }
    }
    let mut steps = Vec::new();
    for v in 0..nvars {
        if bound.binary_search(&v).is_ok() {
            continue;
        }
        let mut consults = Vec::new();
        for (j, input) in inputs.iter_mut().enumerate() {
            if Some(j) == seed || input.vars.binary_search(&v).is_err() {
                continue;
            }
            // A variable `w` of input `j` is already bound when `v` is
            // enumerated iff the seed bound it, or it precedes `v` in
            // the ascending enumeration.
            let key_vars: Vec<usize> = input
                .vars
                .iter()
                .copied()
                .filter(|&w| w != v && (w < v || bound.binary_search(&w).is_ok()))
                .collect();
            let slot = intern_index(input, key_vars, v);
            consults.push((j, slot));
        }
        debug_assert!(
            !consults.is_empty(),
            "variable {v} occurs in no probe-able input"
        );
        steps.push(Step { var: v, consults });
    }
    Rule {
        seed_binds,
        prechecks,
        steps,
        finals,
    }
}

/// Hash-trie intersection: iterate the smallest map, probe the rest.
#[allow(clippy::too_many_arguments)]
fn intersect_hash(
    inputs: &[InputState],
    rule: &Rule,
    step_ix: usize,
    var: usize,
    maps: &[&FxHashMap<Value, i64>],
    binding: &mut [Value],
    scratch: &mut Vec<Value>,
    mult: i64,
    out: &mut Delta,
) {
    let mut min_ix = 0;
    for (k, inner) in maps.iter().enumerate() {
        if inner.len() < maps[min_ix].len() {
            min_ix = k;
        }
    }
    'vals: for val in maps[min_ix].keys() {
        for (k, inner) in maps.iter().enumerate() {
            if k == min_ix {
                continue;
            }
            counters::intersect_probe();
            if !inner.contains_key(val) {
                continue 'vals;
            }
        }
        binding[var] = val.clone();
        enumerate(inputs, rule, step_ix + 1, binding, scratch, mult, out);
    }
}

/// Sorted-run intersection: leapfrog all cursors to each common value,
/// galloping past the gaps.
#[allow(clippy::too_many_arguments)]
fn intersect_sorted(
    inputs: &[InputState],
    rule: &Rule,
    step_ix: usize,
    var: usize,
    sets: &[&SortedSet],
    binding: &mut [Value],
    scratch: &mut Vec<Value>,
    mult: i64,
    out: &mut Delta,
) {
    let k = sets.len();
    let mut cursors: Vec<SetCursor> = sets.iter().map(|s| SetCursor::new(s)).collect();
    if k == 1 {
        while let Some(v) = cursors[0].current() {
            binding[var] = v.clone();
            enumerate(inputs, rule, step_ix + 1, binding, scratch, mult, out);
            cursors[0].advance();
        }
        return;
    }
    // Candidate = cursor 0's current; leapfrog the others round-robin
    // until all k cursors agree on it (raising it whenever a cursor
    // overshoots) or some cursor exhausts.
    'outer: while let Some(v0) = cursors[0].current() {
        let mut hi = v0.clone();
        let mut agreed = 1usize;
        let mut idx = 1usize;
        while agreed < k {
            let c = &mut cursors[idx % k];
            counters::intersect_probe();
            c.seek_geq(&hi);
            match c.current() {
                None => break 'outer,
                Some(v) => {
                    if v.total_cmp(&hi) == Ordering::Equal {
                        agreed += 1;
                    } else {
                        hi = v.clone();
                        agreed = 1;
                    }
                }
            }
            idx += 1;
        }
        binding[var] = hi;
        enumerate(inputs, rule, step_ix + 1, binding, scratch, mult, out);
        cursors[0].advance();
    }
}

/// Enumerate the unbound variables of `rule` (from `step_ix` on) over
/// the current `binding`, emitting every complete binding with its
/// multiplicity product. Per variable: look up each consulted input's
/// candidate set under the bound prefix and intersect — leapfrog with
/// galloping on the sorted backend, iterate-smallest/probe-rest on the
/// hash backend.
fn enumerate(
    inputs: &[InputState],
    rule: &Rule,
    step_ix: usize,
    binding: &mut [Value],
    scratch: &mut Vec<Value>,
    mult: i64,
    out: &mut Delta,
) {
    let Some(step) = rule.steps.get(step_ix) else {
        let mut total = mult;
        for &j in &rule.finals {
            total *= inputs[j].full_count(binding, scratch);
            if total == 0 {
                return;
            }
        }
        counters::wcoj_tuple_emitted();
        out.push(Tuple::from_slice(binding), total);
        return;
    };
    let mut sets: Vec<&CandidateSet> = Vec::with_capacity(step.consults.len());
    for &(j, slot) in &step.consults {
        let idx = &inputs[j].indexes[slot];
        scratch.clear();
        scratch.extend(idx.key_vars.iter().map(|&v| binding[v].clone()));
        match idx.map.get(&Tuple::from_slice(scratch)) {
            Some(set) => sets.push(set),
            None => return,
        }
    }
    // All consulted sets share the operator's backend; dispatch on the
    // first. (`len` guides nothing on the sorted path — cursors gallop.)
    match sets[0] {
        CandidateSet::Hash(_) => {
            let maps: Vec<&FxHashMap<Value, i64>> = sets
                .iter()
                .map(|s| match s {
                    CandidateSet::Hash(inner) => inner,
                    CandidateSet::Sorted(_) => unreachable!("mixed candidate backends"),
                })
                .collect();
            intersect_hash(
                inputs, rule, step_ix, step.var, &maps, binding, scratch, mult, out,
            );
        }
        CandidateSet::Sorted(_) => {
            let runs: Vec<&SortedSet> = sets
                .iter()
                .map(|s| match s {
                    CandidateSet::Sorted(set) => set,
                    CandidateSet::Hash(_) => unreachable!("mixed candidate backends"),
                })
                .collect();
            intersect_sorted(
                inputs, rule, step_ix, step.var, &runs, binding, scratch, mult, out,
            );
        }
    }
}

/// The ⨝ⁿ dataflow operator. Construct with the per-input column→
/// variable maps of the planned
/// [`Fra::MultiwayJoin`](pgq_algebra::fra::Fra::MultiwayJoin); feed one
/// delta per input
/// position per transaction via [`MultiwayJoinOp::apply`].
#[derive(Clone, Debug)]
pub struct MultiwayJoinOp {
    nvars: usize,
    inputs: Vec<InputState>,
    /// Delta rule per input position.
    rules: Vec<Rule>,
    /// Full-enumeration rule (nothing bound) for replay.
    replay: Rule,
    /// Reusable binding vector (one slot per variable).
    binding: Vec<Value>,
    /// Reusable key-assembly buffer.
    scratch: Vec<Value>,
}

impl MultiwayJoinOp {
    /// Build the operator for inputs whose column `c` carries variable
    /// `var_of[i][c]`; `nvars` output variables double as the
    /// elimination order. Uses the sorted-run backend.
    pub fn new(var_of: &[Vec<usize>], nvars: usize) -> MultiwayJoinOp {
        MultiwayJoinOp::with_backend(var_of, nvars, true)
    }

    /// [`MultiwayJoinOp::new`] with an explicit candidate backend:
    /// sorted runs (`true`, the default) or the hash-trie fallback.
    pub fn with_backend(var_of: &[Vec<usize>], nvars: usize, sorted: bool) -> MultiwayJoinOp {
        let mut inputs: Vec<InputState> = var_of
            .iter()
            .map(|by_col| {
                let mut vars: Vec<usize> = by_col.clone();
                vars.sort_unstable();
                vars.dedup();
                let cols = vars
                    .iter()
                    .map(|&v| by_col.iter().position(|&w| w == v).expect("var present"))
                    .collect();
                let mut dup_checks = Vec::new();
                for (c, &v) in by_col.iter().enumerate() {
                    let first = by_col.iter().position(|&w| w == v).expect("var present");
                    if first != c {
                        dup_checks.push((first, c));
                    }
                }
                InputState {
                    vars,
                    cols,
                    dup_checks,
                    sorted,
                    full: FxHashMap::default(),
                    indexes: Vec::new(),
                }
            })
            .collect();
        let mut rules = Vec::with_capacity(inputs.len());
        for i in 0..inputs.len() {
            rules.push(build_rule(&mut inputs, nvars, Some(i)));
        }
        let replay = build_rule(&mut inputs, nvars, None);
        MultiwayJoinOp {
            nvars,
            inputs,
            rules,
            replay,
            binding: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Does this operator keep sorted-run candidate sets (vs hash
    /// tries)?
    pub fn sorted_backend(&self) -> bool {
        self.inputs.first().is_none_or(|i| i.sorted)
    }

    /// Distinct tuples stored across the input memories (full maps; the
    /// derived sub-indexes are not double-counted).
    pub fn memory_tuples(&self) -> usize {
        self.inputs.iter().map(|i| i.full.len()).sum()
    }

    /// Process one transaction's deltas (one per input position, in
    /// order; positions sharing an upstream node receive the same
    /// delta), appending the output delta to `out`.
    pub fn apply(&mut self, deltas: &[&Delta], out: &mut Delta) {
        debug_assert_eq!(deltas.len(), self.inputs.len());
        let mut binding = std::mem::take(&mut self.binding);
        let mut scratch = std::mem::take(&mut self.scratch);
        binding.clear();
        binding.resize(self.nvars, Value::Null);
        for (i, delta) in deltas.iter().enumerate() {
            if !delta.is_empty() {
                let rule = &self.rules[i];
                let seed_input = &self.inputs[i];
                for (t, m) in delta.iter() {
                    if seed_input
                        .dup_checks
                        .iter()
                        .any(|&(a, b)| t.get(a) != t.get(b))
                    {
                        continue;
                    }
                    for &(v, c) in &rule.seed_binds {
                        binding[v] = t.get(c).clone();
                    }
                    let mut mult = *m;
                    for &j in &rule.prechecks {
                        mult *= self.inputs[j].full_count(&binding, &mut scratch);
                        if mult == 0 {
                            break;
                        }
                    }
                    if mult != 0 {
                        enumerate(&self.inputs, rule, 0, &mut binding, &mut scratch, mult, out);
                    }
                }
            }
            // Fold ΔRᵢ only now: memory `i` stays pre-transaction while
            // its own delta seeds, and is post-transaction for rules > i.
            for (t, m) in delta.iter() {
                self.inputs[i].fold(t, *m);
            }
        }
        self.binding = binding;
        self.scratch = scratch;
    }

    /// Rebuild every input memory from full input bags without
    /// enumerating a single motif — the warm-recovery path. Post-state
    /// is identical to `apply(deltas, &mut discard)`: the seeded
    /// leapfrog enumeration in apply exists only to compute the
    /// discarded output (for cyclic patterns it is the dominant cost of
    /// cold re-registration), while the memories absorb exactly the
    /// folded inputs.
    pub fn restore(&mut self, deltas: &[&Delta]) {
        debug_assert_eq!(deltas.len(), self.inputs.len());
        for (i, delta) in deltas.iter().enumerate() {
            for (t, m) in delta.iter() {
                self.inputs[i].fold(t, *m);
            }
        }
    }

    /// Reconstruct the full current output bag from the memories,
    /// appending to `out` (used when a new view attaches to this node).
    pub fn replay_into(&mut self, out: &mut Delta) {
        let mut binding = std::mem::take(&mut self.binding);
        let mut scratch = std::mem::take(&mut self.scratch);
        binding.clear();
        binding.resize(self.nvars, Value::Null);
        enumerate(
            &self.inputs,
            &self.replay,
            0,
            &mut binding,
            &mut scratch,
            1,
            out,
        );
        self.binding = binding;
        self.scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_common::fxhash::FxHashMap;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    fn d(entries: &[(&[i64], i64)]) -> Delta {
        entries.iter().map(|(v, m)| (t(v), *m)).collect()
    }

    /// Naive n-way nested-loop join over bags, as the oracle.
    fn naive(
        rels: &[Vec<(Tuple, i64)>],
        var_of: &[Vec<usize>],
        nvars: usize,
    ) -> FxHashMap<Tuple, i64> {
        fn rec(
            rels: &[Vec<(Tuple, i64)>],
            var_of: &[Vec<usize>],
            i: usize,
            binding: &mut Vec<Option<Value>>,
            mult: i64,
            out: &mut FxHashMap<Tuple, i64>,
        ) {
            if i == rels.len() {
                let vals: Vec<Value> = binding
                    .iter()
                    .map(|v| v.clone().expect("all vars bound"))
                    .collect();
                *out.entry(Tuple::new(vals)).or_insert(0) += mult;
                return;
            }
            'tuples: for (tu, m) in &rels[i] {
                let saved = binding.clone();
                for (c, &v) in var_of[i].iter().enumerate() {
                    match &binding[v] {
                        Some(x) if x != tu.get(c) => {
                            *binding = saved;
                            continue 'tuples;
                        }
                        Some(_) => {}
                        None => binding[v] = Some(tu.get(c).clone()),
                    }
                }
                rec(rels, var_of, i + 1, binding, mult * m, out);
                *binding = saved;
            }
        }
        let mut out = FxHashMap::default();
        let mut binding = vec![None; nvars];
        rec(rels, var_of, 0, &mut binding, 1, &mut out);
        out.retain(|_, m| *m != 0);
        out
    }

    /// Drive the op with a script of per-input delta batches — on BOTH
    /// candidate backends — checking the accumulated output against the
    /// naive join of the accumulated relations after every batch.
    fn check_script(var_of: Vec<Vec<usize>>, nvars: usize, script: Vec<Vec<Delta>>) {
        for sorted in [true, false] {
            let mut op = MultiwayJoinOp::with_backend(&var_of, nvars, sorted);
            assert_eq!(op.sorted_backend(), sorted);
            let n = var_of.len();
            let mut rels: Vec<Vec<(Tuple, i64)>> = vec![Vec::new(); n];
            let mut acc: FxHashMap<Tuple, i64> = FxHashMap::default();
            for batch in &script {
                assert_eq!(batch.len(), n);
                let mut out = Delta::new();
                {
                    let refs: Vec<&Delta> = batch.iter().collect();
                    op.apply(&refs, &mut out);
                }
                for (i, delta) in batch.iter().enumerate() {
                    for (tu, m) in delta.iter() {
                        rels[i].push((tu.clone(), *m));
                    }
                }
                for (tu, m) in out.iter() {
                    *acc.entry(tu.clone()).or_insert(0) += m;
                }
                acc.retain(|_, m| *m != 0);
                assert_eq!(
                    acc,
                    naive(&rels, &var_of, nvars),
                    "incremental drifted (sorted={sorted})"
                );
                // Replay must agree with the accumulated output.
                let mut replay = Delta::new();
                op.replay_into(&mut replay);
                let mut replay_map: FxHashMap<Tuple, i64> = FxHashMap::default();
                for (tu, m) in replay.iter() {
                    *replay_map.entry(tu.clone()).or_insert(0) += m;
                }
                replay_map.retain(|_, m| *m != 0);
                assert_eq!(replay_map, acc, "replay drifted (sorted={sorted})");
            }
        }
    }

    const TRI: [&[usize]; 3] = [&[0, 1], &[1, 2], &[2, 0]];

    fn tri_vars() -> Vec<Vec<usize>> {
        TRI.iter().map(|v| v.to_vec()).collect()
    }

    #[test]
    fn triangle_inserts_then_deletes() {
        check_script(
            tri_vars(),
            3,
            vec![
                // R(1,2), S(2,3), T(3,1) → triangle (1,2,3).
                vec![d(&[(&[1, 2], 1)]), d(&[(&[2, 3], 1)]), d(&[(&[3, 1], 1)])],
                // A second triangle sharing the edge R(1,2).
                vec![Delta::new(), d(&[(&[2, 4], 1)]), d(&[(&[4, 1], 1)])],
                // Delete the shared edge: both triangles retract.
                vec![d(&[(&[1, 2], -1)]), Delta::new(), Delta::new()],
            ],
        );
    }

    #[test]
    fn triangle_same_batch_all_inputs() {
        // All three edges of a triangle plus unrelated edges in ONE
        // batch — exercises the sequential old/new staging.
        check_script(
            tri_vars(),
            3,
            vec![vec![
                d(&[(&[1, 2], 1), (&[5, 6], 1)]),
                d(&[(&[2, 3], 1), (&[6, 7], 1)]),
                d(&[(&[3, 1], 1), (&[9, 5], 1)]),
            ]],
        );
    }

    #[test]
    fn triangle_multiplicities_multiply() {
        check_script(
            tri_vars(),
            3,
            vec![
                vec![d(&[(&[1, 2], 2)]), d(&[(&[2, 3], 3)]), d(&[(&[3, 1], 1)])],
                vec![Delta::new(), Delta::new(), d(&[(&[3, 1], 4)])],
            ],
        );
    }

    #[test]
    fn self_join_same_delta_at_every_position() {
        // Triangle over ONE relation: the same delta arrives at all
        // three positions (the shared-scan case).
        let edges = [
            (&[1i64, 2][..], 1i64),
            (&[2, 3][..], 1),
            (&[3, 1][..], 1),
            (&[2, 1][..], 1),
            (&[1, 3][..], 1),
            (&[3, 2][..], 1),
            (&[4, 1][..], 1),
        ];
        let batch = d(&edges);
        check_script(
            tri_vars(),
            3,
            vec![
                vec![batch.clone(), batch.clone(), batch.clone()],
                vec![
                    d(&[(&[3, 1], -1)]),
                    d(&[(&[3, 1], -1)]),
                    d(&[(&[3, 1], -1)]),
                ],
            ],
        );
    }

    #[test]
    fn repeated_variable_within_one_input() {
        // R(a,a) ⋈ S(a,b): the first input's two columns carry the same
        // variable, so tuples with unequal columns never join.
        check_script(
            vec![vec![0, 0], vec![0, 1]],
            2,
            vec![
                vec![d(&[(&[1, 1], 1), (&[2, 3], 1)]), d(&[(&[1, 9], 1)])],
                vec![d(&[(&[3, 3], 1)]), d(&[(&[3, 7], 1), (&[1, 9], -1)])],
            ],
        );
    }

    #[test]
    fn diamond_four_cycle() {
        // 4-cycle a→b→c→d→a.
        check_script(
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]],
            4,
            vec![
                vec![
                    d(&[(&[1, 2], 1)]),
                    d(&[(&[2, 3], 1)]),
                    d(&[(&[3, 4], 1)]),
                    d(&[(&[4, 1], 1)]),
                ],
                vec![
                    d(&[(&[1, 5], 1)]),
                    d(&[(&[5, 3], 1)]),
                    Delta::new(),
                    Delta::new(),
                ],
                vec![
                    Delta::new(),
                    d(&[(&[2, 3], -1)]),
                    Delta::new(),
                    Delta::new(),
                ],
            ],
        );
    }

    #[test]
    fn input_fully_bound_by_seed_precheck() {
        // R(a,b) ⋈ S(a,b) ⋈ T(b,c): for ΔT seeds, S shares only `b`…
        // and for ΔR seeds, S is *fully* bound (the precheck path).
        check_script(
            vec![vec![0, 1], vec![0, 1], vec![1, 2]],
            3,
            vec![
                vec![
                    d(&[(&[1, 2], 1), (&[1, 3], 1)]),
                    d(&[(&[1, 2], 2)]),
                    d(&[(&[2, 9], 1)]),
                ],
                vec![d(&[(&[1, 2], -1)]), Delta::new(), d(&[(&[3, 8], 1)])],
            ],
        );
    }

    #[test]
    fn hub_intersection_both_backends() {
        // A 200-degree hub against a handful of closers: every closer
        // triangle must be found on both backends (and the sorted path
        // gallops instead of scanning — asserted by the ivm-stats
        // counter test, not here).
        let mut spokes: Vec<(Tuple, i64)> = Vec::new();
        for i in 0..200i64 {
            spokes.push((t(&[1, 10 + i]), 1));
        }
        let r: Delta = spokes.iter().cloned().collect();
        let s: Delta = (0..200i64).map(|i| (t(&[10 + i, 2]), 1)).collect();
        let tt: Delta = [(t(&[2, 1]), 1)].into_iter().collect();
        check_script(
            tri_vars(),
            3,
            vec![
                vec![r, s, tt],
                // Deletion-heavy churn across the hub.
                vec![
                    d(&[(&[1, 10], -1), (&[1, 150], -1)]),
                    d(&[(&[110, 2], -1)]),
                    Delta::new(),
                ],
            ],
        );
    }

    /// The sorted-run set must agree with a BTreeMap oracle under a
    /// deterministic churn of inserts/updates/deletes (tombstones,
    /// compaction, and tail merges all exercised).
    #[test]
    fn sorted_set_matches_btree_oracle() {
        use std::collections::BTreeMap;
        let mut set = SortedSet::default();
        let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..4000 {
            let key = (next() % 257) as i64;
            let m = if next() % 3 == 0 { -1 } else { 1 };
            set.add(&Value::Int(key), m);
            let e = oracle.entry(key).or_insert(0);
            *e += m;
            if *e == 0 {
                oracle.remove(&key);
            }
            if next() % 64 == 0 {
                let want: Vec<i64> = oracle.iter().map(|(&k, _)| k).collect();
                let mut got = Vec::new();
                let mut cur = SetCursor::new(&set);
                while let Some(v) = cur.current() {
                    match v {
                        Value::Int(i) => got.push(*i),
                        other => panic!("unexpected value {other:?}"),
                    }
                    cur.advance();
                }
                assert_eq!(got, want, "cursor order drifted from oracle");
                assert_eq!(set.len(), oracle.len());
            }
        }
    }

    /// Galloping seek lands on the first candidate ≥ bound from any
    /// starting position, across both runs.
    #[test]
    fn cursor_seek_geq_is_exact() {
        let mut set = SortedSet::default();
        for k in (0..100i64).map(|i| i * 3) {
            set.add(&Value::Int(k), 1);
        }
        // Tombstone a stretch and push tail entries between base ones.
        for k in (30..60i64).filter(|k| k % 3 == 0) {
            set.add(&Value::Int(k), -1);
        }
        for k in [1i64, 100, 200, 299] {
            set.add(&Value::Int(k), 1);
        }
        let live: Vec<i64> = {
            let mut v: Vec<i64> = (0..100i64)
                .map(|i| i * 3)
                .filter(|&k| !(30..60).contains(&k))
                .collect();
            v.extend([1, 100, 200, 299]);
            v.sort_unstable();
            v
        };
        for bound in 0..310i64 {
            let mut cur = SetCursor::new(&set);
            cur.seek_geq(&Value::Int(bound));
            let want = live.iter().copied().find(|&k| k >= bound);
            let got = cur.current().map(|v| match v {
                Value::Int(i) => *i,
                other => panic!("unexpected value {other:?}"),
            });
            assert_eq!(got, want, "seek_geq({bound})");
        }
    }
}
