//! Base-relation operators: the © get-vertices and ⇑ get-edges scans.
//!
//! Scans are the boundary between the graph's change feed and the tuple
//! dataflow. Each scan remembers the exact tuple(s) it last emitted per
//! element; on a change event it recomputes the element's tuple(s) against
//! the post-state graph and emits the difference. This turns arbitrary
//! fine-grained events (FGN: property/label updates) into minimal tuple
//! deltas without needing a pre-state snapshot.

use pgq_algebra::fra::PropPush;
use pgq_common::dir::Direction;
use pgq_common::fxhash::{FxHashMap, FxHashSet};
use pgq_common::ids::{EdgeId, VertexId};
use pgq_common::intern::Symbol;
use pgq_common::tuple::Tuple;
use pgq_common::value::Value;
use pgq_graph::delta::ChangeEvent;
use pgq_graph::store::PropertyGraph;

use crate::delta::Delta;

/// What part of the change feed a scan can possibly react to — the
/// routing contract the shared dataflow network indexes scans by, so a
/// transaction's events are delivered only to scans that can match them.
#[derive(Clone, Debug)]
pub enum ScanRouting {
    /// A © scan (or an internal vertex scan of a ⋈* node).
    Vertex(VertexRouting),
    /// A ⇑ scan (or the internal edge scan of a ⋈* node).
    Edge(EdgeRouting),
}

/// Routing contract of a vertex scan.
#[derive(Clone, Debug)]
pub struct VertexRouting {
    /// Conjunctive label requirement (empty = every vertex matches).
    pub labels: Vec<Symbol>,
    /// Vertex property keys whose changes can alter emitted tuples;
    /// `None` means *all* keys (the carry-map ablation mode).
    pub prop_keys: Option<Vec<Symbol>>,
}

/// Routing contract of an edge scan.
///
/// Endpoint interest is tracked **per side**: a vertex event matters if
/// the vertex could participate as the pattern-source or as the
/// pattern-target, each judged against that side's own (conjunctive)
/// label requirement. Folding both sides into one union would starve a
/// label-free side — e.g. `(a:A)-[:R]->(b)` pushing `b.x` must see
/// property changes on *any* vertex, because any vertex can be `b`.
#[derive(Clone, Debug)]
pub struct EdgeRouting {
    /// Admissible edge types (empty = any).
    pub types: Vec<Symbol>,
    /// Edge property keys whose changes matter (pushed properties and
    /// literal filters); `None` means all keys (carry-map mode).
    pub edge_prop_keys: Option<Vec<Symbol>>,
    /// Vertex interest of the pattern-source endpoint (`None` when
    /// source tuples don't depend on vertex state).
    pub src_interest: Option<VertexRouting>,
    /// Vertex interest of the pattern-target endpoint.
    pub dst_interest: Option<VertexRouting>,
}

/// The © get-vertices scan node.
#[derive(Clone, Debug)]
pub struct VertexScan {
    labels: Vec<Symbol>,
    props: Vec<PropPush>,
    carry_map: bool,
    memory: FxHashMap<VertexId, Tuple>,
    /// Reused per-batch dedup set (cleared, not reallocated).
    touched: FxHashSet<VertexId>,
}

impl VertexScan {
    /// Create a scan for `labels` (empty = all vertices) emitting the
    /// pushed `props` and, in ablation mode, the whole property map.
    pub fn new(labels: Vec<Symbol>, props: Vec<PropPush>, carry_map: bool) -> VertexScan {
        VertexScan {
            labels,
            props,
            carry_map,
            memory: FxHashMap::default(),
            touched: FxHashSet::default(),
        }
    }

    /// Number of tuples materialised in this scan's memory.
    pub fn memory_tuples(&self) -> usize {
        self.memory.len()
    }

    /// Routing contract (see [`ScanRouting`]).
    pub fn routing(&self) -> VertexRouting {
        VertexRouting {
            labels: self.labels.clone(),
            prop_keys: if self.carry_map {
                None
            } else {
                Some(self.props.iter().map(|p| p.prop).collect())
            },
        }
    }

    /// Re-emit the full current memory contents (each remembered tuple
    /// with multiplicity +1), appending to `out`.
    pub fn replay_into(&self, out: &mut Delta) {
        for t in self.memory.values() {
            out.push(t.clone(), 1);
        }
    }

    fn tuple_of(&self, g: &PropertyGraph, v: VertexId) -> Option<Tuple> {
        let data = g.vertex(v)?;
        if !self.labels.iter().all(|&l| data.has_label(l)) {
            return None;
        }
        let mut vals = Vec::with_capacity(1 + self.props.len() + usize::from(self.carry_map));
        vals.push(Value::Node(v));
        for p in &self.props {
            vals.push(data.props.get_or_null(p.prop));
        }
        if self.carry_map {
            vals.push(data.props.to_value_map());
        }
        Some(Tuple::new(vals))
    }

    /// Full evaluation against `g`, populating the memory.
    pub fn initial(&mut self, g: &PropertyGraph) -> Delta {
        let mut out = Delta::new();
        let ids: Vec<VertexId> = if self.labels.is_empty() {
            g.vertex_ids().collect()
        } else {
            // Scan the smallest label extent, verify the rest.
            let (first, _) = self
                .labels
                .iter()
                .map(|&l| (l, g.vertices_with_label(l).len()))
                .min_by_key(|&(_, n)| n)
                .expect("non-empty labels");
            g.vertices_with_label(first).to_vec()
        };
        for v in ids {
            if let Some(t) = self.tuple_of(g, v) {
                self.memory.insert(v, t.clone());
                out.push(t, 1);
            }
        }
        out
    }

    /// Delta for a batch of committed events (post-state `g`).
    pub fn on_events(&mut self, g: &PropertyGraph, events: &[ChangeEvent]) -> Delta {
        let mut out = Delta::new();
        self.on_events_into(g, events, &mut out);
        out
    }

    /// [`VertexScan::on_events`] into a caller-owned (pooled) buffer.
    pub fn on_events_into(&mut self, g: &PropertyGraph, events: &[ChangeEvent], out: &mut Delta) {
        let mut touched = std::mem::take(&mut self.touched);
        touched.clear();
        for ev in events {
            if let Some(v) = ev.touched_vertex() {
                touched.insert(v);
            }
        }
        for &v in &touched {
            self.refresh(g, v, out);
        }
        self.touched = touched;
    }

    /// Recompute one vertex and emit the difference into `out`.
    pub fn refresh(&mut self, g: &PropertyGraph, v: VertexId, out: &mut Delta) {
        let new = self.tuple_of(g, v);
        let old = self.memory.get(&v);
        if old == new.as_ref() {
            return;
        }
        if let Some(o) = old {
            out.push(o.clone(), -1);
        }
        match new {
            Some(n) => {
                out.push(n.clone(), 1);
                self.memory.insert(v, n);
            }
            None => {
                self.memory.remove(&v);
            }
        }
    }
}

/// The ⇑ get-edges scan node.
///
/// Emits `(src, edge, dst, src_props…, edge_props…, dst_props…, maps…)`
/// tuples for every edge whose type matches and whose endpoints carry the
/// required labels. `Direction::In` swaps the roles of source and target;
/// `Direction::Both` emits each edge in both orientations (a self-loop
/// only once).
#[derive(Clone, Debug)]
pub struct EdgeScan {
    types: Vec<Symbol>,
    src_labels: Vec<Symbol>,
    dst_labels: Vec<Symbol>,
    src_props: Vec<PropPush>,
    edge_props: Vec<PropPush>,
    dst_props: Vec<PropPush>,
    carry_maps: (bool, bool, bool),
    dir: Direction,
    /// Literal equality constraints on edge properties (used when this
    /// scan feeds a variable-length join).
    edge_prop_filters: Vec<(Symbol, Value)>,
    memory: FxHashMap<EdgeId, Vec<Tuple>>,
    /// Reused per-batch dedup set (cleared, not reallocated).
    touched: FxHashSet<EdgeId>,
}

/// Construction parameters for [`EdgeScan`].
#[derive(Clone, Debug, Default)]
pub struct EdgeScanSpec {
    /// Admissible edge types (empty = any).
    pub types: Vec<Symbol>,
    /// Labels required on the pattern-source.
    pub src_labels: Vec<Symbol>,
    /// Labels required on the pattern-target.
    pub dst_labels: Vec<Symbol>,
    /// Pushed source properties.
    pub src_props: Vec<PropPush>,
    /// Pushed edge properties.
    pub edge_props: Vec<PropPush>,
    /// Pushed target properties.
    pub dst_props: Vec<PropPush>,
    /// Ablation property-map columns.
    pub carry_maps: (bool, bool, bool),
    /// Orientation.
    pub dir: Option<Direction>,
    /// Literal edge-property constraints.
    pub edge_prop_filters: Vec<(Symbol, Value)>,
}

impl EdgeScan {
    /// Create a scan from `spec`.
    pub fn new(spec: EdgeScanSpec) -> EdgeScan {
        EdgeScan {
            types: spec.types,
            src_labels: spec.src_labels,
            dst_labels: spec.dst_labels,
            src_props: spec.src_props,
            edge_props: spec.edge_props,
            dst_props: spec.dst_props,
            carry_maps: spec.carry_maps,
            dir: spec.dir.unwrap_or(Direction::Out),
            edge_prop_filters: spec.edge_prop_filters,
            memory: FxHashMap::default(),
            touched: FxHashSet::default(),
        }
    }

    /// Number of tuples materialised in this scan's memory.
    pub fn memory_tuples(&self) -> usize {
        self.memory.values().map(Vec::len).sum()
    }

    /// Routing contract (see [`ScanRouting`] and [`EdgeRouting`]).
    pub fn routing(&self) -> EdgeRouting {
        // One endpoint side's interest: labels gate membership, props
        // (or a carried map) make that side's vertex state part of the
        // emitted tuple. A side with neither has no vertex interest.
        let side = |labels: &[Symbol], props: &[PropPush], carry: bool| -> Option<VertexRouting> {
            if labels.is_empty() && props.is_empty() && !carry {
                return None;
            }
            Some(VertexRouting {
                labels: labels.to_vec(),
                prop_keys: if carry {
                    None
                } else {
                    Some(props.iter().map(|p| p.prop).collect())
                },
            })
        };
        EdgeRouting {
            types: self.types.clone(),
            edge_prop_keys: if self.carry_maps.1 {
                None
            } else {
                let mut keys: Vec<Symbol> = self.edge_props.iter().map(|p| p.prop).collect();
                for (k, _) in &self.edge_prop_filters {
                    if !keys.contains(k) {
                        keys.push(*k);
                    }
                }
                Some(keys)
            },
            src_interest: side(&self.src_labels, &self.src_props, self.carry_maps.0),
            dst_interest: side(&self.dst_labels, &self.dst_props, self.carry_maps.2),
        }
    }

    /// Re-emit the full current memory contents, appending to `out`.
    pub fn replay_into(&self, out: &mut Delta) {
        for tuples in self.memory.values() {
            for t in tuples {
                out.push(t.clone(), 1);
            }
        }
    }

    /// Do this scan's tuples depend on vertex state at all? When not
    /// (e.g. the bare `(src, e, dst)` scan feeding a variable-length
    /// join), vertex label/property events cannot change any emitted
    /// tuple, so the per-event adjacency fan-out can be skipped entirely.
    /// Structural changes (vertex deletion detaching edges) arrive as
    /// their own edge events and are still handled.
    fn vertex_sensitive(&self) -> bool {
        !self.src_labels.is_empty()
            || !self.dst_labels.is_empty()
            || !self.src_props.is_empty()
            || !self.dst_props.is_empty()
            || self.carry_maps != (false, false, false)
    }

    fn tuples_of(&self, g: &PropertyGraph, e: EdgeId) -> Vec<Tuple> {
        let Some(data) = g.edge(e) else {
            return Vec::new();
        };
        if !self.types.is_empty() && !self.types.contains(&data.ty) {
            return Vec::new();
        }
        for (k, want) in &self.edge_prop_filters {
            if data.props.get(*k) != Some(want) {
                return Vec::new();
            }
        }
        let mut out = Vec::new();
        let orientations: &[(VertexId, VertexId)] = match self.dir {
            Direction::Out => &[(data.src, data.dst)],
            Direction::In => &[(data.dst, data.src)],
            Direction::Both => {
                if data.src == data.dst {
                    &[(data.src, data.dst)]
                } else {
                    &[(data.src, data.dst), (data.dst, data.src)]
                }
            }
        };
        for &(s, d) in orientations {
            let (Some(sd), Some(dd)) = (g.vertex(s), g.vertex(d)) else {
                continue;
            };
            if !self.src_labels.iter().all(|&l| sd.has_label(l)) {
                continue;
            }
            if !self.dst_labels.iter().all(|&l| dd.has_label(l)) {
                continue;
            }
            let mut vals = Vec::with_capacity(
                3 + self.src_props.len() + self.edge_props.len() + self.dst_props.len(),
            );
            vals.push(Value::Node(s));
            vals.push(Value::Rel(e));
            vals.push(Value::Node(d));
            for p in &self.src_props {
                vals.push(sd.props.get_or_null(p.prop));
            }
            for p in &self.edge_props {
                vals.push(data.props.get_or_null(p.prop));
            }
            for p in &self.dst_props {
                vals.push(dd.props.get_or_null(p.prop));
            }
            if self.carry_maps.0 {
                vals.push(sd.props.to_value_map());
            }
            if self.carry_maps.1 {
                vals.push(data.props.to_value_map());
            }
            if self.carry_maps.2 {
                vals.push(dd.props.to_value_map());
            }
            out.push(Tuple::new(vals));
        }
        out
    }

    /// Full evaluation against `g`.
    pub fn initial(&mut self, g: &PropertyGraph) -> Delta {
        let mut out = Delta::new();
        let ids: Vec<EdgeId> = if self.types.is_empty() {
            g.edge_ids().collect()
        } else {
            self.types
                .iter()
                .flat_map(|&t| g.edges_with_type(t).iter().copied())
                .collect()
        };
        for e in ids {
            let tuples = self.tuples_of(g, e);
            if !tuples.is_empty() {
                for t in &tuples {
                    out.push(t.clone(), 1);
                }
                self.memory.insert(e, tuples);
            }
        }
        out
    }

    /// Delta for a batch of committed events. Vertex events touch every
    /// incident edge (labels/properties of endpoints are part of edge
    /// tuples).
    pub fn on_events(&mut self, g: &PropertyGraph, events: &[ChangeEvent]) -> Delta {
        let mut out = Delta::new();
        self.on_events_into(g, events, &mut out);
        out
    }

    /// [`EdgeScan::on_events`] into a caller-owned (pooled) buffer.
    pub fn on_events_into(&mut self, g: &PropertyGraph, events: &[ChangeEvent], out: &mut Delta) {
        let mut touched = std::mem::take(&mut self.touched);
        touched.clear();
        let vertex_sensitive = self.vertex_sensitive();
        for ev in events {
            if let Some(e) = ev.touched_edge() {
                touched.insert(e);
            }
            if vertex_sensitive {
                if let Some(v) = ev.touched_vertex() {
                    // Structural vertex events come with their own edge
                    // events; label/prop updates need the adjacency.
                    touched.extend(g.out_edges(v).iter().copied());
                    touched.extend(g.in_edges(v).iter().copied());
                }
            }
        }
        for &e in &touched {
            self.refresh(g, e, out);
        }
        self.touched = touched;
    }

    fn refresh(&mut self, g: &PropertyGraph, e: EdgeId, out: &mut Delta) {
        let new = self.tuples_of(g, e);
        // Unchanged is the common case (a vertex-touch event fans out to
        // every incident edge) — detect it without cloning the memory.
        if self.memory.get(&e).map_or(&[][..], Vec::as_slice) == new.as_slice() {
            return;
        }
        let old = self.memory.remove(&e).unwrap_or_default();
        for t in &old {
            out.push(t.clone(), -1);
        }
        for t in &new {
            out.push(t.clone(), 1);
        }
        if !new.is_empty() {
            self.memory.insert(e, new);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_graph::props::Properties;
    use pgq_graph::tx::Transaction;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn push(prop: &str, col: &str) -> PropPush {
        PropPush {
            prop: sym(prop),
            col: col.into(),
        }
    }

    #[test]
    fn vertex_scan_initial_and_updates() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex(
            [sym("Post")],
            Properties::from_iter([("lang", Value::str("en"))]),
        );
        let mut scan = VertexScan::new(vec![sym("Post")], vec![push("lang", "p.lang")], false);
        let init = scan.initial(&g).consolidate();
        assert_eq!(init.len(), 1);
        let (t0, m0) = init.iter().next().unwrap().clone();
        assert_eq!(m0, 1);
        assert_eq!(t0.get(0), &Value::Node(a));
        assert_eq!(t0.get(1), &Value::str("en"));

        // Fine-grained property change → retract + assert.
        let ev = g.set_vertex_prop(a, sym("lang"), "de".into()).unwrap();
        let d = scan.on_events(&g, &[ev]).consolidate();
        assert_eq!(d.len(), 2);
        // Label removal → retraction only.
        let ev = g.remove_label(a, sym("Post")).unwrap().unwrap();
        let d = scan.on_events(&g, &[ev]).consolidate();
        assert_eq!(d.len(), 1);
        assert_eq!(d.iter().next().unwrap().1, -1);
        assert_eq!(scan.memory_tuples(), 0);
    }

    #[test]
    fn vertex_scan_unrelated_prop_change_is_noop_tuplewise() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("Post")], Properties::new());
        let mut scan = VertexScan::new(vec![sym("Post")], vec![], false);
        scan.initial(&g);
        let ev = g.set_vertex_prop(a, sym("other"), Value::Int(1)).unwrap();
        let d = scan.on_events(&g, &[ev]).consolidate();
        assert!(d.is_empty(), "tuple did not change, no delta expected");
    }

    #[test]
    fn edge_scan_both_orientations() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("P")], Properties::new());
        let (b, _) = g.add_vertex([sym("P")], Properties::new());
        g.add_edge(a, b, sym("KNOWS"), Properties::new()).unwrap();
        let mut scan = EdgeScan::new(EdgeScanSpec {
            types: vec![sym("KNOWS")],
            dir: Some(Direction::Both),
            ..Default::default()
        });
        let init = scan.initial(&g).consolidate();
        assert_eq!(init.len(), 2, "both orientations");
    }

    #[test]
    fn edge_scan_self_loop_once_in_both_mode() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("P")], Properties::new());
        g.add_edge(a, a, sym("KNOWS"), Properties::new()).unwrap();
        let mut scan = EdgeScan::new(EdgeScanSpec {
            dir: Some(Direction::Both),
            ..Default::default()
        });
        assert_eq!(scan.initial(&g).consolidate().len(), 1);
    }

    #[test]
    fn edge_scan_reacts_to_endpoint_label_change() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("Post")], Properties::new());
        let (b, _) = g.add_vertex([sym("Comm")], Properties::new());
        g.add_edge(a, b, sym("REPLY"), Properties::new()).unwrap();
        let mut scan = EdgeScan::new(EdgeScanSpec {
            types: vec![sym("REPLY")],
            dst_labels: vec![sym("Comm")],
            dir: Some(Direction::Out),
            ..Default::default()
        });
        assert_eq!(scan.initial(&g).consolidate().len(), 1);
        let ev = g.remove_label(b, sym("Comm")).unwrap().unwrap();
        let d = scan.on_events(&g, &[ev]).consolidate();
        assert_eq!(d.len(), 1);
        assert_eq!(d.iter().next().unwrap().1, -1);
    }

    #[test]
    fn edge_scan_prop_filter() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("P")], Properties::new());
        let (b, _) = g.add_vertex([sym("P")], Properties::new());
        let (e, _) = g
            .add_edge(
                a,
                b,
                sym("R"),
                Properties::from_iter([("w", Value::Int(1))]),
            )
            .unwrap();
        let mut scan = EdgeScan::new(EdgeScanSpec {
            edge_prop_filters: vec![(sym("w"), Value::Int(1))],
            ..Default::default()
        });
        assert_eq!(scan.initial(&g).consolidate().len(), 1);
        let ev = g.set_edge_prop(e, sym("w"), Value::Int(2)).unwrap();
        let d = scan.on_events(&g, &[ev]).consolidate();
        assert_eq!(d.iter().next().unwrap().1, -1);
    }

    #[test]
    fn transaction_events_flow_through_scan() {
        let mut g = PropertyGraph::new();
        let mut scan = VertexScan::new(vec![sym("Post")], vec![], false);
        scan.initial(&g);
        let mut tx = Transaction::new();
        tx.create_vertex([sym("Post")], Properties::new());
        tx.create_vertex([sym("Comm")], Properties::new());
        let events = g.apply(&tx).unwrap();
        let d = scan.on_events(&g, &events).consolidate();
        assert_eq!(d.len(), 1, "only the Post matches");
    }
}
