//! Signed multisets of tuples — the currency of the dataflow.
//!
//! Classic counting-based IVM (Gupta–Mumick–Subrahmanian; Griffin–Libkin
//! bag algebra): every dataflow edge carries a `Δ = [(tuple, ±m)]`, and
//! every stateful operator keeps multiplicity maps it updates from the
//! deltas flowing through it.

use pgq_common::fxhash::FxHashMap;
use pgq_common::tuple::Tuple;

/// A signed multiset of tuples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Delta {
    entries: Vec<(Tuple, i64)>,
}

impl Delta {
    /// Empty delta.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Is there anything in it (before consolidation)?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of raw entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Add `tuple` with signed multiplicity `mult`.
    pub fn push(&mut self, tuple: Tuple, mult: i64) {
        if mult != 0 {
            self.entries.push((tuple, mult));
        }
    }

    /// Append another delta.
    pub fn extend(&mut self, other: Delta) {
        self.entries.extend(other.entries);
    }

    /// Iterate raw entries.
    pub fn iter(&self) -> impl Iterator<Item = &(Tuple, i64)> {
        self.entries.iter()
    }

    /// Sum multiplicities per tuple and drop zeros.
    pub fn consolidate(self) -> Delta {
        let mut m: FxHashMap<Tuple, i64> = FxHashMap::default();
        for (t, c) in self.entries {
            *m.entry(t).or_insert(0) += c;
        }
        let mut entries: Vec<(Tuple, i64)> = m.into_iter().filter(|(_, c)| *c != 0).collect();
        // Deterministic output order helps tests and report diffs.
        entries.sort_by(|a, b| {
            a.0.values()
                .iter()
                .zip(b.0.values())
                .fold(std::cmp::Ordering::Equal, |acc, (x, y)| {
                    acc.then_with(|| x.total_cmp(y))
                })
                .then_with(|| a.0.arity().cmp(&b.0.arity()))
        });
        Delta { entries }
    }

    /// Consume into entries.
    pub fn into_entries(self) -> Vec<(Tuple, i64)> {
        self.entries
    }
}

impl FromIterator<(Tuple, i64)> for Delta {
    fn from_iter<T: IntoIterator<Item = (Tuple, i64)>>(iter: T) -> Self {
        Delta {
            entries: iter.into_iter().filter(|(_, m)| *m != 0).collect(),
        }
    }
}

/// A multiplicity-counted tuple store with per-key index, used as join
/// memory.
#[derive(Clone, Debug, Default)]
pub struct IndexedBag {
    /// key tuple -> (full tuple -> multiplicity)
    by_key: FxHashMap<Tuple, FxHashMap<Tuple, i64>>,
    key_cols: Vec<usize>,
    size: usize,
}

impl IndexedBag {
    /// New bag keyed by `key_cols`.
    pub fn new(key_cols: Vec<usize>) -> IndexedBag {
        IndexedBag {
            by_key: FxHashMap::default(),
            key_cols,
            size: 0,
        }
    }

    /// The key columns.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Number of distinct tuples stored.
    pub fn distinct_len(&self) -> usize {
        self.size
    }

    fn key_of(&self, t: &Tuple) -> Tuple {
        t.project(&self.key_cols)
    }

    /// Apply one signed update; returns the tuple's key.
    pub fn update(&mut self, tuple: &Tuple, mult: i64) -> Tuple {
        let key = self.key_of(tuple);
        let slot = self.by_key.entry(key.clone()).or_default();
        let e = slot.entry(tuple.clone()).or_insert(0);
        let was_zero = *e == 0;
        *e += mult;
        if *e == 0 {
            slot.remove(tuple);
            self.size -= 1;
            if slot.is_empty() {
                self.by_key.remove(&key);
            }
        } else if was_zero {
            self.size += 1;
        }
        key
    }

    /// Tuples matching `key` with multiplicities.
    pub fn get(&self, key: &Tuple) -> impl Iterator<Item = (&Tuple, i64)> {
        self.by_key
            .get(key)
            .into_iter()
            .flat_map(|m| m.iter().map(|(t, c)| (t, *c)))
    }

    /// Iterate all `(tuple, multiplicity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.by_key
            .values()
            .flat_map(|m| m.iter().map(|(t, c)| (t, *c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_common::value::Value;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn consolidate_sums_and_drops_zeros() {
        let mut d = Delta::new();
        d.push(t(&[1]), 1);
        d.push(t(&[1]), 2);
        d.push(t(&[2]), 1);
        d.push(t(&[2]), -1);
        let c = d.consolidate();
        assert_eq!(c.into_entries(), vec![(t(&[1]), 3)]);
    }

    #[test]
    fn push_ignores_zero() {
        let mut d = Delta::new();
        d.push(t(&[1]), 0);
        assert!(d.is_empty());
    }

    #[test]
    fn indexed_bag_roundtrip() {
        let mut bag = IndexedBag::new(vec![0]);
        bag.update(&t(&[1, 10]), 2);
        bag.update(&t(&[1, 20]), 1);
        bag.update(&t(&[2, 30]), 1);
        let key = t(&[1]);
        let got: Vec<(Tuple, i64)> = bag.get(&key).map(|(t, c)| (t.clone(), c)).collect();
        assert_eq!(got.len(), 2);
        assert_eq!(bag.distinct_len(), 3);

        bag.update(&t(&[1, 10]), -2);
        assert_eq!(bag.get(&key).count(), 1);
        assert_eq!(bag.distinct_len(), 2);
    }

    #[test]
    fn indexed_bag_negative_multiplicities_allowed_transiently() {
        let mut bag = IndexedBag::new(vec![0]);
        bag.update(&t(&[1, 10]), -1);
        assert_eq!(bag.get(&t(&[1])).next().map(|(_, c)| c), Some(-1));
        bag.update(&t(&[1, 10]), 1);
        assert_eq!(bag.distinct_len(), 0);
    }
}
