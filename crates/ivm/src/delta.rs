//! Signed multisets of tuples — the currency of the dataflow.
//!
//! Classic counting-based IVM (Gupta–Mumick–Subrahmanian; Griffin–Libkin
//! bag algebra): every dataflow edge carries a `Δ = [(tuple, ±m)]`, and
//! every stateful operator keeps multiplicity maps it updates from the
//! deltas flowing through it.
//!
//! Consolidation is in-place and allocation-free for the small deltas
//! that dominate per-transaction maintenance: below a crossover the
//! entries are merged by quadratic scan inside the existing `Vec`, above
//! it a hash map takes over. Both paths produce the same deterministic
//! *first-occurrence* order; callers that need a totally sorted delta
//! (tests, report diffs) use [`Delta::consolidate_sorted`].

use pgq_common::fxhash::FxHashMap;
use pgq_common::tuple::Tuple;

use crate::stats::counters;

/// Below this raw length [`Delta::consolidate`] merges by quadratic scan
/// in place; above it, through a hash map. Small deltas are the common
/// case per transaction, and 32² tuple comparisons beat a map allocation.
const CONSOLIDATE_HASH_CROSSOVER: usize = 32;

/// A signed multiset of tuples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Delta {
    entries: Vec<(Tuple, i64)>,
}

impl Delta {
    /// Empty delta.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Empty delta with room for `n` entries.
    pub fn with_capacity(n: usize) -> Delta {
        Delta {
            entries: Vec::with_capacity(n),
        }
    }

    /// Reserve room for `n` more entries.
    pub fn reserve(&mut self, n: usize) {
        self.entries.reserve(n);
    }

    /// Is there anything in it (before consolidation)?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of raw entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Add `tuple` with signed multiplicity `mult`.
    pub fn push(&mut self, tuple: Tuple, mult: i64) {
        if mult != 0 {
            self.entries.push((tuple, mult));
        }
    }

    /// Append another delta.
    pub fn extend(&mut self, other: Delta) {
        self.entries.extend(other.entries);
    }

    /// Iterate raw entries.
    pub fn iter(&self) -> impl Iterator<Item = &(Tuple, i64)> {
        self.entries.iter()
    }

    /// Borrow the raw entries.
    pub fn entries(&self) -> &[(Tuple, i64)] {
        &self.entries
    }

    /// Drop all entries, keeping the allocation (pool reuse).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Sum multiplicities per tuple and drop zeros, keeping the first
    /// occurrence's position (deterministic, but not sorted — see
    /// [`Delta::consolidate_sorted`]).
    pub fn consolidate(mut self) -> Delta {
        self.consolidate_in_place();
        self
    }

    /// [`Delta::consolidate`] without consuming the delta (the network's
    /// pooled buffers are consolidated in place between operators).
    pub fn consolidate_in_place(&mut self) {
        let entries = &mut self.entries;
        if entries.len() <= 1 {
            entries.retain(|(_, m)| *m != 0);
            return;
        }
        if entries.len() <= CONSOLIDATE_HASH_CROSSOVER {
            // In-place quadratic merge: no allocation at all.
            let mut write = 0usize;
            for read in 0..entries.len() {
                match (0..write).find(|&j| entries[j].0 == entries[read].0) {
                    Some(j) => entries[j].1 += entries[read].1,
                    None => {
                        entries.swap(write, read);
                        write += 1;
                    }
                }
            }
            entries.truncate(write);
        } else {
            // Hash path: index of each tuple's first occurrence.
            let mut index: FxHashMap<Tuple, usize> = FxHashMap::default();
            index.reserve(entries.len());
            let mut write = 0usize;
            for read in 0..entries.len() {
                match index.entry(entries[read].0.clone()) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let j = *e.get();
                        entries[j].1 += entries[read].1;
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(write);
                        entries.swap(write, read);
                        write += 1;
                    }
                }
            }
            entries.truncate(write);
        }
        entries.retain(|(_, m)| *m != 0);
    }

    /// [`Delta::consolidate`], then sort by [`Tuple::total_cmp`] (stable,
    /// so entries that compare equal keep first-occurrence order). Use
    /// where a canonical order matters: tests, golden files, reports.
    pub fn consolidate_sorted(self) -> Delta {
        let mut d = self.consolidate();
        d.entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        d
    }

    /// Consume into entries.
    pub fn into_entries(self) -> Vec<(Tuple, i64)> {
        self.entries
    }

    /// Rebuild from an entry vector (e.g. one taken by
    /// [`Delta::into_entries`], transformed in place). Zero
    /// multiplicities are dropped by `retain`, so the `Vec`'s allocation
    /// is reused rather than re-collected.
    pub fn from_entries(mut entries: Vec<(Tuple, i64)>) -> Delta {
        entries.retain(|(_, m)| *m != 0);
        Delta { entries }
    }
}

impl FromIterator<(Tuple, i64)> for Delta {
    fn from_iter<T: IntoIterator<Item = (Tuple, i64)>>(iter: T) -> Self {
        Delta {
            entries: iter.into_iter().filter(|(_, m)| *m != 0).collect(),
        }
    }
}

/// A hash bucket spills from a linear `Vec` to a per-tuple map beyond
/// this many distinct tuples. Join keys overwhelmingly have small
/// fan-out, where a `Vec` avoids the per-bucket map allocation and beats
/// it on scan locality; hot keys (deep threads, popular posts) get O(1)
/// updates from the map.
const BUCKET_SPILL: usize = 8;

/// One key-hash bucket of an [`IndexedBag`].
#[derive(Clone, Debug)]
enum Bucket {
    /// Small fan-out: linear scan.
    Small(Vec<(Tuple, i64)>),
    /// Large fan-out: per-tuple multiplicity map.
    Large(FxHashMap<Tuple, i64>),
}

impl Default for Bucket {
    fn default() -> Self {
        Bucket::Small(Vec::new())
    }
}

impl Bucket {
    /// Apply one signed update; returns the change in distinct-tuple
    /// count (−1, 0, or +1).
    fn update(&mut self, tuple: &Tuple, mult: i64) -> i64 {
        match self {
            Bucket::Small(v) => {
                if let Some(pos) = v.iter().position(|(t, _)| t == tuple) {
                    v[pos].1 += mult;
                    if v[pos].1 == 0 {
                        v.swap_remove(pos);
                        -1
                    } else {
                        0
                    }
                } else {
                    if v.len() >= BUCKET_SPILL {
                        let mut m: FxHashMap<Tuple, i64> = v.drain(..).collect();
                        m.insert(tuple.clone(), mult);
                        counters::rehash_if_grew(0, m.capacity());
                        *self = Bucket::Large(m);
                    } else {
                        v.push((tuple.clone(), mult));
                    }
                    1
                }
            }
            Bucket::Large(m) => {
                let before = m.capacity();
                let e = m.entry(tuple.clone()).or_insert(0);
                let was_zero = *e == 0;
                *e += mult;
                let now_zero = *e == 0;
                if now_zero {
                    m.remove(tuple);
                }
                counters::rehash_if_grew(before, m.capacity());
                match (was_zero, now_zero) {
                    (true, false) => 1,
                    (false, true) => -1,
                    _ => 0,
                }
            }
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Bucket::Small(v) => v.is_empty(),
            Bucket::Large(m) => m.is_empty(),
        }
    }

    fn iter(&self) -> BucketIter<'_> {
        match self {
            Bucket::Small(v) => BucketIter::Small(v.iter()),
            Bucket::Large(m) => BucketIter::Large(m.iter()),
        }
    }
}

/// Iterator over one bucket's `(tuple, multiplicity)` entries.
enum BucketIter<'a> {
    Small(std::slice::Iter<'a, (Tuple, i64)>),
    Large(std::collections::hash_map::Iter<'a, Tuple, i64>),
}

impl<'a> Iterator for BucketIter<'a> {
    type Item = (&'a Tuple, i64);

    fn next(&mut self) -> Option<(&'a Tuple, i64)> {
        match self {
            BucketIter::Small(it) => it.next().map(|(t, c)| (t, *c)),
            BucketIter::Large(it) => it.next().map(|(t, c)| (t, *c)),
        }
    }
}

/// A multiplicity-counted tuple store indexed by key-column projection,
/// used as join memory.
///
/// Tuples are bucketed by the Fx hash of their projection onto
/// `key_cols` (see [`pgq_common::tuple::hash_values`]); within a hash
/// bucket an adaptive `Bucket` keeps updates cheap at both small and
/// large fan-out. Probes hash the probing tuple's own projection via
/// [`Tuple::hash_projected`] and compare key columns value-by-value, so
/// neither [`IndexedBag::update`] nor [`IndexedBag::probe`] ever
/// materialises a key tuple.
#[derive(Clone, Debug, Default)]
pub struct IndexedBag {
    /// key-projection hash -> bucket of (full tuple, multiplicity)
    by_key: FxHashMap<u64, Bucket>,
    key_cols: Vec<usize>,
    size: usize,
}

impl IndexedBag {
    /// New bag keyed by `key_cols`.
    pub fn new(key_cols: Vec<usize>) -> IndexedBag {
        IndexedBag {
            by_key: FxHashMap::default(),
            key_cols,
            size: 0,
        }
    }

    /// The key columns.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Number of distinct tuples stored.
    pub fn distinct_len(&self) -> usize {
        self.size
    }

    /// Apply one signed update.
    pub fn update(&mut self, tuple: &Tuple, mult: i64) {
        if mult == 0 {
            return;
        }
        let hash = tuple.hash_projected(&self.key_cols);
        let outer_before = self.by_key.capacity();
        let slot = self.by_key.entry(hash).or_default();
        self.size = (self.size as i64 + slot.update(tuple, mult)) as usize;
        if slot.is_empty() {
            self.by_key.remove(&hash);
        }
        counters::rehash_if_grew(outer_before, self.by_key.capacity());
    }

    /// Tuples whose key equals `probe.project(probe_cols)`, with
    /// multiplicities — without materialising that projection.
    pub fn probe<'a>(
        &'a self,
        probe: &'a Tuple,
        probe_cols: &'a [usize],
    ) -> impl Iterator<Item = (&'a Tuple, i64)> {
        debug_assert_eq!(probe_cols.len(), self.key_cols.len());
        let kr = probe.key_ref(probe_cols);
        let key_cols = &self.key_cols;
        self.by_key
            .get(&kr.hash())
            .into_iter()
            .flat_map(Bucket::iter)
            .filter(move |(t, _)| kr.matches_projection(t, key_cols))
            .map(|(t, c)| {
                counters::probe_hit();
                (t, c)
            })
    }

    /// Tuples matching the standalone key tuple `key`, with
    /// multiplicities.
    pub fn get<'a>(&'a self, key: &'a Tuple) -> impl Iterator<Item = (&'a Tuple, i64)> {
        let key_cols = &self.key_cols;
        self.by_key
            .get(&key.hash_whole())
            .into_iter()
            .flat_map(Bucket::iter)
            .filter(move |(t, _)| {
                key_cols.len() == key.arity()
                    && key_cols.iter().zip(key.iter()).all(|(&a, v)| t.get(a) == v)
            })
    }

    /// Iterate all `(tuple, multiplicity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.by_key.values().flat_map(Bucket::iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_common::value::Value;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn consolidate_sums_and_drops_zeros() {
        let mut d = Delta::new();
        d.push(t(&[1]), 1);
        d.push(t(&[1]), 2);
        d.push(t(&[2]), 1);
        d.push(t(&[2]), -1);
        let c = d.consolidate();
        assert_eq!(c.into_entries(), vec![(t(&[1]), 3)]);
    }

    #[test]
    fn consolidate_hash_path_matches_scan_path() {
        // Build a delta crossing the hash crossover with duplicates and
        // cancellations; both paths must agree on content and order.
        let mut big = Delta::new();
        let mut small_chunks: Vec<Delta> = Vec::new();
        for i in 0..((CONSOLIDATE_HASH_CROSSOVER as i64) + 8) {
            let mut chunk = Delta::new();
            for (v, m) in [(i % 7, 1), (i % 5, -1), (i % 7, 2)] {
                big.push(t(&[v]), m);
                chunk.push(t(&[v]), m);
            }
            small_chunks.push(chunk);
        }
        // Reference: consolidate chunk sums through a plain map.
        let mut want: FxHashMap<Tuple, i64> = FxHashMap::default();
        for (tu, m) in big.iter() {
            *want.entry(tu.clone()).or_insert(0) += m;
        }
        want.retain(|_, m| *m != 0);
        let got = big.consolidate();
        assert!(!got.is_empty());
        let got_map: FxHashMap<Tuple, i64> = got.iter().map(|(tu, m)| (tu.clone(), *m)).collect();
        assert_eq!(got_map, want);
    }

    #[test]
    fn consolidate_keeps_first_occurrence_order() {
        let mut d = Delta::new();
        d.push(t(&[3]), 1);
        d.push(t(&[1]), 1);
        d.push(t(&[3]), 1);
        d.push(t(&[2]), 1);
        assert_eq!(
            d.consolidate().into_entries(),
            vec![(t(&[3]), 2), (t(&[1]), 1), (t(&[2]), 1)]
        );
    }

    #[test]
    fn consolidate_sorted_orders_by_tuple() {
        let mut d = Delta::new();
        d.push(t(&[3]), 1);
        d.push(t(&[1]), 1);
        d.push(t(&[2]), 1);
        assert_eq!(
            d.consolidate_sorted().into_entries(),
            vec![(t(&[1]), 1), (t(&[2]), 1), (t(&[3]), 1)]
        );
    }

    #[test]
    fn consolidate_does_not_merge_numerically_equal_but_distinct_tuples() {
        // Int(2) and Float(2.0) compare Equal under total_cmp but are
        // distinct tuples; consolidation must keep them apart.
        let int2: Tuple = vec![Value::Int(2)].into();
        let float2: Tuple = vec![Value::float(2.0)].into();
        let mut d = Delta::new();
        d.push(int2.clone(), 1);
        d.push(float2.clone(), 1);
        d.push(int2.clone(), 1);
        let entries = d.consolidate_sorted().into_entries();
        assert_eq!(entries.len(), 2);
        assert!(entries.contains(&(int2, 2)));
        assert!(entries.contains(&(float2, 1)));
    }

    #[test]
    fn push_ignores_zero() {
        let mut d = Delta::new();
        d.push(t(&[1]), 0);
        assert!(d.is_empty());
    }

    #[test]
    fn indexed_bag_roundtrip() {
        let mut bag = IndexedBag::new(vec![0]);
        bag.update(&t(&[1, 10]), 2);
        bag.update(&t(&[1, 20]), 1);
        bag.update(&t(&[2, 30]), 1);
        let key = t(&[1]);
        let got: Vec<(Tuple, i64)> = bag.get(&key).map(|(t, c)| (t.clone(), c)).collect();
        assert_eq!(got.len(), 2);
        assert_eq!(bag.distinct_len(), 3);

        bag.update(&t(&[1, 10]), -2);
        assert_eq!(bag.get(&key).count(), 1);
        assert_eq!(bag.distinct_len(), 2);
    }

    #[test]
    fn indexed_bag_probe_equals_get() {
        let mut bag = IndexedBag::new(vec![1]);
        bag.update(&t(&[10, 1]), 1);
        bag.update(&t(&[20, 1]), 3);
        bag.update(&t(&[30, 2]), 1);
        // Probe with a differently-shaped tuple whose col 0 is the key.
        let probe = t(&[1, 99]);
        let via_probe: Vec<i64> = {
            let mut v: Vec<i64> = bag.probe(&probe, &[0]).map(|(_, c)| c).collect();
            v.sort_unstable();
            v
        };
        let key = t(&[1]);
        let via_get: Vec<i64> = {
            let mut v: Vec<i64> = bag.get(&key).map(|(_, c)| c).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(via_probe, vec![1, 3]);
        assert_eq!(via_probe, via_get);
    }

    #[test]
    fn indexed_bag_empty_key_cols() {
        let mut bag = IndexedBag::new(vec![]);
        bag.update(&t(&[5]), 1);
        bag.update(&t(&[6]), 1);
        assert_eq!(bag.get(&Tuple::unit()).count(), 2);
        assert_eq!(bag.probe(&t(&[9, 9]), &[]).count(), 2);
    }

    #[test]
    fn indexed_bag_negative_multiplicities_allowed_transiently() {
        let mut bag = IndexedBag::new(vec![0]);
        bag.update(&t(&[1, 10]), -1);
        assert_eq!(bag.get(&t(&[1])).next().map(|(_, c)| c), Some(-1));
        bag.update(&t(&[1, 10]), 1);
        assert_eq!(bag.distinct_len(), 0);
    }

    #[test]
    fn indexed_bag_zero_update_is_noop() {
        let mut bag = IndexedBag::new(vec![0]);
        bag.update(&t(&[1, 10]), 0);
        assert_eq!(bag.distinct_len(), 0);
        assert_eq!(bag.iter().count(), 0);
    }
}
