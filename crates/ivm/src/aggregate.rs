//! Incremental grouping aggregation — the paper lists aggregation as
//! future work; this is the "extension" implementation.
//!
//! All aggregates here are *self-maintainable under deletions*: `count`
//! and `sum` keep invertible accumulators; `min`/`max`/`collect` (and all
//! `DISTINCT` variants) keep support multisets so a deleted extremum
//! exposes the runner-up without rescanning (the standard counting fix
//! for non-distributive aggregates).

use std::collections::BTreeMap;

use pgq_algebra::expr::{AggCall, AggFunc, ScalarExpr};
use pgq_common::fxhash::{FxHashMap, FxHashSet};
use pgq_common::tuple::Tuple;
use pgq_common::value::Value;

use crate::delta::Delta;

/// γ node.
#[derive(Clone, Debug)]
pub struct AggregateOp {
    group: Vec<ScalarExpr>,
    aggs: Vec<AggCall>,
    groups: FxHashMap<Tuple, GroupState>,
    last_output: FxHashMap<Tuple, Tuple>,
    /// Global aggregation (no GROUP BY) always exposes exactly one row,
    /// even over an empty input (`count(*) = 0`).
    global: bool,
    started: bool,
}

#[derive(Clone, Debug)]
struct GroupState {
    rows: i64,
    states: Vec<AggState>,
}

#[derive(Clone, Debug)]
enum AggState {
    Counter(i64),
    Num {
        int_sum: i64,
        float_sum: f64,
        float_n: i64,
        n: i64,
    },
    Multiset(BTreeMap<OrdValue, i64>),
}

/// `Value` wrapper ordered by [`Value::total_cmp`], so multisets have a
/// deterministic key order (min = first, max = last).
#[derive(Clone, Debug, PartialEq, Eq)]
struct OrdValue(Value);

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

fn fresh_state(call: &AggCall) -> AggState {
    if call.distinct {
        return AggState::Multiset(BTreeMap::new());
    }
    match call.func {
        AggFunc::Count | AggFunc::CountStar => AggState::Counter(0),
        AggFunc::Sum | AggFunc::Avg => AggState::Num {
            int_sum: 0,
            float_sum: 0.0,
            float_n: 0,
            n: 0,
        },
        AggFunc::Min | AggFunc::Max | AggFunc::Collect => AggState::Multiset(BTreeMap::new()),
    }
}

fn update_state(state: &mut AggState, call: &AggCall, value: Option<&Value>, mult: i64) {
    match state {
        AggState::Counter(c) => match call.func {
            AggFunc::CountStar => *c += mult,
            _ => {
                if value.is_some_and(|v| !v.is_null()) {
                    *c += mult;
                }
            }
        },
        AggState::Num {
            int_sum,
            float_sum,
            float_n,
            n,
        } => match value {
            Some(Value::Int(i)) => {
                *int_sum += i.wrapping_mul(mult);
                *n += mult;
            }
            Some(Value::Float(f)) => {
                *float_sum += f.get() * mult as f64;
                *float_n += mult;
                *n += mult;
            }
            _ => {}
        },
        AggState::Multiset(set) => {
            let Some(v) = value else { return };
            if v.is_null() {
                return;
            }
            let e = set.entry(OrdValue(v.clone())).or_insert(0);
            *e += mult;
            if *e == 0 {
                set.remove(&OrdValue(v.clone()));
            }
        }
    }
}

fn read_state(state: &AggState, call: &AggCall) -> Value {
    match (state, call.func, call.distinct) {
        (AggState::Counter(c), _, _) => Value::Int(*c),
        (AggState::Multiset(s), AggFunc::Count | AggFunc::CountStar, true) => {
            Value::Int(s.len() as i64)
        }
        (AggState::Num { n: 0, .. }, AggFunc::Sum, _) => Value::Int(0),
        (
            AggState::Num {
                int_sum,
                float_sum,
                float_n,
                ..
            },
            AggFunc::Sum,
            _,
        ) => {
            if *float_n > 0 {
                Value::float(*int_sum as f64 + float_sum)
            } else {
                Value::Int(*int_sum)
            }
        }
        (AggState::Num { n: 0, .. }, AggFunc::Avg, _) => Value::Null,
        (
            AggState::Num {
                int_sum,
                float_sum,
                n,
                ..
            },
            AggFunc::Avg,
            _,
        ) => Value::float((*int_sum as f64 + float_sum) / *n as f64),
        (AggState::Multiset(s), AggFunc::Sum, _) => {
            let mut int_sum = 0i64;
            let mut float_sum = 0.0f64;
            let mut floats = false;
            let mut any = false;
            for v in s.keys() {
                any = true;
                match &v.0 {
                    Value::Int(i) => int_sum += i,
                    Value::Float(f) => {
                        float_sum += f.get();
                        floats = true;
                    }
                    _ => {}
                }
            }
            if !any {
                Value::Int(0)
            } else if floats {
                Value::float(int_sum as f64 + float_sum)
            } else {
                Value::Int(int_sum)
            }
        }
        (AggState::Multiset(s), AggFunc::Avg, _) => {
            let vals: Vec<f64> = s.keys().filter_map(|v| v.0.as_f64()).collect();
            if vals.is_empty() {
                Value::Null
            } else {
                Value::float(vals.iter().sum::<f64>() / vals.len() as f64)
            }
        }
        (AggState::Multiset(s), AggFunc::Min, _) => {
            s.keys().next().map(|v| v.0.clone()).unwrap_or(Value::Null)
        }
        (AggState::Multiset(s), AggFunc::Max, _) => s
            .keys()
            .next_back()
            .map(|v| v.0.clone())
            .unwrap_or(Value::Null),
        (AggState::Multiset(s), AggFunc::Collect, distinct) => {
            let mut items = Vec::new();
            for (v, c) in s.iter() {
                let reps = if distinct { 1 } else { (*c).max(0) as usize };
                for _ in 0..reps {
                    items.push(v.0.clone());
                }
            }
            Value::list(items)
        }
        // Impossible combinations kept total for robustness.
        (AggState::Multiset(_), AggFunc::Count | AggFunc::CountStar, false) => Value::Null,
        (AggState::Num { .. }, _, _) => Value::Null,
    }
}

impl AggregateOp {
    /// Create a γ node.
    pub fn new(group: Vec<ScalarExpr>, aggs: Vec<AggCall>) -> AggregateOp {
        let global = group.is_empty();
        AggregateOp {
            group,
            aggs,
            groups: FxHashMap::default(),
            last_output: FxHashMap::default(),
            global,
            started: false,
        }
    }

    /// Groups currently materialised.
    pub fn memory_tuples(&self) -> usize {
        self.groups.len()
    }

    /// Process a delta of input rows.
    pub fn on_delta(&mut self, input: Delta) -> Delta {
        let input = input.consolidate();
        let mut out = Delta::new();
        self.apply(&input, &mut out);
        out
    }

    /// Process a borrowed delta of input rows, appending group-row
    /// retractions/assertions to `out`.
    pub fn apply(&mut self, input: &Delta, out: &mut Delta) {
        let mut dirty: FxHashSet<Tuple> = FxHashSet::default();
        if self.global && !self.started {
            dirty.insert(Tuple::unit());
        }
        self.started = true;

        for (t, m) in input.iter() {
            let (t, m) = (t, *m);
            let key: Tuple = self
                .group
                .iter()
                .map(|e| e.eval(t).unwrap_or(Value::Null))
                .collect();
            let aggs = &self.aggs;
            let entry = self
                .groups
                .entry(key.clone())
                .or_insert_with(|| GroupState {
                    rows: 0,
                    states: aggs.iter().map(fresh_state).collect(),
                });
            entry.rows += m;
            for (call, state) in self.aggs.iter().zip(entry.states.iter_mut()) {
                let value = call.arg.as_ref().map(|e| e.eval(t).unwrap_or(Value::Null));
                update_state(state, call, value.as_ref(), m);
            }
            dirty.insert(key);
        }

        // Each dirty group retracts at most one row and asserts at most
        // one.
        out.reserve(2 * dirty.len());
        for key in dirty {
            let new_output = match self.groups.get(&key) {
                Some(gs) if gs.rows > 0 || self.global => {
                    let mut vals: Vec<Value> = key.values().to_vec();
                    for (call, state) in self.aggs.iter().zip(gs.states.iter()) {
                        vals.push(read_state(state, call));
                    }
                    Some(Tuple::new(vals))
                }
                Some(_) => {
                    self.groups.remove(&key);
                    None
                }
                None if self.global => {
                    // Fresh global group over empty input.
                    let gs = GroupState {
                        rows: 0,
                        states: self.aggs.iter().map(fresh_state).collect(),
                    };
                    let mut vals: Vec<Value> = key.values().to_vec();
                    for (call, state) in self.aggs.iter().zip(gs.states.iter()) {
                        vals.push(read_state(state, call));
                    }
                    self.groups.insert(key.clone(), gs);
                    Some(Tuple::new(vals))
                }
                None => None,
            };
            let old_output = self.last_output.get(&key).cloned();
            if old_output.as_ref() == new_output.as_ref() {
                continue;
            }
            if let Some(o) = old_output {
                out.push(o, -1);
            }
            match new_output {
                Some(n) => {
                    out.push(n.clone(), 1);
                    self.last_output.insert(key, n);
                }
                None => {
                    self.last_output.remove(&key);
                }
            }
        }
    }

    /// Reconstruct the full current output bag (one row per live
    /// group), appending to `out`.
    pub fn replay_into(&self, out: &mut Delta) {
        for row in self.last_output.values() {
            out.push(row.clone(), 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[Value]) -> Tuple {
        Tuple::new(vals.to_vec())
    }

    fn call(func: AggFunc, arg_col: Option<usize>, distinct: bool) -> AggCall {
        AggCall {
            func,
            arg: arg_col.map(ScalarExpr::Col),
            distinct,
        }
    }

    #[test]
    fn global_count_star_starts_at_zero() {
        let mut a = AggregateOp::new(vec![], vec![call(AggFunc::CountStar, None, false)]);
        let out = a.on_delta(Delta::new()).consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[Value::Int(0)]), 1)]);
        // One row arrives → 0 retracted, 1 asserted.
        let out = a
            .on_delta([(t(&[Value::Int(9)]), 1)].into_iter().collect())
            .consolidate();
        let entries = out.into_entries();
        assert!(entries.contains(&(t(&[Value::Int(0)]), -1)));
        assert!(entries.contains(&(t(&[Value::Int(1)]), 1)));
    }

    #[test]
    fn grouped_count_appears_and_disappears() {
        let mut a = AggregateOp::new(
            vec![ScalarExpr::col(0)],
            vec![call(AggFunc::CountStar, None, false)],
        );
        let en = Value::str("en");
        let row = t(&[en.clone(), Value::Int(1)]);
        let out = a
            .on_delta([(row.clone(), 2)].into_iter().collect())
            .consolidate();
        assert_eq!(
            out.into_entries(),
            vec![(t(&[en.clone(), Value::Int(2)]), 1)]
        );
        let out = a.on_delta([(row, -2)].into_iter().collect()).consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[en, Value::Int(2)]), -1)]);
        assert_eq!(a.memory_tuples(), 0);
    }

    #[test]
    fn min_survives_deletion_of_minimum() {
        let mut a = AggregateOp::new(vec![], vec![call(AggFunc::Min, Some(0), false)]);
        a.on_delta(
            [(t(&[Value::Int(1)]), 1), (t(&[Value::Int(5)]), 1)]
                .into_iter()
                .collect(),
        );
        let out = a
            .on_delta([(t(&[Value::Int(1)]), -1)].into_iter().collect())
            .consolidate();
        let entries = out.into_entries();
        assert!(entries.contains(&(t(&[Value::Int(5)]), 1)), "{entries:?}");
    }

    #[test]
    fn sum_handles_mixed_numerics_and_deletions() {
        let mut a = AggregateOp::new(vec![], vec![call(AggFunc::Sum, Some(0), false)]);
        a.on_delta(
            [(t(&[Value::Int(2)]), 1), (t(&[Value::float(0.5)]), 1)]
                .into_iter()
                .collect(),
        );
        let out = a
            .on_delta([(t(&[Value::float(0.5)]), -1)].into_iter().collect())
            .consolidate();
        // After removing the float, the sum is integer 2 again.
        assert!(out.into_entries().contains(&(t(&[Value::Int(2)]), 1)));
    }

    #[test]
    fn count_distinct() {
        let mut a = AggregateOp::new(vec![], vec![call(AggFunc::Count, Some(0), true)]);
        a.on_delta(Delta::new());
        let out = a
            .on_delta(
                [
                    (t(&[Value::str("en")]), 1),
                    (t(&[Value::str("en")]), 1),
                    (t(&[Value::str("de")]), 1),
                ]
                .into_iter()
                .collect(),
            )
            .consolidate();
        assert!(out.into_entries().contains(&(t(&[Value::Int(2)]), 1)));
    }

    #[test]
    fn collect_is_sorted_and_counted() {
        let mut a = AggregateOp::new(vec![], vec![call(AggFunc::Collect, Some(0), false)]);
        a.on_delta(Delta::new());
        let out = a
            .on_delta(
                [(t(&[Value::Int(3)]), 2), (t(&[Value::Int(1)]), 1)]
                    .into_iter()
                    .collect(),
            )
            .consolidate();
        let want = Value::list(vec![Value::Int(1), Value::Int(3), Value::Int(3)]);
        assert!(out.into_entries().contains(&(t(&[want]), 1)));
    }

    #[test]
    fn avg_of_empty_is_null() {
        let mut a = AggregateOp::new(vec![], vec![call(AggFunc::Avg, Some(0), false)]);
        let out = a.on_delta(Delta::new()).consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[Value::Null]), 1)]);
    }

    #[test]
    fn nulls_do_not_count() {
        let mut a = AggregateOp::new(vec![], vec![call(AggFunc::Count, Some(0), false)]);
        a.on_delta(Delta::new());
        let out = a
            .on_delta([(t(&[Value::Null]), 1)].into_iter().collect())
            .consolidate();
        assert!(out.is_empty(), "count(null) stays 0: {out:?}");
    }
}
