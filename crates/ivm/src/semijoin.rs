//! Incremental semijoin / antijoin — the Rete "negative node".
//!
//! Maintains, per join key, the *support count* of the right (existence)
//! input. A left tuple passes iff the support is positive (semijoin) or
//! zero (antijoin). Exact delta rule over bags:
//!
//! `Δ(L ⋉ R) = [L ⋉ R_new − L ⋉ R_old] + ΔL ⋉ R_new`
//!
//! The first bracket is non-empty only for keys whose support crossed
//! zero — the counting trick that makes negation incremental (Gupta–
//! Mumick–Subrahmanian's treatment of set difference).
//!
//! Like [`JoinOp`](crate::join::JoinOp), the hot path never materialises
//! a key tuple: support is bucketed by key-projection hash and probed
//! with borrowed projections; only the first insertion of a brand-new
//! support key allocates (and is counted by
//! [`stats::counters`](crate::stats::counters)).

use pgq_common::fxhash::FxHashMap;
use pgq_common::tuple::Tuple;

use crate::delta::{Delta, IndexedBag};
use crate::stats::counters;

/// Support counts per key, bucketed by key-projection hash so probes and
/// updates borrow the probing tuple (via
/// [`KeyRef`](pgq_common::tuple::KeyRef)) instead of projecting it.
#[derive(Clone, Debug, Default)]
struct SupportMap {
    /// key hash -> [(materialised key, support)]
    by_hash: FxHashMap<u64, Vec<(Tuple, i64)>>,
    len: usize,
}

impl SupportMap {
    /// Number of keys with non-zero support.
    fn len(&self) -> usize {
        self.len
    }

    /// Support of `probe.project(cols)` (zero when absent).
    fn probe(&self, probe: &Tuple, cols: &[usize]) -> i64 {
        let kr = probe.key_ref(cols);
        self.by_hash
            .get(&kr.hash())
            .and_then(|bucket| {
                bucket
                    .iter()
                    .find(|(k, _)| kr.matches_key(k))
                    .map(|(_, c)| *c)
            })
            .unwrap_or(0)
    }

    /// Add `dm` to the support of `probe.project(cols)`; returns
    /// `(old, new)` support. Removes the key at zero.
    fn update(&mut self, probe: &Tuple, cols: &[usize], dm: i64) -> (i64, i64) {
        let kr = probe.key_ref(cols);
        let bucket = self.by_hash.entry(kr.hash()).or_default();
        if let Some(pos) = bucket.iter().position(|(k, _)| kr.matches_key(k)) {
            let old = bucket[pos].1;
            let new = old + dm;
            if new == 0 {
                bucket.swap_remove(pos);
                self.len -= 1;
                if bucket.is_empty() {
                    self.by_hash.remove(&kr.hash());
                }
            } else {
                bucket[pos].1 = new;
            }
            (old, new)
        } else {
            // First sighting of this key: the one place a key tuple is
            // materialised.
            counters::key_materialized();
            bucket.push((kr.to_tuple(), dm));
            self.len += 1;
            (0, dm)
        }
    }
}

/// ⋉ / ▷ node.
#[derive(Clone, Debug)]
pub struct SemiJoinOp {
    left_mem: IndexedBag,
    right_keys: Vec<usize>,
    right_support: SupportMap,
    anti: bool,
}

impl SemiJoinOp {
    /// Create a node joining on the given key columns.
    pub fn new(left_keys: Vec<usize>, right_keys: Vec<usize>, anti: bool) -> SemiJoinOp {
        SemiJoinOp {
            left_mem: IndexedBag::new(left_keys),
            right_keys,
            right_support: SupportMap::default(),
            anti,
        }
    }

    /// Tuples materialised (left memory + support keys).
    pub fn memory_tuples(&self) -> usize {
        self.left_mem.distinct_len() + self.right_support.len()
    }

    fn passes(&self, support_positive: bool) -> bool {
        support_positive != self.anti
    }

    /// Process one batch of deltas from both inputs.
    pub fn on_deltas(&mut self, dl: Delta, dr: Delta) -> Delta {
        let mut out = Delta::new();
        self.apply(&dl, &dr, &mut out);
        out
    }

    /// Process one batch of borrowed deltas, appending output rows to
    /// `out`.
    pub fn apply(&mut self, dl: &Delta, dr: &Delta, out: &mut Delta) {
        // Phase 1: apply ΔR; emit flips against L_old. Aggregate ΔR per
        // key first so transient zero crossings inside one batch don't
        // emit cancelling flips; keys stay borrowed — buckets hold entry
        // indices into `dr`, disambiguated by projection equality.
        let dr = dr.entries();
        let mut per_key: FxHashMap<u64, Vec<(usize, i64)>> = FxHashMap::default();
        for (i, (rt, rm)) in dr.iter().enumerate() {
            let kr = rt.key_ref(&self.right_keys);
            let bucket = per_key.entry(kr.hash()).or_default();
            match bucket
                .iter_mut()
                .find(|(j, _)| kr.matches_projection(&dr[*j].0, &self.right_keys))
            {
                Some((_, dm)) => *dm += rm,
                None => bucket.push((i, *rm)),
            }
        }
        for bucket in per_key.into_values() {
            for (rep_ix, dm) in bucket {
                if dm == 0 {
                    continue;
                }
                let rep = &dr[rep_ix].0;
                let (old, new) = self.right_support.update(rep, &self.right_keys, dm);
                let (old_pos, new_pos) = (old > 0, new > 0);
                debug_assert!(new >= 0, "negative existence support under {rep}");
                if old_pos != new_pos {
                    let sign = if self.passes(new_pos) { 1 } else { -1 };
                    for (lt, lm) in self.left_mem.probe(rep, &self.right_keys) {
                        out.push(lt.clone(), sign * lm);
                    }
                }
            }
        }

        // Phase 2: ΔL against R_new.
        for (lt, lm) in dl.iter() {
            let positive = self.right_support.probe(lt, self.left_mem.key_cols()) > 0;
            if self.passes(positive) {
                out.push(lt.clone(), *lm);
            }
        }
        for (lt, lm) in dl.iter() {
            self.left_mem.update(lt, *lm);
        }
    }

    /// Rebuild the left memory and right support map from full input
    /// bags without emitting flips or probing membership — the
    /// warm-recovery path. Post-state is identical to
    /// `apply(dl, dr, &mut discard)`: apply's two probe phases exist
    /// only to compute the discarded output, while the memories absorb
    /// exactly the inputs.
    pub fn restore(&mut self, dl: &Delta, dr: &Delta) {
        for (rt, rm) in dr.iter() {
            self.right_support.update(rt, &self.right_keys, *rm);
        }
        for (lt, lm) in dl.iter() {
            self.left_mem.update(lt, *lm);
        }
    }

    /// Reconstruct the full current output bag (L ⋉ R / L ▷ R as of
    /// now), appending to `out`.
    pub fn replay_into(&self, out: &mut Delta) {
        for (lt, lm) in self.left_mem.iter() {
            let positive = self.right_support.probe(lt, self.left_mem.key_cols()) > 0;
            if self.passes(positive) {
                out.push(lt.clone(), lm);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_common::value::Value;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    fn d(entries: &[(&[i64], i64)]) -> Delta {
        entries.iter().map(|(v, m)| (t(v), *m)).collect()
    }

    #[test]
    fn semijoin_passes_supported_keys() {
        let mut j = SemiJoinOp::new(vec![0], vec![0], false);
        let out = j
            .on_deltas(d(&[(&[1, 10], 1), (&[2, 20], 1)]), d(&[(&[1], 1)]))
            .consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10]), 1)]);
    }

    #[test]
    fn antijoin_passes_unsupported_keys() {
        let mut j = SemiJoinOp::new(vec![0], vec![0], true);
        let out = j
            .on_deltas(d(&[(&[1, 10], 1), (&[2, 20], 1)]), d(&[(&[1], 1)]))
            .consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[2, 20]), 1)]);
    }

    #[test]
    fn support_flip_retracts_and_asserts() {
        let mut j = SemiJoinOp::new(vec![0], vec![0], true);
        // Left row with no support → passes the antijoin.
        j.on_deltas(d(&[(&[1, 10], 2)]), Delta::new());
        // Support appears → retract both copies.
        let out = j.on_deltas(Delta::new(), d(&[(&[1], 1)])).consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10]), -2)]);
        // Second witness: no change (support already positive).
        let out = j.on_deltas(Delta::new(), d(&[(&[1], 1)])).consolidate();
        assert!(out.is_empty());
        // Both witnesses go → row comes back.
        let out = j.on_deltas(Delta::new(), d(&[(&[1], -2)])).consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10]), 2)]);
    }

    #[test]
    fn simultaneous_deltas_use_new_right_state() {
        let mut j = SemiJoinOp::new(vec![0], vec![0], false);
        // Left row and its witness arrive in the same batch.
        let out = j
            .on_deltas(d(&[(&[1, 10], 1)]), d(&[(&[1], 1)]))
            .consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10]), 1)]);
    }

    #[test]
    fn left_retraction_propagates() {
        let mut j = SemiJoinOp::new(vec![0], vec![0], false);
        j.on_deltas(d(&[(&[1, 10], 1)]), d(&[(&[1], 1)]));
        let out = j
            .on_deltas(d(&[(&[1, 10], -1)]), Delta::new())
            .consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10]), -1)]);
    }

    #[test]
    fn cancelled_batch_does_not_flip() {
        // +1 and -1 for the same key in one ΔR batch: net zero, no flip.
        let mut j = SemiJoinOp::new(vec![0], vec![0], true);
        j.on_deltas(d(&[(&[1, 10], 1)]), Delta::new());
        let out = j
            .on_deltas(Delta::new(), d(&[(&[1], 1), (&[1], -1)]))
            .consolidate();
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(j.memory_tuples(), 1, "support key should not linger");
    }

    #[test]
    fn empty_keys_model_global_existence() {
        // No key columns: the right side acts as a global gate.
        let mut j = SemiJoinOp::new(vec![], vec![], true);
        let out = j.on_deltas(d(&[(&[5], 1)]), Delta::new()).consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[5]), 1)]);
        let out = j.on_deltas(Delta::new(), d(&[(&[], 1)])).consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[5]), -1)]);
    }
}
