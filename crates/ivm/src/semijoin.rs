//! Incremental semijoin / antijoin — the Rete "negative node".
//!
//! Maintains, per join key, the *support count* of the right (existence)
//! input. A left tuple passes iff the support is positive (semijoin) or
//! zero (antijoin). Exact delta rule over bags:
//!
//! `Δ(L ⋉ R) = [L ⋉ R_new − L ⋉ R_old] + ΔL ⋉ R_new`
//!
//! The first bracket is non-empty only for keys whose support crossed
//! zero — the counting trick that makes negation incremental (Gupta–
//! Mumick–Subrahmanian's treatment of set difference).

use pgq_common::fxhash::FxHashMap;
use pgq_common::tuple::Tuple;

use crate::delta::{Delta, IndexedBag};

/// ⋉ / ▷ node.
#[derive(Clone, Debug)]
pub struct SemiJoinOp {
    left_mem: IndexedBag,
    right_keys: Vec<usize>,
    right_support: FxHashMap<Tuple, i64>,
    anti: bool,
}

impl SemiJoinOp {
    /// Create a node joining on the given key columns.
    pub fn new(left_keys: Vec<usize>, right_keys: Vec<usize>, anti: bool) -> SemiJoinOp {
        SemiJoinOp {
            left_mem: IndexedBag::new(left_keys),
            right_keys,
            right_support: FxHashMap::default(),
            anti,
        }
    }

    /// Tuples materialised (left memory + support keys).
    pub fn memory_tuples(&self) -> usize {
        self.left_mem.distinct_len() + self.right_support.len()
    }

    fn passes(&self, support_positive: bool) -> bool {
        support_positive != self.anti
    }

    /// Process one batch of deltas from both inputs.
    pub fn on_deltas(&mut self, dl: Delta, dr: Delta) -> Delta {
        let mut out = Delta::new();

        // Phase 1: apply ΔR; emit flips against L_old.
        let mut per_key: FxHashMap<Tuple, i64> = FxHashMap::default();
        for (t, m) in dr.iter() {
            *per_key.entry(t.project(&self.right_keys)).or_insert(0) += m;
        }
        for (key, dm) in per_key {
            if dm == 0 {
                continue;
            }
            let entry = self.right_support.entry(key.clone()).or_insert(0);
            let old_pos = *entry > 0;
            *entry += dm;
            let new_pos = *entry > 0;
            debug_assert!(*entry >= 0, "negative existence support for {key}");
            if *entry == 0 {
                self.right_support.remove(&key);
            }
            if old_pos != new_pos {
                let sign = if self.passes(new_pos) { 1 } else { -1 };
                let matches: Vec<(Tuple, i64)> = self
                    .left_mem
                    .get(&key)
                    .map(|(t, c)| (t.clone(), c))
                    .collect();
                for (lt, lm) in matches {
                    out.push(lt, sign * lm);
                }
            }
        }

        // Phase 2: ΔL against R_new.
        for (lt, lm) in dl.iter() {
            let key = lt.project(self.left_mem.key_cols());
            let positive = self.right_support.get(&key).copied().unwrap_or(0) > 0;
            if self.passes(positive) {
                out.push(lt.clone(), *lm);
            }
        }
        for (lt, lm) in dl.iter() {
            self.left_mem.update(lt, *lm);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_common::value::Value;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    fn d(entries: &[(&[i64], i64)]) -> Delta {
        entries.iter().map(|(v, m)| (t(v), *m)).collect()
    }

    #[test]
    fn semijoin_passes_supported_keys() {
        let mut j = SemiJoinOp::new(vec![0], vec![0], false);
        let out = j
            .on_deltas(d(&[(&[1, 10], 1), (&[2, 20], 1)]), d(&[(&[1], 1)]))
            .consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10]), 1)]);
    }

    #[test]
    fn antijoin_passes_unsupported_keys() {
        let mut j = SemiJoinOp::new(vec![0], vec![0], true);
        let out = j
            .on_deltas(d(&[(&[1, 10], 1), (&[2, 20], 1)]), d(&[(&[1], 1)]))
            .consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[2, 20]), 1)]);
    }

    #[test]
    fn support_flip_retracts_and_asserts() {
        let mut j = SemiJoinOp::new(vec![0], vec![0], true);
        // Left row with no support → passes the antijoin.
        j.on_deltas(d(&[(&[1, 10], 2)]), Delta::new());
        // Support appears → retract both copies.
        let out = j.on_deltas(Delta::new(), d(&[(&[1], 1)])).consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10]), -2)]);
        // Second witness: no change (support already positive).
        let out = j.on_deltas(Delta::new(), d(&[(&[1], 1)])).consolidate();
        assert!(out.is_empty());
        // Both witnesses go → row comes back.
        let out = j.on_deltas(Delta::new(), d(&[(&[1], -2)])).consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10]), 2)]);
    }

    #[test]
    fn simultaneous_deltas_use_new_right_state() {
        let mut j = SemiJoinOp::new(vec![0], vec![0], false);
        // Left row and its witness arrive in the same batch.
        let out = j
            .on_deltas(d(&[(&[1, 10], 1)]), d(&[(&[1], 1)]))
            .consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10]), 1)]);
    }

    #[test]
    fn left_retraction_propagates() {
        let mut j = SemiJoinOp::new(vec![0], vec![0], false);
        j.on_deltas(d(&[(&[1, 10], 1)]), d(&[(&[1], 1)]));
        let out = j
            .on_deltas(d(&[(&[1, 10], -1)]), Delta::new())
            .consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[1, 10]), -1)]);
    }

    #[test]
    fn empty_keys_model_global_existence() {
        // No key columns: the right side acts as a global gate.
        let mut j = SemiJoinOp::new(vec![], vec![], true);
        let out = j.on_deltas(d(&[(&[5], 1)]), Delta::new()).consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[5]), 1)]);
        let out = j.on_deltas(Delta::new(), d(&[(&[], 1)])).consolidate();
        assert_eq!(out.into_entries(), vec![(t(&[5]), -1)]);
    }
}
