//! Incremental duplicate elimination (bag → set), counting-based
//! (Gupta–Mumick–Subrahmanian): a tuple is asserted when its support count
//! rises from 0 and retracted when it falls back to 0.

use pgq_common::fxhash::FxHashMap;
use pgq_common::tuple::Tuple;

use crate::delta::Delta;

/// δ node.
#[derive(Clone, Debug, Default)]
pub struct DistinctOp {
    counts: FxHashMap<Tuple, i64>,
}

impl DistinctOp {
    /// New empty node.
    pub fn new() -> DistinctOp {
        DistinctOp::default()
    }

    /// Distinct tuples currently supported.
    pub fn memory_tuples(&self) -> usize {
        self.counts.len()
    }

    /// Process a delta.
    pub fn on_delta(&mut self, input: Delta) -> Delta {
        let input = input.consolidate();
        let mut out = Delta::with_capacity(input.len());
        self.apply(&input, &mut out);
        out
    }

    /// Process a borrowed **consolidated** delta, appending assertion /
    /// retraction flips to `out`. (An unconsolidated input is still
    /// correct — transient zero crossings emit cancelling flips that the
    /// caller's consolidation removes — but consolidated input avoids
    /// the churn; the network consolidates every edge.)
    pub fn apply(&mut self, input: &Delta, out: &mut Delta) {
        for (t, m) in input.iter() {
            let e = self.counts.entry(t.clone()).or_insert(0);
            let before = *e;
            *e += m;
            let after = *e;
            debug_assert!(after >= 0, "negative support for {t}");
            if before == 0 && after > 0 {
                out.push(t.clone(), 1);
            } else if before > 0 && after == 0 {
                self.counts.remove(t);
                out.push(t.clone(), -1);
            } else if after == 0 {
                self.counts.remove(t);
            }
        }
    }

    /// Reconstruct the full current output set (each supported tuple
    /// once), appending to `out`.
    pub fn replay_into(&self, out: &mut Delta) {
        for t in self.counts.keys() {
            out.push(t.clone(), 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_common::value::Value;

    fn t(i: i64) -> Tuple {
        vec![Value::Int(i)].into()
    }

    #[test]
    fn assert_once_retract_at_zero() {
        let mut d = DistinctOp::new();
        let out = d.on_delta([(t(1), 2)].into_iter().collect()).consolidate();
        assert_eq!(out.into_entries(), vec![(t(1), 1)]);
        // Going 2 → 1 emits nothing.
        let out = d.on_delta([(t(1), -1)].into_iter().collect()).consolidate();
        assert!(out.is_empty());
        // 1 → 0 retracts.
        let out = d.on_delta([(t(1), -1)].into_iter().collect()).consolidate();
        assert_eq!(out.into_entries(), vec![(t(1), -1)]);
        assert_eq!(d.memory_tuples(), 0);
    }

    #[test]
    fn mixed_batch() {
        let mut d = DistinctOp::new();
        d.on_delta([(t(1), 1), (t(2), 1)].into_iter().collect());
        let out = d
            .on_delta([(t(1), 1), (t(2), -1), (t(3), 1)].into_iter().collect())
            .consolidate();
        let entries = out.into_entries();
        assert!(entries.contains(&(t(2), -1)));
        assert!(entries.contains(&(t(3), 1)));
        assert_eq!(entries.len(), 2);
    }
}
