//! Incremental variable-length (transitive) join — the ⋈* operator.
//!
//! Maintains the set of **edge-distinct paths** (Cypher's relationship
//! isomorphism, which also keeps path sets finite on cyclic graphs) over a
//! dynamic edge relation, following the paper's *atomic path* model: a
//! path is inserted or deleted as a unit, never mutated.
//!
//! Maintenance algebra (cf. Bergmann et al., ICGT 2012; Pang et al., TODS
//! 2005 — adapted to whole paths instead of reachability pairs):
//!
//! * **Edge insertion** `e = (u,v)`: every new path containing `e`
//!   decomposes uniquely as `p₁ · e · p₂` with `p₁` ending at `u`, `p₂`
//!   starting at `v`, neither containing `e`; enumerate the combinations,
//!   keeping edge-disjoint ones within the hop bound.
//! * **Edge deletion**: drop every path indexed under `e` — no
//!   over-deletion/rederivation phase (DRed) is needed because paths are
//!   their own support certificates.
//!
//! The operator is internally a small sub-network: an edge scan feeding
//! the path store, a join with the left input on the source column, and an
//! optional join with a vertex scan enforcing destination labels and
//! supplying pushed destination properties.

use std::sync::Arc;

use pgq_algebra::fra::VarLenSpec;
use pgq_common::fxhash::{FxHashMap, FxHashSet};
use pgq_common::ids::{EdgeId, VertexId};
use pgq_common::path::PathValue;
use pgq_common::tuple::Tuple;
use pgq_common::value::Value;
use pgq_graph::delta::ChangeEvent;
use pgq_graph::store::PropertyGraph;

use crate::delta::Delta;
use crate::join::JoinOp;
use crate::scan::{EdgeScan, EdgeScanSpec, VertexScan};

/// Store of edge-distinct paths with source/target/edge indexes.
#[derive(Clone, Debug, Default)]
struct PathStore {
    starting: FxHashMap<VertexId, FxHashSet<Arc<PathValue>>>,
    ending: FxHashMap<VertexId, FxHashSet<Arc<PathValue>>>,
    by_edge: FxHashMap<EdgeId, FxHashSet<Arc<PathValue>>>,
    count: usize,
}

impl PathStore {
    fn add(&mut self, p: Arc<PathValue>) {
        self.starting
            .entry(p.source())
            .or_default()
            .insert(p.clone());
        self.ending.entry(p.target()).or_default().insert(p.clone());
        for &e in p.edges() {
            self.by_edge.entry(e).or_default().insert(p.clone());
        }
        self.count += 1;
    }

    /// All new paths created by inserting directed edge `e = (u, v)`.
    fn insert_edge(
        &mut self,
        e: EdgeId,
        u: VertexId,
        v: VertexId,
        max: Option<u32>,
    ) -> Vec<Arc<PathValue>> {
        let fits = |len: usize| max.is_none_or(|m| len as u32 <= m);
        if !fits(1) {
            return Vec::new();
        }
        let mut added: Vec<Arc<PathValue>> = Vec::new();
        let hop = PathValue::single(u).extend(e, v);

        // Borrow the prefix/suffix extents directly — `added` owns its
        // paths, so the borrows end before the store is mutated below.
        {
            let prefixes = self.ending.get(&u).into_iter().flatten();
            let suffixes = || self.starting.get(&v).into_iter().flatten();

            // ε · e · ε
            added.push(Arc::new(hop.clone()));
            // ε · e · p₂
            for p2 in suffixes() {
                if p2.contains_edge(e) || !fits(p2.len() + 1) {
                    continue;
                }
                added.push(Arc::new(hop.concat(p2).expect("seam at v")));
            }
            // p₁ · e · ε  and  p₁ · e · p₂
            for p1 in prefixes {
                if p1.contains_edge(e) {
                    continue;
                }
                if fits(p1.len() + 1) {
                    added.push(Arc::new(p1.extend(e, v)));
                }
                for p2 in suffixes() {
                    if p2.contains_edge(e) || !fits(p1.len() + 1 + p2.len()) {
                        continue;
                    }
                    if p1.edges().iter().any(|x| p2.contains_edge(*x)) {
                        continue;
                    }
                    let combined = p1.extend(e, v).concat(p2).expect("seam at v");
                    added.push(Arc::new(combined));
                }
            }
        }
        for p in &added {
            debug_assert!(p.edges_distinct());
            self.add(p.clone());
        }
        added
    }

    /// All paths destroyed by deleting edge `e`.
    fn remove_edge(&mut self, e: EdgeId) -> Vec<Arc<PathValue>> {
        let Some(set) = self.by_edge.remove(&e) else {
            return Vec::new();
        };
        let paths: Vec<Arc<PathValue>> = set.into_iter().collect();
        for p in &paths {
            // by_edge entry for `e` is already gone; clean the others.
            if let Some(s) = self.starting.get_mut(&p.source()) {
                s.remove(p);
            }
            if let Some(s) = self.ending.get_mut(&p.target()) {
                s.remove(p);
            }
            for &e2 in p.edges() {
                if e2 != e {
                    if let Some(s) = self.by_edge.get_mut(&e2) {
                        s.remove(p);
                    }
                }
            }
            self.count -= 1;
        }
        paths
    }
}

/// The ⋈* dataflow node.
#[derive(Clone, Debug)]
pub struct VarLengthOp {
    edge_scan: EdgeScan,
    store: PathStore,
    min: u32,
    max: Option<u32>,
    /// Joins left tuples (keyed on the source column) with the path
    /// relation `[src, dst, path]` (keyed on `src`).
    j1: JoinOp,
    /// Trivial zero-hop paths, present when `min == 0`.
    trivial: Option<VertexScan>,
    /// Destination constraint/property join, when needed. Its output
    /// permutation (restoring the FRA column order
    /// `left ++ [dst, props…, path]`) is folded into the join's emit.
    dst: Option<(JoinOp, VertexScan)>,
}

impl VarLengthOp {
    /// Build from an FRA [`VarLenSpec`]; `left_arity` and `src_col`
    /// locate the traversal source in the left input.
    pub fn new(left_arity: usize, src_col: usize, spec: &VarLenSpec) -> VarLengthOp {
        let edge_scan = EdgeScan::new(EdgeScanSpec {
            types: spec.types.clone(),
            dir: Some(spec.dir),
            edge_prop_filters: spec.edge_prop_filters.clone(),
            ..Default::default()
        });
        // j1: left (keyed src_col) ⋈ paths [src, dst, path] (keyed 0)
        // → left ++ [dst, path]
        let j1 = JoinOp::new(vec![src_col], vec![0], 3);
        let trivial = if spec.min == 0 {
            Some(VertexScan::new(vec![], vec![], false))
        } else {
            None
        };
        let needs_dst =
            !spec.dst_labels.is_empty() || !spec.dst_props.is_empty() || spec.dst_carry_map;
        let dst = if needs_dst {
            let scan = VertexScan::new(
                spec.dst_labels.clone(),
                spec.dst_props.clone(),
                spec.dst_carry_map,
            );
            // j2: (left ++ [dst, path]) keyed dst ⋈ scan [dst, props…]
            // keyed 0 → left ++ [dst, path, props…], emitted directly in
            // the restored order left…, dst, props…, path.
            let p = spec.dst_props.len() + usize::from(spec.dst_carry_map);
            let a = left_arity;
            let mut perm: Vec<usize> = (0..a).collect();
            perm.push(a); // dst
            perm.extend(a + 2..a + 2 + p); // props
            perm.push(a + 1); // path
            let j2 = JoinOp::new(vec![left_arity], vec![0], 1 + p).with_output_perm(perm);
            Some((j2, scan))
        } else {
            None
        };
        VarLengthOp {
            edge_scan,
            store: PathStore::default(),
            min: spec.min,
            max: spec.max,
            j1,
            trivial,
            dst,
        }
    }

    /// Tuples materialised across the internal sub-network.
    pub fn memory_tuples(&self) -> usize {
        self.store.count
            + self.edge_scan.memory_tuples()
            + self.j1.memory_tuples()
            + self.trivial.as_ref().map_or(0, VertexScan::memory_tuples)
            + self
                .dst
                .as_ref()
                .map_or(0, |(j, s)| j.memory_tuples() + s.memory_tuples())
    }

    /// Number of paths materialised.
    pub fn path_count(&self) -> usize {
        self.store.count
    }

    fn path_tuple(p: &Arc<PathValue>) -> Tuple {
        Tuple::from_slice(&[
            Value::Node(p.source()),
            Value::Node(p.target()),
            Value::Path(p.clone()),
        ])
    }

    /// Convert edge-scan triples into path-relation deltas.
    fn apply_edge_deltas(&mut self, de: Delta) -> Delta {
        let mut out = Delta::new();
        let entries = de.consolidate().into_entries();
        let min_eff = self.min.max(1) as usize;
        // Deletions first, so re-inserted edges rebuild cleanly.
        for (t, m) in entries.iter().filter(|(_, m)| *m < 0) {
            let _ = m;
            let e = t.get(1).as_rel().expect("edge triple");
            for p in self.store.remove_edge(e) {
                if p.len() >= min_eff {
                    out.push(Self::path_tuple(&p), -1);
                }
            }
        }
        for (t, _m) in entries.iter().filter(|(_, m)| *m > 0) {
            let u = t.get(0).as_node().expect("edge triple");
            let e = t.get(1).as_rel().expect("edge triple");
            let v = t.get(2).as_node().expect("edge triple");
            for p in self.store.insert_edge(e, u, v, self.max) {
                if p.len() >= min_eff {
                    out.push(Self::path_tuple(&p), 1);
                }
            }
        }
        out
    }

    /// Map the all-vertices scan delta to trivial path tuples
    /// `[v, v, ε_v]`.
    fn trivial_paths(d: Delta) -> Delta {
        d.into_entries()
            .into_iter()
            .map(|(t, m)| {
                let v = t.get(0).as_node().expect("vertex scan emits nodes");
                (
                    Tuple::new(vec![
                        Value::Node(v),
                        Value::Node(v),
                        Value::path(PathValue::single(v)),
                    ]),
                    m,
                )
            })
            .collect()
    }

    /// Initial evaluation: build the path store and all join memories.
    pub fn initial(&mut self, g: &PropertyGraph, left_initial: Delta) -> Delta {
        let mut out = Delta::new();
        self.initial_into(g, &left_initial, &mut out);
        out
    }

    /// [`VarLengthOp::initial`] with a borrowed left input and a
    /// caller-owned (pooled) output buffer.
    pub fn initial_into(&mut self, g: &PropertyGraph, left: &Delta, out: &mut Delta) {
        let de = self.edge_scan.initial(g);
        let mut dp = self.apply_edge_deltas(de);
        if let Some(tr) = &mut self.trivial {
            dp.extend(Self::trivial_paths(tr.initial(g)));
        }
        match &mut self.dst {
            Some((j2, scan)) => {
                let mut d1 = Delta::new();
                self.j1.apply(left, &dp, &mut d1);
                let dv = scan.initial(g);
                j2.apply(&d1, &dv, out);
            }
            None => self.j1.apply(left, &dp, out),
        }
    }

    /// Process a transaction: `left_delta` from the child subtree plus
    /// the raw change events (for the internal scans).
    pub fn on_events(
        &mut self,
        g: &PropertyGraph,
        events: &[ChangeEvent],
        left_delta: Delta,
    ) -> Delta {
        let mut out = Delta::new();
        self.on_events_into(g, events, &left_delta, &mut out);
        out
    }

    /// [`VarLengthOp::on_events`] with a borrowed left input and a
    /// caller-owned (pooled) output buffer.
    pub fn on_events_into(
        &mut self,
        g: &PropertyGraph,
        events: &[ChangeEvent],
        left: &Delta,
        out: &mut Delta,
    ) {
        let de = self.edge_scan.on_events(g, events);
        let mut dp = self.apply_edge_deltas(de);
        if let Some(tr) = &mut self.trivial {
            dp.extend(Self::trivial_paths(tr.on_events(g, events)));
        }
        match &mut self.dst {
            Some((j2, scan)) => {
                let mut d1 = Delta::new();
                self.j1.apply(left, &dp, &mut d1);
                let mut dv = Delta::new();
                scan.on_events_into(g, events, &mut dv);
                j2.apply(&d1, &dv, out);
            }
            None => self.j1.apply(left, &dp, out),
        }
    }

    /// Reconstruct the full current output bag from the internal join
    /// memories, appending to `out`.
    pub fn replay_into(&mut self, out: &mut Delta) {
        match &mut self.dst {
            Some((j2, _)) => j2.replay_into(out),
            None => self.j1.replay_into(out),
        }
    }

    /// Routing contracts of the internal scans (edge traversal, optional
    /// zero-hop vertex scan, optional destination-constraint scan) — the
    /// union of events a ⋈* node must see.
    pub fn routing(&self) -> Vec<crate::scan::ScanRouting> {
        use crate::scan::ScanRouting;
        let mut out = vec![ScanRouting::Edge(self.edge_scan.routing())];
        if let Some(tr) = &self.trivial {
            out.push(ScanRouting::Vertex(tr.routing()));
        }
        if let Some((_, scan)) = &self.dst {
            out.push(ScanRouting::Vertex(scan.routing()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_algebra::fra::{PropPush, VarLenSpec};
    use pgq_common::dir::Direction;
    use pgq_common::intern::Symbol;
    use pgq_graph::props::Properties;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn spec(min: u32, max: Option<u32>) -> VarLenSpec {
        VarLenSpec {
            types: vec![sym("R")],
            dir: Direction::Out,
            dst_labels: vec![],
            dst_props: vec![],
            dst_carry_map: false,
            edge_prop_filters: vec![],
            min,
            max,
        }
    }

    /// Left input: single-column tuples [Node(v)] for given vertices.
    fn left_of(vs: &[VertexId]) -> Delta {
        vs.iter()
            .map(|&v| (Tuple::new(vec![Value::Node(v)]), 1))
            .collect()
    }

    fn chain(n: usize) -> (PropertyGraph, Vec<VertexId>) {
        let mut g = PropertyGraph::new();
        let vs: Vec<VertexId> = (0..n)
            .map(|_| g.add_vertex([sym("N")], Properties::new()).0)
            .collect();
        for w in vs.windows(2) {
            g.add_edge(w[0], w[1], sym("R"), Properties::new()).unwrap();
        }
        (g, vs)
    }

    #[test]
    fn chain_paths_initial() {
        let (g, vs) = chain(3); // v0 -> v1 -> v2
        let mut op = VarLengthOp::new(1, 0, &spec(1, None));
        let out = op.initial(&g, left_of(&vs)).consolidate();
        // Paths: 0→1, 1→2, 0→2 = three.
        assert_eq!(out.len(), 3);
        assert_eq!(op.path_count(), 3);
    }

    #[test]
    fn edge_insertion_creates_crossing_paths() {
        let (mut g, vs) = chain(2);
        let mut op = VarLengthOp::new(1, 0, &spec(1, None));
        op.initial(&g, left_of(&vs));
        // Add v1 -> v0? No: add a new vertex and edge v1→v2'.
        let (v2, ev1) = g.add_vertex([sym("N")], Properties::new());
        let (_, ev2) = g.add_edge(vs[1], v2, sym("R"), Properties::new()).unwrap();
        // Left side gains v2 as well.
        let dl = left_of(&[v2]);
        let out = op.on_events(&g, &[ev1, ev2], dl).consolidate();
        // New paths: 1→2 and 0→1→2, both anchored at existing left rows.
        let adds: Vec<_> = out.iter().filter(|(_, m)| *m > 0).collect();
        assert_eq!(adds.len(), 2, "{out:?}");
        assert_eq!(op.path_count(), 3);
    }

    #[test]
    fn edge_deletion_retracts_all_containing_paths() {
        let (mut g, vs) = chain(4); // 0→1→2→3, 6 paths
        let mut op = VarLengthOp::new(1, 0, &spec(1, None));
        let init = op.initial(&g, left_of(&vs)).consolidate();
        assert_eq!(init.len(), 6);
        // Delete middle edge 1→2: kills 1→2, 0→2, 1→3, 0→3 (4 paths).
        let mid = g.out_edges(vs[1])[0];
        let ev = g.remove_edge(mid).unwrap();
        let out = op.on_events(&g, &[ev], Delta::new()).consolidate();
        let dels = out.iter().filter(|(_, m)| *m < 0).count();
        assert_eq!(dels, 4, "{out:?}");
        assert_eq!(op.path_count(), 2);
    }

    #[test]
    fn cycle_terminates_via_edge_distinctness() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("N")], Properties::new());
        let (b, _) = g.add_vertex([sym("N")], Properties::new());
        g.add_edge(a, b, sym("R"), Properties::new()).unwrap();
        g.add_edge(b, a, sym("R"), Properties::new()).unwrap();
        let mut op = VarLengthOp::new(1, 0, &spec(1, None));
        let out = op.initial(&g, left_of(&[a, b])).consolidate();
        // Paths: a→b, b→a, a→b→a, b→a→b — exactly 4 edge-distinct paths.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn hop_bounds_respected() {
        let (g, vs) = chain(5); // lengths 1..4 available
        let mut op = VarLengthOp::new(1, 0, &spec(2, Some(3)));
        let out = op.initial(&g, left_of(&vs)).consolidate();
        for (t, _) in out.iter() {
            let p = t.get(2).as_path().unwrap();
            assert!(p.len() >= 2 && p.len() <= 3, "bad length {}", p.len());
        }
        // len2: 0→2,1→3,2→4; len3: 0→3,1→4 → 5 paths.
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn zero_hop_includes_trivial_paths() {
        let (g, vs) = chain(2);
        let mut op = VarLengthOp::new(1, 0, &spec(0, None));
        let out = op.initial(&g, left_of(&vs)).consolidate();
        // Trivial ε_0, ε_1 plus the edge path 0→1 = 3.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn dst_label_constraint_enforced_incrementally() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("Post")], Properties::new());
        let (b, _) = g.add_vertex([sym("Comm")], Properties::new());
        g.add_edge(a, b, sym("R"), Properties::new()).unwrap();
        let mut sp = spec(1, None);
        sp.dst_labels = vec![sym("Comm")];
        let mut op = VarLengthOp::new(1, 0, &sp);
        let out = op.initial(&g, left_of(&[a])).consolidate();
        assert_eq!(out.len(), 1);
        // Removing the label retracts the match without touching edges.
        let ev = g.remove_label(b, sym("Comm")).unwrap().unwrap();
        let out = op.on_events(&g, &[ev], Delta::new()).consolidate();
        assert_eq!(out.len(), 1);
        assert!(out.iter().all(|(_, m)| *m < 0));
    }

    #[test]
    fn dst_props_are_emitted_in_fra_order() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("N")], Properties::new());
        let (b, _) = g.add_vertex(
            [sym("N")],
            Properties::from_iter([("lang", Value::str("en"))]),
        );
        g.add_edge(a, b, sym("R"), Properties::new()).unwrap();
        let mut sp = spec(1, None);
        sp.dst_props = vec![PropPush {
            prop: sym("lang"),
            col: "c.lang".into(),
        }];
        let mut op = VarLengthOp::new(1, 0, &sp);
        let out = op.initial(&g, left_of(&[a])).consolidate();
        let entries = out.into_entries();
        // Schema: [src, dst, c.lang, path]
        let (t, m) = &entries[0];
        assert_eq!(*m, 1);
        assert_eq!(t.arity(), 4);
        assert_eq!(t.get(0), &Value::Node(a));
        assert_eq!(t.get(1), &Value::Node(b));
        assert_eq!(t.get(2), &Value::str("en"));
        assert!(t.get(3).as_path().is_some());
    }

    #[test]
    fn parallel_edges_are_distinct_paths() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("N")], Properties::new());
        let (b, _) = g.add_vertex([sym("N")], Properties::new());
        g.add_edge(a, b, sym("R"), Properties::new()).unwrap();
        g.add_edge(a, b, sym("R"), Properties::new()).unwrap();
        let mut op = VarLengthOp::new(1, 0, &spec(1, None));
        let out = op.initial(&g, left_of(&[a])).consolidate();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn undirected_traversal() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("N")], Properties::new());
        let (b, _) = g.add_vertex([sym("N")], Properties::new());
        g.add_edge(a, b, sym("R"), Properties::new()).unwrap();
        let mut sp = spec(1, None);
        sp.dir = Direction::Both;
        let mut op = VarLengthOp::new(1, 0, &sp);
        let out = op.initial(&g, left_of(&[a, b])).consolidate();
        // From a: a-b; from b: b-a. (Round trips a-b-a reuse the edge →
        // excluded by edge-distinctness.)
        assert_eq!(out.len(), 2);
    }
}
