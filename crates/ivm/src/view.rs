//! Materialised views over FRA plans.

use pgq_algebra::fra::Fra;
use pgq_algebra::AlgebraError;
use pgq_algebra::CompiledQuery;
use pgq_common::fxhash::FxHashMap;
use pgq_common::tuple::Tuple;
use pgq_graph::delta::ChangeEvent;
use pgq_graph::store::PropertyGraph;

use crate::delta::Delta;
use crate::op::Op;

/// An incrementally maintained materialised view.
#[derive(Clone, Debug)]
pub struct MaterializedView {
    name: String,
    columns: Vec<String>,
    root: Op,
    results: FxHashMap<Tuple, i64>,
    maintenance_count: u64,
}

impl MaterializedView {
    /// Register a view for `compiled` and run its initial evaluation.
    ///
    /// Returns [`AlgebraError::NotMaintainable`] when the query falls
    /// outside the paper's maintainable fragment (ORDER BY / SKIP /
    /// LIMIT) — the baseline evaluator can still run such queries
    /// one-shot.
    pub fn create(
        name: impl Into<String>,
        compiled: &CompiledQuery,
        graph: &PropertyGraph,
    ) -> Result<MaterializedView, AlgebraError> {
        if !compiled.is_maintainable() {
            return Err(AlgebraError::NotMaintainable(
                compiled.not_maintainable.join("; "),
            ));
        }
        Ok(Self::create_unchecked(name, &compiled.fra, graph))
    }

    /// Register a view directly over an FRA plan (no fragment check).
    pub fn create_unchecked(
        name: impl Into<String>,
        fra: &Fra,
        graph: &PropertyGraph,
    ) -> MaterializedView {
        let mut root = Op::build(fra);
        let initial = root.initial(graph).consolidate();
        let mut results = FxHashMap::default();
        for (t, m) in initial.into_entries() {
            *results.entry(t).or_insert(0) += m;
        }
        results.retain(|_, m| *m != 0);
        MaterializedView {
            name: name.into(),
            columns: fra.schema(),
            root,
            results,
            maintenance_count: 0,
        }
    }

    /// View name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Output column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Maintain the view after a committed transaction; returns the
    /// consolidated delta of result changes.
    pub fn on_transaction(&mut self, graph: &PropertyGraph, events: &[ChangeEvent]) -> Delta {
        use std::collections::hash_map::Entry;
        self.maintenance_count += 1;
        let delta = self.root.on_events(graph, events).consolidate();
        // Only touched entries can reach zero — a full-map sweep per
        // transaction would make maintenance O(|view|) instead of O(|Δ|).
        for (t, m) in delta.iter() {
            match self.results.entry(t.clone()) {
                Entry::Occupied(mut e) => {
                    *e.get_mut() += m;
                    debug_assert!(*e.get() >= 0, "negative view multiplicity for {t}");
                    if *e.get() == 0 {
                        e.remove();
                    }
                }
                Entry::Vacant(v) => {
                    debug_assert!(*m >= 0, "negative view multiplicity for {t}");
                    v.insert(*m);
                }
            }
        }
        delta
    }

    /// Current result bag as `(tuple, multiplicity)` pairs, sorted for
    /// deterministic output.
    pub fn results(&self) -> Vec<(Tuple, i64)> {
        let mut out: Vec<(Tuple, i64)> =
            self.results.iter().map(|(t, m)| (t.clone(), *m)).collect();
        out.sort_by(|a, b| {
            a.0.values()
                .iter()
                .zip(b.0.values())
                .fold(std::cmp::Ordering::Equal, |acc, (x, y)| {
                    acc.then_with(|| x.total_cmp(y))
                })
                .then_with(|| a.0.arity().cmp(&b.0.arity()))
        });
        out
    }

    /// Flattened result rows (each tuple repeated by its multiplicity).
    pub fn rows(&self) -> Vec<Tuple> {
        let mut out = Vec::new();
        for (t, m) in self.results() {
            for _ in 0..m.max(0) {
                out.push(t.clone());
            }
        }
        out
    }

    /// Number of distinct result tuples.
    pub fn distinct_count(&self) -> usize {
        self.results.len()
    }

    /// Total row count (with multiplicities).
    pub fn row_count(&self) -> usize {
        self.results.values().map(|m| (*m).max(0) as usize).sum()
    }

    /// Tuples materialised across the network (memory metric).
    pub fn memory_tuples(&self) -> usize {
        self.root.memory_tuples() + self.results.len()
    }

    /// Number of maintenance rounds executed.
    pub fn maintenance_count(&self) -> u64 {
        self.maintenance_count
    }

    /// Per-operator statistics of the network (EXPLAIN-ANALYZE-style).
    pub fn network_stats(&self) -> crate::stats::OpStats {
        self.root.stats()
    }
}
