//! Materialised views over FRA plans.
//!
//! [`MaterializedView`] is the standalone single-view façade: it owns a
//! private [`DataflowNetwork`] with exactly one sink, keeping the
//! historical create/maintain/read API for tests, tools, and embedders
//! that maintain one view in isolation. Engines serving many views
//! should own one shared [`DataflowNetwork`] directly (as
//! `pgq_core::GraphEngine` does) so overlapping queries share operator
//! nodes.

use pgq_algebra::fra::Fra;
use pgq_algebra::AlgebraError;
use pgq_algebra::CompiledQuery;
use pgq_common::tuple::Tuple;
use pgq_graph::delta::ChangeEvent;
use pgq_graph::store::PropertyGraph;

use crate::delta::Delta;
use crate::network::{DataflowNetwork, SinkId};

/// An incrementally maintained materialised view (one private network,
/// one sink).
#[derive(Clone, Debug)]
pub struct MaterializedView {
    net: DataflowNetwork,
    sink: SinkId,
}

impl MaterializedView {
    /// Register a view for `compiled` and run its initial evaluation.
    ///
    /// Returns [`AlgebraError::NotMaintainable`] when the query falls
    /// outside the paper's maintainable fragment (ORDER BY / SKIP /
    /// LIMIT) — the baseline evaluator can still run such queries
    /// one-shot.
    pub fn create(
        name: impl Into<String>,
        compiled: &CompiledQuery,
        graph: &PropertyGraph,
    ) -> Result<MaterializedView, AlgebraError> {
        if !compiled.is_maintainable() {
            return Err(AlgebraError::NotMaintainable(
                compiled.not_maintainable.join("; "),
            ));
        }
        Ok(Self::create_unchecked(name, &compiled.fra, graph))
    }

    /// Register a view directly over an FRA plan (no fragment check).
    pub fn create_unchecked(
        name: impl Into<String>,
        fra: &Fra,
        graph: &PropertyGraph,
    ) -> MaterializedView {
        let mut net = DataflowNetwork::new();
        let sink = net.register(name, fra, graph);
        MaterializedView { net, sink }
    }

    /// View name.
    pub fn name(&self) -> &str {
        // Lifetime gymnastics: ViewRef borrows the network, so go
        // through it inline.
        self.net.view(self.sink).name()
    }

    /// Output column names.
    pub fn columns(&self) -> &[String] {
        self.net.view(self.sink).columns()
    }

    /// Maintain the view after a committed transaction; returns the
    /// consolidated delta of result changes.
    pub fn on_transaction(&mut self, graph: &PropertyGraph, events: &[ChangeEvent]) -> Delta {
        self.net.on_transaction(graph, events);
        if self.net.sink_changed(self.sink) {
            self.net.last_delta(self.sink).clone()
        } else {
            Delta::new()
        }
    }

    /// Current result bag as `(tuple, multiplicity)` pairs, sorted for
    /// deterministic output.
    pub fn results(&self) -> Vec<(Tuple, i64)> {
        self.net.view(self.sink).results()
    }

    /// Flattened result rows (each tuple repeated by its multiplicity).
    pub fn rows(&self) -> Vec<Tuple> {
        self.net.view(self.sink).rows()
    }

    /// Number of distinct result tuples.
    pub fn distinct_count(&self) -> usize {
        self.net.view(self.sink).distinct_count()
    }

    /// Total row count (with multiplicities).
    pub fn row_count(&self) -> usize {
        self.net.view(self.sink).row_count()
    }

    /// Tuples materialised across the network (memory metric).
    pub fn memory_tuples(&self) -> usize {
        self.net.view(self.sink).memory_tuples()
    }

    /// Number of maintenance rounds executed.
    pub fn maintenance_count(&self) -> u64 {
        self.net.view(self.sink).maintenance_count()
    }

    /// Per-operator statistics of the network (EXPLAIN-ANALYZE-style).
    pub fn network_stats(&self) -> crate::stats::OpStats {
        self.net.stats_of(self.sink)
    }

    /// The underlying single-sink network (inspection/testing).
    pub fn network(&self) -> &DataflowNetwork {
        &self.net
    }
}
