//! The operator tree: one dataflow node per FRA operator.
//!
//! FRA plans are trees (every operator has a single consumer), so the
//! network is represented as a recursive [`Op`] enum; a transaction's
//! change events flow bottom-up in one pass, each stateful node updating
//! its memories and emitting a delta for its parent.

use pgq_algebra::expr::{AggCall, ScalarExpr};
use pgq_algebra::fra::Fra;
use pgq_graph::delta::ChangeEvent;
use pgq_graph::store::PropertyGraph;

use crate::aggregate::AggregateOp;
use crate::basic::{filter_delta, project_delta, unwind_delta};
use crate::delta::Delta;
use crate::distinct::DistinctOp;
use crate::join::JoinOp;
use crate::scan::{EdgeScan, EdgeScanSpec, VertexScan};
use crate::semijoin::SemiJoinOp;
use crate::tc::VarLengthOp;

/// A node of the dataflow network.
#[derive(Clone, Debug)]
pub enum Op {
    /// Constant single empty tuple.
    Unit {
        /// Whether the unit tuple has been emitted yet.
        emitted: bool,
    },
    /// © scan.
    Vertices(VertexScan),
    /// ⇑ scan.
    Edges(EdgeScan),
    /// Hash join.
    Join {
        /// Left child.
        left: Box<Op>,
        /// Right child.
        right: Box<Op>,
        /// Join state.
        join: JoinOp,
    },
    /// Semijoin / antijoin.
    SemiJoin {
        /// Left child.
        left: Box<Op>,
        /// Right (existence) child.
        right: Box<Op>,
        /// Join state.
        join: SemiJoinOp,
    },
    /// ⋈* variable-length join.
    VarLength {
        /// Left child.
        left: Box<Op>,
        /// Traversal state.
        tc: Box<VarLengthOp>,
    },
    /// σ.
    Filter {
        /// Child.
        input: Box<Op>,
        /// Predicate.
        predicate: ScalarExpr,
    },
    /// π.
    Project {
        /// Child.
        input: Box<Op>,
        /// Projection expressions.
        items: Vec<(ScalarExpr, String)>,
    },
    /// δ.
    Distinct {
        /// Child.
        input: Box<Op>,
        /// Support counts.
        state: DistinctOp,
    },
    /// γ.
    Aggregate {
        /// Child.
        input: Box<Op>,
        /// Aggregation state.
        state: AggregateOp,
    },
    /// ω.
    Unwind {
        /// Child.
        input: Box<Op>,
        /// List expression.
        expr: ScalarExpr,
    },
}

impl Op {
    /// Build the network for an FRA plan.
    pub fn build(fra: &Fra) -> Op {
        match fra {
            Fra::Unit => Op::Unit { emitted: false },
            Fra::ScanVertices {
                labels,
                props,
                carry_map,
                ..
            } => Op::Vertices(VertexScan::new(labels.clone(), props.clone(), *carry_map)),
            Fra::ScanEdges {
                types,
                src_labels,
                dst_labels,
                src_props,
                edge_props,
                dst_props,
                dir,
                carry_maps,
                ..
            } => Op::Edges(EdgeScan::new(EdgeScanSpec {
                types: types.clone(),
                src_labels: src_labels.clone(),
                dst_labels: dst_labels.clone(),
                src_props: src_props.clone(),
                edge_props: edge_props.clone(),
                dst_props: dst_props.clone(),
                carry_maps: *carry_maps,
                dir: Some(*dir),
                edge_prop_filters: Vec::new(),
            })),
            Fra::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
            } => Op::Join {
                join: JoinOp::new(left_keys.clone(), right_keys.clone(), right.schema().len()),
                left: Box::new(Op::build(left)),
                right: Box::new(Op::build(right)),
            },
            Fra::SemiJoin {
                left,
                right,
                left_keys,
                right_keys,
                anti,
            } => Op::SemiJoin {
                join: SemiJoinOp::new(left_keys.clone(), right_keys.clone(), *anti),
                left: Box::new(Op::build(left)),
                right: Box::new(Op::build(right)),
            },
            Fra::VarLengthJoin {
                left,
                src_col,
                spec,
                ..
            } => Op::VarLength {
                tc: Box::new(VarLengthOp::new(left.schema().len(), *src_col, spec)),
                left: Box::new(Op::build(left)),
            },
            Fra::Filter { input, predicate } => Op::Filter {
                input: Box::new(Op::build(input)),
                predicate: predicate.clone(),
            },
            Fra::Project { input, items } => Op::Project {
                input: Box::new(Op::build(input)),
                items: items.clone(),
            },
            Fra::Distinct { input } => Op::Distinct {
                input: Box::new(Op::build(input)),
                state: DistinctOp::new(),
            },
            Fra::Aggregate { input, group, aggs } => Op::Aggregate {
                input: Box::new(Op::build(input)),
                state: AggregateOp::new(
                    group.iter().map(|(e, _)| e.clone()).collect(),
                    aggs.iter()
                        .map(|(c, _)| c.clone())
                        .collect::<Vec<AggCall>>(),
                ),
            },
            Fra::Unwind { input, expr, .. } => Op::Unwind {
                input: Box::new(Op::build(input)),
                expr: expr.clone(),
            },
        }
    }

    /// Initial (from-scratch) evaluation, populating all memories.
    pub fn initial(&mut self, g: &PropertyGraph) -> Delta {
        match self {
            Op::Unit { emitted } => {
                *emitted = true;
                [(pgq_common::tuple::Tuple::unit(), 1)]
                    .into_iter()
                    .collect()
            }
            Op::Vertices(scan) => scan.initial(g),
            Op::Edges(scan) => scan.initial(g),
            Op::Join { left, right, join } => {
                let dl = left.initial(g);
                let dr = right.initial(g);
                join.on_deltas(dl, dr)
            }
            Op::SemiJoin { left, right, join } => {
                let dl = left.initial(g);
                let dr = right.initial(g);
                join.on_deltas(dl, dr)
            }
            Op::VarLength { left, tc } => {
                let dl = left.initial(g);
                tc.initial(g, dl)
            }
            Op::Filter { input, predicate } => filter_delta(predicate, input.initial(g)),
            Op::Project { input, items } => project_delta(items, input.initial(g)),
            Op::Distinct { input, state } => state.on_delta(input.initial(g)),
            Op::Aggregate { input, state } => state.on_delta(input.initial(g)),
            Op::Unwind { input, expr } => unwind_delta(expr, input.initial(g)),
        }
    }

    /// Propagate one committed transaction.
    pub fn on_events(&mut self, g: &PropertyGraph, events: &[ChangeEvent]) -> Delta {
        match self {
            Op::Unit { .. } => Delta::new(),
            Op::Vertices(scan) => scan.on_events(g, events),
            Op::Edges(scan) => scan.on_events(g, events),
            Op::Join { left, right, join } => {
                let dl = left.on_events(g, events);
                let dr = right.on_events(g, events);
                if dl.is_empty() && dr.is_empty() {
                    Delta::new()
                } else {
                    join.on_deltas(dl, dr)
                }
            }
            Op::SemiJoin { left, right, join } => {
                let dl = left.on_events(g, events);
                let dr = right.on_events(g, events);
                if dl.is_empty() && dr.is_empty() {
                    Delta::new()
                } else {
                    join.on_deltas(dl, dr)
                }
            }
            Op::VarLength { left, tc } => {
                let dl = left.on_events(g, events);
                tc.on_events(g, events, dl)
            }
            Op::Filter { input, predicate } => filter_delta(predicate, input.on_events(g, events)),
            Op::Project { input, items } => project_delta(items, input.on_events(g, events)),
            Op::Distinct { input, state } => state.on_delta(input.on_events(g, events)),
            Op::Aggregate { input, state } => state.on_delta(input.on_events(g, events)),
            Op::Unwind { input, expr } => unwind_delta(expr, input.on_events(g, events)),
        }
    }

    /// Total tuples materialised across all memories (experiment E9's
    /// memory metric).
    pub fn memory_tuples(&self) -> usize {
        match self {
            Op::Unit { .. } => 0,
            Op::Vertices(s) => s.memory_tuples(),
            Op::Edges(s) => s.memory_tuples(),
            Op::Join { left, right, join } => {
                join.memory_tuples() + left.memory_tuples() + right.memory_tuples()
            }
            Op::SemiJoin { left, right, join } => {
                join.memory_tuples() + left.memory_tuples() + right.memory_tuples()
            }
            Op::VarLength { left, tc } => tc.memory_tuples() + left.memory_tuples(),
            Op::Filter { input, .. } | Op::Project { input, .. } | Op::Unwind { input, .. } => {
                input.memory_tuples()
            }
            Op::Distinct { input, state } => state.memory_tuples() + input.memory_tuples(),
            Op::Aggregate { input, state } => state.memory_tuples() + input.memory_tuples(),
        }
    }
}
