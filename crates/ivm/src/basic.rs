//! Stateless operators: filter, project, unwind.
//!
//! Because FRA expressions are pure functions of their input tuple (the
//! payoff of the paper's schema inference), these operators keep **no
//! state**: a delta in is mapped to a delta out, with multiplicities
//! untouched (filter/project) or fanned out (unwind).

use pgq_algebra::expr::ScalarExpr;
use pgq_common::tuple::Tuple;
use pgq_common::value::Value;

use crate::delta::Delta;

/// Apply σ to a delta (in place — the entry vector is reused).
pub fn filter_delta(predicate: &ScalarExpr, input: Delta) -> Delta {
    let mut entries = input.into_entries();
    entries.retain(|(t, _)| predicate.matches(t));
    Delta::from_entries(entries)
}

/// Apply σ to a borrowed delta, appending passing rows to `out` (tuple
/// clones are refcount bumps). The network's pooled-buffer variant of
/// [`filter_delta`].
pub fn filter_into(predicate: &ScalarExpr, input: &Delta, out: &mut Delta) {
    for (t, m) in input.iter() {
        if predicate.matches(t) {
            out.push(t.clone(), *m);
        }
    }
}

/// Apply π (generalised projection) to a delta. Expression errors produce
/// `null` in the affected column, mirroring Cypher's lenient runtime.
/// Rows are rewritten in place through one reused scratch buffer.
pub fn project_delta(items: &[(ScalarExpr, String)], input: Delta) -> Delta {
    let mut entries = input.into_entries();
    let mut buf: Vec<Value> = Vec::with_capacity(items.len());
    for (t, _) in entries.iter_mut() {
        buf.clear();
        buf.extend(items.iter().map(|(e, _)| e.eval(t).unwrap_or(Value::Null)));
        *t = Tuple::from_slice(&buf);
    }
    Delta::from_entries(entries)
}

/// Apply π to a borrowed delta, appending rewritten rows to `out`;
/// `scratch` is the caller-owned assembly buffer (the network keeps one
/// per Project node so steady-state maintenance allocates nothing here
/// beyond the output tuples themselves).
pub fn project_into(
    items: &[(ScalarExpr, String)],
    input: &Delta,
    scratch: &mut Vec<Value>,
    out: &mut Delta,
) {
    for (t, m) in input.iter() {
        scratch.clear();
        scratch.extend(items.iter().map(|(e, _)| e.eval(t).unwrap_or(Value::Null)));
        out.push(Tuple::from_slice(scratch), *m);
    }
}

/// Apply ω (unwind) to a delta: one output tuple per list element; `null`
/// and non-list values produce no rows (openCypher `UNWIND null` yields
/// nothing). Unwinding a path yields its vertices then edges? No — paths
/// must be unwound via `nodes()`/`relationships()`, matching the paper's
/// "paths lose their ordering guarantee only when unnested atomically".
pub fn unwind_delta(expr: &ScalarExpr, input: Delta) -> Delta {
    let mut out = Delta::new();
    unwind_into(expr, &input, &mut out);
    out
}

/// Apply ω to a borrowed delta, appending fanned-out rows to `out`.
pub fn unwind_into(expr: &ScalarExpr, input: &Delta, out: &mut Delta) {
    for (t, m) in input.iter() {
        if let Ok(Value::List(items)) = expr.eval(t) {
            for item in items.iter() {
                out.push(t.push(item.clone()), *m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_parser::ast::BinOp;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    fn d(entries: &[(&[i64], i64)]) -> Delta {
        entries.iter().map(|(v, m)| (t(v), *m)).collect()
    }

    #[test]
    fn filter_keeps_true_only() {
        let pred = ScalarExpr::Binary(
            BinOp::Gt,
            Box::new(ScalarExpr::col(0)),
            Box::new(ScalarExpr::lit(5)),
        );
        let out = filter_delta(&pred, d(&[(&[3], 1), (&[7], 1), (&[9], -1)]));
        assert_eq!(
            out.consolidate().into_entries(),
            vec![(t(&[7]), 1), (t(&[9]), -1)]
        );
    }

    #[test]
    fn project_applies_expressions() {
        let items = vec![(
            ScalarExpr::Binary(
                BinOp::Add,
                Box::new(ScalarExpr::col(0)),
                Box::new(ScalarExpr::lit(1)),
            ),
            "x".to_string(),
        )];
        let out = project_delta(&items, d(&[(&[1], 2)]));
        assert_eq!(out.consolidate().into_entries(), vec![(t(&[2]), 2)]);
    }

    #[test]
    fn project_error_yields_null() {
        // Negating a string errors → column becomes null, row survives.
        let items = vec![(
            ScalarExpr::Unary(
                pgq_parser::ast::UnOp::Neg,
                Box::new(ScalarExpr::lit("oops")),
            ),
            "x".to_string(),
        )];
        let out = project_delta(&items, d(&[(&[1], 1)]));
        let entries = out.consolidate().into_entries();
        assert_eq!(entries[0].0.get(0), &Value::Null);
    }

    #[test]
    fn unwind_fans_out_and_preserves_sign() {
        let expr = ScalarExpr::List(vec![ScalarExpr::lit(10), ScalarExpr::lit(20)]);
        let out = unwind_delta(&expr, d(&[(&[1], -2)]));
        let entries = out.consolidate().into_entries();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|(_, m)| *m == -2));
    }

    #[test]
    fn unwind_of_null_and_scalar_is_empty() {
        let out = unwind_delta(&ScalarExpr::Lit(Value::Null), d(&[(&[1], 1)]));
        assert!(out.is_empty());
        let out = unwind_delta(&ScalarExpr::lit(5), d(&[(&[1], 1)]));
        assert!(out.is_empty());
    }
}
