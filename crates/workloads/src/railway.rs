//! Train-Benchmark-inspired railway validation workload.
//!
//! **Substitution note** (see DESIGN.md): the paper motivates IVM with
//! continuous well-formedness validation and cites the Train Benchmark
//! \[30\], whose generator/faults we re-create synthetically. One deliberate
//! deviation: the original benchmark's constraint queries use *negative*
//! conditions (NEG/antijoin), but the paper's maintainable fragment has no
//! OPTIONAL MATCH / NOT EXISTS (explicitly listed as future work), so we
//! use the benchmark's *positive* queries (PosLength, SwitchSet,
//! ConnectedSegments) plus a positive RouteSensor variant that finds
//! consistent route→switch→sensor chains; fault injection makes view
//! rows appear/disappear just as repairs do in the original benchmark.
//!
//! Schema (vertices): `Route`, `Semaphore`, `SwitchPosition`, `Switch`,
//! `Sensor`, `Segment`. Edges: `entry` (Route→Semaphore), `follows`
//! (Route→SwitchPosition), `target` (SwitchPosition→Switch), `monitoredBy`
//! (Switch/Segment→Sensor), `requires` (Route→Sensor), `connectsTo`
//! (Segment→Segment).

use pgq_common::ids::VertexId;
use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

/// Scale parameters (the Train Benchmark scales by route count).
#[derive(Clone, Copy, Debug)]
pub struct RailwayParams {
    /// Number of routes.
    pub routes: usize,
    /// Switch positions per route.
    pub switches_per_route: usize,
    /// Segments per sensor region.
    pub segments_per_sensor: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RailwayParams {
    fn default() -> Self {
        RailwayParams {
            routes: 20,
            switches_per_route: 5,
            segments_per_sensor: 4,
            seed: 7,
        }
    }
}

impl RailwayParams {
    /// Size-2^k constructor matching the Train Benchmark's doubling
    /// scale.
    pub fn size(k: u32, seed: u64) -> RailwayParams {
        RailwayParams {
            routes: 1usize << k,
            switches_per_route: 5,
            segments_per_sensor: 4,
            seed,
        }
    }
}

/// Generated railway model plus handles for the fault stream.
pub struct Railway {
    /// The graph.
    pub graph: PropertyGraph,
    /// All routes.
    pub routes: Vec<VertexId>,
    /// All switches.
    pub switches: Vec<VertexId>,
    /// All switch positions.
    pub switch_positions: Vec<VertexId>,
    /// All segments.
    pub segments: Vec<VertexId>,
    /// All semaphores.
    pub semaphores: Vec<VertexId>,
    rng: SmallRng,
}

/// Generate a railway model.
pub fn generate_railway(params: RailwayParams) -> Railway {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut g = PropertyGraph::new();
    let mut routes = Vec::new();
    let mut switches = Vec::new();
    let mut switch_positions = Vec::new();
    let mut segments = Vec::new();
    let mut semaphores = Vec::new();

    for r in 0..params.routes {
        let (route, _) = g.add_vertex(
            [s("Route")],
            Properties::from_iter([("id", Value::Int(r as i64))]),
        );
        routes.push(route);
        let (sem, _) = g.add_vertex(
            [s("Semaphore")],
            Properties::from_iter([(
                "signal",
                Value::str(if rng.random_bool(0.5) { "GO" } else { "STOP" }),
            )]),
        );
        semaphores.push(sem);
        g.add_edge(route, sem, s("entry"), Properties::new())
            .unwrap();

        for _ in 0..params.switches_per_route {
            let position = if rng.random_bool(0.5) {
                "LEFT"
            } else {
                "RIGHT"
            };
            let (swp, _) = g.add_vertex(
                [s("SwitchPosition")],
                Properties::from_iter([("position", Value::str(position))]),
            );
            switch_positions.push(swp);
            g.add_edge(route, swp, s("follows"), Properties::new())
                .unwrap();
            let (sw, _) = g.add_vertex(
                [s("Switch")],
                Properties::from_iter([(
                    "currentPosition",
                    Value::str(if rng.random_bool(0.8) {
                        position
                    } else {
                        "FAILURE"
                    }),
                )]),
            );
            switches.push(sw);
            g.add_edge(swp, sw, s("target"), Properties::new()).unwrap();
            // Sensor monitoring the switch; the route requires it
            // (the consistent configuration RouteSensor checks for).
            let (sensor, _) = g.add_vertex([s("Sensor")], Properties::new());
            g.add_edge(sw, sensor, s("monitoredBy"), Properties::new())
                .unwrap();
            if rng.random_bool(0.9) {
                g.add_edge(route, sensor, s("requires"), Properties::new())
                    .unwrap();
            }
            // Segment chain under this sensor.
            let mut prev: Option<VertexId> = None;
            for _ in 0..params.segments_per_sensor {
                let (seg, _) = g.add_vertex(
                    [s("Segment")],
                    Properties::from_iter([("length", Value::Int(rng.random_range(1..1000)))]),
                );
                g.add_edge(seg, sensor, s("monitoredBy"), Properties::new())
                    .unwrap();
                if let Some(p) = prev {
                    g.add_edge(p, seg, s("connectsTo"), Properties::new())
                        .unwrap();
                }
                segments.push(seg);
                prev = Some(seg);
            }
        }
    }
    Railway {
        graph: g,
        routes,
        switches,
        switch_positions,
        segments,
        semaphores,
        rng,
    }
}

/// Kinds of injected faults / repairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Set a segment's length to a non-positive value (PosLength fault).
    BreakSegmentLength,
    /// Repair a segment's length.
    RepairSegmentLength,
    /// Misalign a switch's current position (SwitchSet fault).
    MisalignSwitch,
    /// Align a switch with one of its positions.
    AlignSwitch,
    /// Flip a semaphore signal.
    FlipSemaphore,
    /// Disconnect a random connectsTo edge.
    DisconnectSegment,
}

impl Railway {
    /// Build a seeded fault/repair stream of `n` single-op transactions.
    pub fn fault_stream(&mut self, n: usize) -> Vec<Transaction> {
        let mut txs = Vec::with_capacity(n);
        let mut shadow = self.graph.clone();
        for i in 0..n {
            let mut tx = Transaction::new();
            match i % 7 {
                0 => {
                    let seg = self.segments[self.rng.random_range(0..self.segments.len())];
                    tx.set_vertex_prop(
                        seg,
                        s("length"),
                        Value::Int(-(self.rng.random_range(0..5) as i64)),
                    );
                }
                1 => {
                    let seg = self.segments[self.rng.random_range(0..self.segments.len())];
                    tx.set_vertex_prop(
                        seg,
                        s("length"),
                        Value::Int(self.rng.random_range(1..1000)),
                    );
                }
                2 => {
                    let sw = self.switches[self.rng.random_range(0..self.switches.len())];
                    tx.set_vertex_prop(sw, s("currentPosition"), Value::str("FAILURE"));
                }
                3 => {
                    let sw = self.switches[self.rng.random_range(0..self.switches.len())];
                    let pos = if self.rng.random_bool(0.5) {
                        "LEFT"
                    } else {
                        "RIGHT"
                    };
                    tx.set_vertex_prop(sw, s("currentPosition"), Value::str(pos));
                }
                4 => {
                    let sem = self.semaphores[self.rng.random_range(0..self.semaphores.len())];
                    let sig = if self.rng.random_bool(0.5) {
                        "GO"
                    } else {
                        "STOP"
                    };
                    tx.set_vertex_prop(sem, s("signal"), Value::str(sig));
                }
                5 => {
                    // Drop or restore a `requires` edge (RouteSensor
                    // violations appear/disappear).
                    let candidates: Vec<_> = shadow.edges_with_type(s("requires")).to_vec();
                    if !candidates.is_empty() && self.rng.random_bool(0.6) {
                        let e = candidates[self.rng.random_range(0..candidates.len())];
                        tx.delete_edge(e);
                    } else {
                        // Wire a random route to a sensor of one of its
                        // switches (repair-flavoured insertion).
                        let r = self.routes[self.rng.random_range(0..self.routes.len())];
                        let sw = self.switches[self.rng.random_range(0..self.switches.len())];
                        if let Some(&mon) = shadow
                            .out_edges(sw)
                            .iter()
                            .find(|&&e| shadow.edge(e).is_some_and(|d| d.ty == s("monitoredBy")))
                        {
                            let sen = shadow.edge(mon).expect("listed").dst;
                            tx.create_edge(r, sen, s("requires"), Properties::new());
                        } else {
                            let seg = self.segments[self.rng.random_range(0..self.segments.len())];
                            tx.set_vertex_prop(
                                seg,
                                s("length"),
                                Value::Int(self.rng.random_range(1..1000)),
                            );
                        }
                    }
                }
                _ => {
                    // Disconnect a random connectsTo edge if any remain.
                    let candidates: Vec<_> = shadow.edges_with_type(s("connectsTo")).to_vec();
                    if let Some(&e) =
                        candidates.get(self.rng.random_range(0..candidates.len().max(1)))
                    {
                        tx.delete_edge(e);
                    } else {
                        let seg = self.segments[self.rng.random_range(0..self.segments.len())];
                        tx.set_vertex_prop(
                            seg,
                            s("length"),
                            Value::Int(self.rng.random_range(1..1000)),
                        );
                    }
                }
            }
            shadow.apply(&tx).expect("fault stream applies");
            txs.push(tx);
        }
        txs
    }
}

/// The Train-Benchmark-style validation queries (positive variants — see
/// the substitution note in the module docs).
pub mod queries {
    /// PosLength: segments with non-positive length (the original
    /// benchmark's filter query, verbatim semantics).
    pub const POS_LENGTH: &str = "MATCH (seg:Segment) WHERE seg.length <= 0 RETURN seg, seg.length";
    /// SwitchSet: routes whose entry semaphore shows GO but whose switch
    /// stands in a different position than the route follows.
    pub const SWITCH_SET: &str = "MATCH (r:Route)-[:entry]->(sem:Semaphore) \
         MATCH (r)-[:follows]->(swp:SwitchPosition)-[:target]->(sw:Switch) \
         WHERE sem.signal = 'GO' AND sw.currentPosition <> swp.position \
         RETURN r, sw";
    /// RouteSensor (positive variant): consistent
    /// route→switchposition→switch→sensor chains where the route requires
    /// the monitoring sensor.
    pub const ROUTE_SENSOR: &str =
        "MATCH (r:Route)-[:follows]->(swp:SwitchPosition)-[:target]->(sw:Switch)\
         -[:monitoredBy]->(sen:Sensor) MATCH (r)-[:requires]->(sen) \
         RETURN r, swp, sw, sen";
    /// ConnectedSegments: chains of three connected segments monitored by
    /// the same sensor (shortened from the benchmark's six for tractable
    /// join depth).
    pub const CONNECTED_SEGMENTS: &str =
        "MATCH (s1:Segment)-[:connectsTo]->(s2:Segment)-[:connectsTo]->(s3:Segment) \
         MATCH (s1)-[:monitoredBy]->(sen:Sensor) MATCH (s2)-[:monitoredBy]->(sen) \
         MATCH (s3)-[:monitoredBy]->(sen) RETURN s1, s2, s3, sen";
    /// Reachable segments within 1..4 hops (transitive closure over
    /// `connectsTo`).
    pub const SEGMENT_REACH: &str = "MATCH (a:Segment)-[:connectsTo*1..4]->(b:Segment) RETURN a, b";

    // ---- the Train Benchmark's *negative* queries, verbatim semantics —
    // expressible thanks to the antijoin extension (`NOT exists(...)`).

    /// RouteSensor (original negative form): a route follows a switch
    /// position whose switch is monitored by a sensor the route does
    /// *not* require.
    pub const ROUTE_SENSOR_NEG: &str =
        "MATCH (r:Route)-[:follows]->(swp:SwitchPosition)-[:target]->(sw:Switch)\
         -[:monitoredBy]->(sen:Sensor) \
         WHERE NOT exists((r)-[:requires]->(sen)) \
         RETURN r, swp, sw, sen";
    /// SwitchMonitored (original negative form): switches without any
    /// monitoring sensor.
    pub const SWITCH_MONITORED_NEG: &str =
        "MATCH (sw:Switch) WHERE NOT exists((sw)-[:monitoredBy]->(:Sensor)) RETURN sw";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_scaled() {
        let a = generate_railway(RailwayParams::default());
        let b = generate_railway(RailwayParams::default());
        assert_eq!(a.graph.vertex_count(), b.graph.vertex_count());
        let big = generate_railway(RailwayParams {
            routes: 40,
            ..Default::default()
        });
        assert!(big.graph.vertex_count() > a.graph.vertex_count());
    }

    #[test]
    fn fault_stream_applies() {
        let mut rw = generate_railway(RailwayParams::default());
        let stream = rw.fault_stream(30);
        let mut g = rw.graph.clone();
        for tx in &stream {
            g.apply(tx).expect("fault applies");
        }
    }
}
