//! The paper's Section 2 running example, as a reusable fixture.
//!
//! Graph: `Post(1, lang=en) -REPLY-> Comm(2, lang=en) -REPLY-> Comm(3,
//! lang=en)`; the example query
//!
//! ```cypher
//! MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t
//! ```
//!
//! must return exactly the two rows of the paper's result table:
//! `(1, [1,2])` and `(1, [1,2,3])`.

use pgq_common::ids::VertexId;
use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;

/// The example query text (verbatim from the paper).
pub const EXAMPLE_QUERY: &str =
    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t";

/// Handles to the three vertices of the example graph.
#[derive(Clone, Copy, Debug)]
pub struct ExampleIds {
    /// The Post (vertex "1" in the paper).
    pub post: VertexId,
    /// The first Comment ("2").
    pub comm1: VertexId,
    /// The second Comment ("3").
    pub comm2: VertexId,
}

/// Build the running-example graph.
pub fn paper_example_graph() -> (PropertyGraph, ExampleIds) {
    let mut g = PropertyGraph::new();
    let s = Symbol::intern;
    let lang_en = || Properties::from_iter([("lang", Value::str("en"))]);
    let (post, _) = g.add_vertex([s("Post")], lang_en());
    let (comm1, _) = g.add_vertex([s("Comm")], lang_en());
    let (comm2, _) = g.add_vertex([s("Comm")], lang_en());
    g.add_edge(post, comm1, s("REPLY"), Properties::new())
        .expect("vertices exist");
    g.add_edge(comm1, comm2, s("REPLY"), Properties::new())
        .expect("vertices exist");
    (g, ExampleIds { post, comm1, comm2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_shape() {
        let (g, ids) = paper_example_graph();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g
            .vertex(ids.post)
            .unwrap()
            .has_label(Symbol::intern("Post")));
        assert_eq!(
            g.vertex_prop(ids.comm2, Symbol::intern("lang")),
            Value::str("en")
        );
    }
}
