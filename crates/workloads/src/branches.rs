//! Independent branch subgraphs for the parallel-propagation and
//! transaction-batching benchmarks: `B` disjoint reply trees with
//! per-branch labels and edge types, each carrying its own var-length
//! view (see [`branch_query`]). One transaction can dirty many
//! unrelated dataflow regions at once — the widest frontier the
//! parallel pass can hope for — while single-branch transactions stay
//! footprint-disjoint from each other and can be coalesced.
//!
//! The churn knob is the root's `lang` property: flipping it away from
//! `"en"` retracts every path of that branch (the view's `WHERE` ties
//! root and descendant languages together), flipping it back re-asserts
//! them. Property churn keeps every vertex/edge id stable, so update
//! streams need no id tracking.

use pgq_common::ids::VertexId;
use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;

/// One independent branch of a [`BranchForest`].
pub struct Branch {
    /// Root vertex (label `P<i>`).
    pub root: VertexId,
    /// Root label (`P<i>`).
    pub post: Symbol,
    /// Descendant label (`C<i>`).
    pub comm: Symbol,
    /// Edge type (`R<i>`).
    pub reply: Symbol,
    /// Paths the branch's view matches while the root `lang` is `"en"`.
    pub paths: usize,
}

/// A forest of independent reply-tree branches.
pub struct BranchForest {
    /// The combined graph.
    pub graph: PropertyGraph,
    /// Branch metadata, in creation order.
    pub branches: Vec<Branch>,
}

/// The maintained view over branch `i`: every root-to-descendant reply
/// path whose endpoints agree on `lang`.
pub fn branch_query(i: usize) -> String {
    format!("MATCH t = (p:P{i})-[:R{i}*]->(c:C{i}) WHERE p.lang = c.lang RETURN p, t")
}

/// Build `branches` complete reply trees of the given `depth` and
/// `fanout`; every vertex starts with `lang = "en"`.
pub fn branch_forest(branches: usize, depth: usize, fanout: usize) -> BranchForest {
    let mut g = PropertyGraph::new();
    let en = || Properties::from_iter([("lang", Value::str("en"))]);
    let mut out = Vec::with_capacity(branches);
    for i in 0..branches {
        let post = Symbol::intern(&format!("P{i}"));
        let comm = Symbol::intern(&format!("C{i}"));
        let reply = Symbol::intern(&format!("R{i}"));
        let (root, _) = g.add_vertex([post], en());
        let mut frontier = vec![root];
        let mut paths = 0usize;
        for _ in 0..depth {
            let mut next = Vec::new();
            for &parent in &frontier {
                for _ in 0..fanout {
                    let (c, _) = g.add_vertex([comm], en());
                    g.add_edge(parent, c, reply, en()).expect("fresh endpoints");
                    paths += 1;
                    next.push(c);
                }
            }
            frontier = next;
        }
        out.push(Branch {
            root,
            post,
            comm,
            reply,
            paths,
        });
    }
    BranchForest {
        graph: g,
        branches: out,
    }
}

/// Flip the root language of **every** branch in one transaction
/// (`"de"` retracts each branch's paths, `"en"` re-asserts them).
pub fn churn_all(forest: &BranchForest, lang: &str) -> Transaction {
    let mut tx = Transaction::new();
    for b in &forest.branches {
        tx.set_vertex_prop(b.root, Symbol::intern("lang"), Value::str(lang));
    }
    tx
}

/// Flip one branch's root language. Consecutive transactions on
/// different branches have disjoint footprints, so
/// `GraphEngine::apply_batch` coalesces them into one pass.
pub fn churn_one(forest: &BranchForest, branch: usize, lang: &str) -> Transaction {
    let mut tx = Transaction::new();
    let b = &forest.branches[branch];
    tx.set_vertex_prop(b.root, Symbol::intern("lang"), Value::str(lang));
    tx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_shape() {
        let f = branch_forest(3, 2, 2);
        assert_eq!(f.branches.len(), 3);
        // Per branch: 1 root + 2 + 4 descendants, 6 edges, 6 paths.
        assert_eq!(f.graph.vertex_count(), 3 * 7);
        assert_eq!(f.graph.edge_count(), 3 * 6);
        for b in &f.branches {
            assert_eq!(b.paths, 6);
        }
        // Branch labels are pairwise distinct.
        assert_ne!(f.branches[0].post, f.branches[1].post);
        assert_ne!(f.branches[0].reply, f.branches[2].reply);
    }

    #[test]
    fn churn_transactions() {
        let f = branch_forest(4, 1, 1);
        assert_eq!(churn_all(&f, "de").len(), 4);
        assert_eq!(churn_one(&f, 2, "de").len(), 1);
    }
}
