//! Parameterised reply trees for the transitive-closure microbenchmarks
//! (experiment E7): complete trees of configurable depth and fan-out with
//! a `Post` root and `Comm` descendants, all connected by `REPLY` edges.

use pgq_common::ids::{EdgeId, VertexId};
use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

/// A generated reply tree.
pub struct ReplyTree {
    /// The graph.
    pub graph: PropertyGraph,
    /// The root post.
    pub root: VertexId,
    /// Vertices by depth (`levels[0] = [root]`).
    pub levels: Vec<Vec<VertexId>>,
    /// All REPLY edges in creation order.
    pub edges: Vec<EdgeId>,
}

/// Build a complete reply tree of the given `depth` and `fanout`.
/// Every node carries `lang = "en"`, so the running-example query matches
/// every root-to-descendant path.
pub fn reply_tree(depth: usize, fanout: usize) -> ReplyTree {
    let mut g = PropertyGraph::new();
    let lang = || Properties::from_iter([("lang", Value::str("en"))]);
    let (root, _) = g.add_vertex([s("Post")], lang());
    let mut levels = vec![vec![root]];
    let mut edges = Vec::new();
    for _ in 0..depth {
        let mut next = Vec::new();
        for &parent in levels.last().expect("non-empty") {
            for _ in 0..fanout {
                let (c, _) = g.add_vertex([s("Comm")], lang());
                let (e, _) = g.add_edge(parent, c, s("REPLY"), lang()).expect("ok");
                edges.push(e);
                next.push(c);
            }
        }
        levels.push(next);
    }
    ReplyTree {
        graph: g,
        root,
        levels,
        edges,
    }
}

/// Number of root-to-descendant paths in a complete tree — equals the
/// number of non-root vertices (each has a unique path from the root).
pub fn expected_root_paths(depth: usize, fanout: usize) -> usize {
    let mut total = 0usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= fanout;
        total += level;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_shape() {
        let t = reply_tree(3, 2);
        assert_eq!(t.levels.len(), 4);
        assert_eq!(t.levels[3].len(), 8);
        assert_eq!(t.graph.vertex_count(), 15);
        assert_eq!(t.graph.edge_count(), 14);
        assert_eq!(expected_root_paths(3, 2), 14);
    }

    #[test]
    fn degenerate_trees() {
        let t = reply_tree(0, 5);
        assert_eq!(t.graph.vertex_count(), 1);
        assert_eq!(expected_root_paths(0, 5), 0);
        let chain = reply_tree(6, 1);
        assert_eq!(chain.graph.vertex_count(), 7);
        assert_eq!(expected_root_paths(6, 1), 6);
    }
}
