//! Skewed star/hub fan-out workload for the cost-based join-order
//! planner.
//!
//! The LDBC social-network analyses this reproduction follows are built
//! around exactly this skew: a few *hub* accounts with enormous
//! follower fan-in and activity fan-out, and queries whose syntactic
//! join order forces the huge fan-out relation to be joined first. The
//! generator builds
//!
//! * `User` vertices, a handful of which are **hubs**: almost every
//!   `FOLLOWS` edge points at a hub, and each hub `LIKES` a large slice
//!   of the posts;
//! * `Post` vertices with a `cat` property (`'rare'` on a tiny subset),
//!   each `TAGGED` with one `Topic` (the rare posts share the `Topic`
//!   named `'rare'`);
//! * an update stream dominated by `FOLLOWS` churn on the hubs — the
//!   transaction shape where the syntactic plan pays the full hub
//!   fan-out on every delta while a cost-based order touches only the
//!   rare slice.
//!
//! [`queries::RARE_TOPIC_FANS`] (three relations) is the join-ordering
//! showcase; [`queries::RARE_CAT_FANS`] (two relations + filter) is the
//! predicate-placement showcase. Both are written in the worst
//! syntactic order on purpose.

use pgq_common::ids::VertexId;
use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Scale parameters of the hub workload.
#[derive(Clone, Copy, Debug)]
pub struct HubParams {
    /// Total users (including hubs).
    pub users: usize,
    /// Hub users (high fan-in/fan-out).
    pub hubs: usize,
    /// Posts.
    pub posts: usize,
    /// Topics (one of which is `'rare'`).
    pub topics: usize,
    /// FOLLOWS edges per user (≈ 80% of them point at hubs).
    pub follows_per_user: usize,
    /// Posts each hub likes.
    pub hub_likes: usize,
    /// Posts each ordinary user likes.
    pub user_likes: usize,
    /// Posts carrying `cat = 'rare'` / tagged with the rare topic.
    pub rare_posts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HubParams {
    fn default() -> Self {
        HubParams {
            users: 200,
            hubs: 4,
            posts: 600,
            topics: 30,
            follows_per_user: 5,
            hub_likes: 100,
            user_likes: 2,
            rare_posts: 3,
            seed: 42,
        }
    }
}

impl HubParams {
    /// A smaller instance for CI smoke runs.
    pub fn quick() -> HubParams {
        HubParams {
            users: 60,
            hubs: 3,
            posts: 150,
            hub_likes: 40,
            ..HubParams::default()
        }
    }
}

/// The generated graph plus the handles the update stream draws from.
pub struct HubNetwork {
    /// The graph.
    pub graph: PropertyGraph,
    /// All users (hubs first).
    pub users: Vec<VertexId>,
    /// The hub users.
    pub hubs: Vec<VertexId>,
    /// All posts.
    pub posts: Vec<VertexId>,
    rng: SmallRng,
}

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

/// Generate a hub-skewed network.
pub fn generate_hub(params: HubParams) -> HubNetwork {
    assert!(params.hubs >= 1 && params.hubs <= params.users);
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut g = PropertyGraph::new();

    let mut users = Vec::with_capacity(params.users);
    for i in 0..params.users {
        let (v, _) = g.add_vertex(
            [s("User")],
            Properties::from_iter([("name", Value::str(format!("user-{i}")))]),
        );
        users.push(v);
    }
    let hubs: Vec<VertexId> = users[..params.hubs].to_vec();

    let mut topics = Vec::with_capacity(params.topics);
    for i in 0..params.topics {
        let name = if i == 0 {
            "rare".to_string()
        } else {
            format!("topic-{i}")
        };
        let (t, _) = g.add_vertex(
            [s("Topic")],
            Properties::from_iter([("name", Value::str(name))]),
        );
        topics.push(t);
    }

    let mut posts = Vec::with_capacity(params.posts);
    for i in 0..params.posts {
        let rare = i < params.rare_posts;
        let (p, _) = g.add_vertex(
            [s("Post")],
            Properties::from_iter([("cat", Value::str(if rare { "rare" } else { "common" }))]),
        );
        let topic = if rare || params.topics == 1 {
            topics[0]
        } else {
            topics[1 + rng.random_range(0..params.topics - 1)]
        };
        g.add_edge(p, topic, s("TAGGED"), Properties::new())
            .unwrap();
        posts.push(p);
    }

    // FOLLOWS: heavily hub-biased.
    for &u in &users {
        for _ in 0..params.follows_per_user {
            let target = if rng.random_bool(0.8) {
                hubs[rng.random_range(0..hubs.len())]
            } else {
                users[rng.random_range(0..users.len())]
            };
            if target != u {
                g.add_edge(u, target, s("FOLLOWS"), Properties::new())
                    .unwrap();
            }
        }
    }

    // LIKES: hubs like a large slice of the posts, others a couple.
    for (i, &u) in users.iter().enumerate() {
        let n = if i < params.hubs {
            params.hub_likes
        } else {
            params.user_likes
        };
        for _ in 0..n {
            let p = posts[rng.random_range(0..posts.len())];
            g.add_edge(u, p, s("LIKES"), Properties::new()).unwrap();
        }
    }

    HubNetwork {
        graph: g,
        users,
        hubs,
        posts,
        rng,
    }
}

impl HubNetwork {
    /// Build a seeded stream of `n` single-operation transactions:
    /// mostly FOLLOWS churn against the hubs (the skewed delta shape),
    /// plus some LIKES inserts. Applies cleanly in order.
    pub fn update_stream(&mut self, n: usize) -> Vec<Transaction> {
        let mut txs = Vec::with_capacity(n);
        let mut shadow = self.graph.clone();
        let mut deletable = Vec::new();
        for _ in 0..n {
            let mut tx = Transaction::new();
            match self.rng.random_range(0..4u32) {
                // Follow a hub.
                0 | 1 => {
                    let u = self.users[self.rng.random_range(0..self.users.len())];
                    let h = self.hubs[self.rng.random_range(0..self.hubs.len())];
                    if u == h {
                        continue;
                    }
                    tx.create_edge(u, h, s("FOLLOWS"), Properties::new());
                    let events = shadow.apply(&tx).expect("shadow apply");
                    for ev in &events {
                        if let pgq_graph::delta::ChangeEvent::EdgeAdded { id } = ev {
                            deletable.push(*id);
                        }
                    }
                }
                // Unfollow (a stream-created edge).
                2 => match deletable.pop() {
                    Some(e) if shadow.has_edge(e) => {
                        tx.delete_edge(e);
                        shadow.apply(&tx).expect("shadow apply");
                    }
                    _ => {
                        let u = self.users[self.rng.random_range(0..self.users.len())];
                        let p = self.posts[self.rng.random_range(0..self.posts.len())];
                        tx.create_edge(u, p, s("LIKES"), Properties::new());
                        shadow.apply(&tx).expect("shadow apply");
                    }
                },
                // Like a post.
                _ => {
                    let u = self.users[self.rng.random_range(0..self.users.len())];
                    let p = self.posts[self.rng.random_range(0..self.posts.len())];
                    tx.create_edge(u, p, s("LIKES"), Properties::new());
                    shadow.apply(&tx).expect("shadow apply");
                }
            }
            txs.push(tx);
        }
        txs
    }
}

/// The standing queries, written in the worst syntactic order.
pub mod queries {
    /// Three relations: the huge `FOLLOWS` fan-out is written first, so
    /// the syntactic plan materialises `FOLLOWS ⋈ LIKES` (hub followers
    /// × hub likes) before the selective `TAGGED`/`'rare'` filter. The
    /// cost-based planner joins `LIKES` with the rare topics first and
    /// `FOLLOWS` last.
    pub const RARE_TOPIC_FANS: &str = "MATCH (a:User)-[:FOLLOWS]->(b:User) \
         MATCH (b)-[:LIKES]->(p:Post) MATCH (p)-[:TAGGED]->(t:Topic) \
         WHERE t.name = 'rare' RETURN a, p";

    /// Two relations + a selective filter written above the join: the
    /// planner attaches `p.cat = 'rare'` to the `LIKES` side before
    /// joining `FOLLOWS`.
    pub const RARE_CAT_FANS: &str = "MATCH (a:User)-[:FOLLOWS]->(b:User) \
         MATCH (b)-[:LIKES]->(p:Post) WHERE p.cat = 'rare' RETURN a, p";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_skewed() {
        let a = generate_hub(HubParams::default());
        let b = generate_hub(HubParams::default());
        assert_eq!(a.graph.vertex_count(), b.graph.vertex_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        // Hubs dominate FOLLOWS fan-in.
        let hub_in: usize = a.hubs.iter().map(|&h| a.graph.in_edges(h).len()).sum();
        assert!(
            hub_in * 2 > a.graph.edges_with_type(Symbol::intern("FOLLOWS")).len(),
            "hubs should receive most FOLLOWS edges"
        );
    }

    #[test]
    fn stream_applies_cleanly() {
        let mut net = generate_hub(HubParams::quick());
        let stream = net.update_stream(40);
        let mut g = net.graph.clone();
        for tx in &stream {
            g.apply(tx).expect("stream tx applies");
        }
    }
}
