//! Cyclic-motif workload for the worst-case optimal join experiments.
//!
//! Cyclic patterns — triangles, four-cycles — are where binary join
//! trees lose worst-case optimality: a triangle query planned as two
//! binary joins materialises every *wedge* (directed 2-path), which is
//! Θ(Σ deg²) on skewed graphs, while the AGM bound for triangle output
//! is only |E|^{3/2}. This generator builds exactly that adversarial
//! shape:
//!
//! * `N` vertices and a **skew-degree** `E` edge set (endpoint choice is
//!   biased toward low vertex indices, giving a few heavy out-hubs whose
//!   wedge counts dominate);
//! * a tunable fraction of edge insertions that **close a wedge** into a
//!   directed triangle, so triangle density is controlled independently
//!   of edge count;
//! * a seeded churn script of single-edge transactions (inserts with the
//!   same wedge-closing bias, plus deletions of live edges) shared by
//!   the benchmarks, the stress tier, and the differential oracle.
//!
//! [`queries::TRIANGLES`] / [`queries::FOUR_CYCLES`] are the cyclic
//! views the planner fuses into one ⨝ⁿ node; the `_RENAMED` twins
//! differ only in variable names and must hash-cons onto the same node.

use pgq_common::ids::{EdgeId, VertexId};
use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Scale parameters of the motif workload.
#[derive(Clone, Copy, Debug)]
pub struct MotifParams {
    /// Vertices (all labelled `N`).
    pub nodes: usize,
    /// Edge-insertion operations used to seed the graph (wedge-closing
    /// ones add a single closing edge, like every other insertion).
    pub edges: usize,
    /// Probability that an inserted edge closes an existing wedge
    /// `a → b → c` into the directed triangle `a → b → c → a`.
    pub tri_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MotifParams {
    fn default() -> Self {
        MotifParams {
            nodes: 300,
            edges: 900,
            tri_bias: 0.3,
            seed: 7,
        }
    }
}

impl MotifParams {
    /// A smaller instance for CI smoke runs.
    pub fn quick() -> MotifParams {
        MotifParams {
            nodes: 60,
            edges: 150,
            ..MotifParams::default()
        }
    }
}

/// The generated graph plus the handles the churn script draws from.
pub struct MotifGraph {
    /// The graph.
    pub graph: PropertyGraph,
    /// All vertices, in creation order (low indices are the hubs).
    pub nodes: Vec<VertexId>,
    rng: SmallRng,
}

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

/// Low-index-biased vertex pick (cubic skew: index 0 is the heaviest
/// hub), giving the degree skew that blows up wedge counts.
fn skewed(rng: &mut SmallRng, n: usize) -> usize {
    let u = rng.random_range(0..1u64 << 32) as f64 / (1u64 << 32) as f64;
    (((u * u * u) * n as f64) as usize).min(n - 1)
}

/// Pick the endpoints of the next inserted edge on `g`: with
/// probability `tri_bias` the closing edge `c → a` of a uniformly
/// chosen existing wedge `a → b → c`, otherwise a skewed random pair.
fn next_edge(
    rng: &mut SmallRng,
    g: &PropertyGraph,
    nodes: &[VertexId],
    tri_bias: f64,
) -> (VertexId, VertexId) {
    if g.edge_count() > 0 && rng.random_bool(tri_bias) {
        // Uniform existing edge a → b, then a uniform out-edge of b.
        let eids: &[EdgeId] = {
            // Deterministic order: pick via the per-vertex adjacency of
            // a skewed source, which is insertion-ordered.
            let a = nodes[skewed(rng, nodes.len())];
            g.out_edges(a)
        };
        if let Some(&e1) = pick(rng, eids) {
            let b = g.edge(e1).expect("listed edge exists").dst;
            if let Some(&e2) = pick(rng, g.out_edges(b)) {
                let c = g.edge(e2).expect("listed edge exists").dst;
                let a = g.edge(e1).expect("listed edge exists").src;
                if c != a {
                    return (c, a);
                }
            }
        }
    }
    // Skewed random pair, self-loops nudged apart.
    let src = nodes[skewed(rng, nodes.len())];
    let mut di = skewed(rng, nodes.len());
    if nodes[di] == src {
        di = (di + 1) % nodes.len();
    }
    (src, nodes[di])
}

fn pick<'a, T>(rng: &mut SmallRng, xs: &'a [T]) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.random_range(0..xs.len())])
    }
}

/// Generate a skew-degree graph with tunable triangle density.
pub fn generate_motifs(params: MotifParams) -> MotifGraph {
    assert!(params.nodes >= 2, "motif graphs need at least two vertices");
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut g = PropertyGraph::new();

    let mut nodes = Vec::with_capacity(params.nodes);
    for i in 0..params.nodes {
        let (v, _) = g.add_vertex(
            [s("N")],
            Properties::from_iter([("id", Value::Int(i as i64))]),
        );
        nodes.push(v);
    }
    for _ in 0..params.edges {
        let (src, dst) = next_edge(&mut rng, &g, &nodes, params.tri_bias);
        g.add_edge(src, dst, s("E"), Properties::new()).unwrap();
    }

    MotifGraph {
        graph: g,
        nodes,
        rng,
    }
}

impl MotifGraph {
    /// Build a seeded churn script of `n` single-operation transactions:
    /// ~60% edge inserts (with the generator's wedge-closing bias, so
    /// churn keeps creating and destroying triangles) and ~40% deletions
    /// of a uniformly chosen live edge. Applies cleanly in order.
    pub fn churn(&mut self, n: usize, tri_bias: f64) -> Vec<Transaction> {
        let mut txs = Vec::with_capacity(n);
        let mut shadow = self.graph.clone();
        let mut live: Vec<EdgeId> = {
            let mut e: Vec<_> = shadow.edge_ids().collect();
            e.sort_unstable();
            e
        };
        for _ in 0..n {
            let mut tx = Transaction::new();
            let delete = !live.is_empty() && self.rng.random_range(0..10u32) < 4;
            if delete {
                let i = self.rng.random_range(0..live.len());
                let e = live.swap_remove(i);
                tx.delete_edge(e);
            } else {
                let (src, dst) = next_edge(&mut self.rng, &shadow, &self.nodes, tri_bias);
                tx.create_edge(src, dst, s("E"), Properties::new());
            }
            let events = shadow.apply(&tx).expect("churn tx applies");
            for ev in &events {
                if let pgq_graph::delta::ChangeEvent::EdgeAdded { id } = ev {
                    live.push(*id);
                }
            }
            txs.push(tx);
        }
        txs
    }
}

/// Scale parameters of the hub workload (see [`generate_hub_motifs`]).
#[derive(Clone, Copy, Debug)]
pub struct HubMotifParams {
    /// Spokes per hub: the in-hub gets this many in-edges, the out-hub
    /// this many out-edges. The galloping claim is certified at
    /// ≥ 10 000.
    pub spokes: usize,
    /// Closing edges `s → in-hub` from the out-hub's spokes — each one
    /// completes a triangle through the bridge. Kept to ~1% of `spokes`
    /// so the intersection output is far smaller than either input.
    pub closers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HubMotifParams {
    fn default() -> Self {
        HubMotifParams {
            spokes: 10_000,
            closers: 100,
            seed: 11,
        }
    }
}

impl HubMotifParams {
    /// A smaller instance for CI smoke runs.
    pub fn quick() -> HubMotifParams {
        HubMotifParams {
            spokes: 400,
            closers: 8,
            ..HubMotifParams::default()
        }
    }
}

/// The hub graph plus the handles its churn script draws from.
pub struct HubMotifGraph {
    /// The graph.
    pub graph: PropertyGraph,
    /// The in-hub `h1`: every first-wave spoke points at it.
    pub hub_in: VertexId,
    /// The out-hub `h2`: it points at every second-wave spoke.
    pub hub_out: VertexId,
    /// The second-wave spokes (closers are drawn from these).
    spokes_out: Vec<VertexId>,
    /// The current bridge edge `h1 → h2` (re-created by churn flaps).
    bridge: EdgeId,
    /// Live closing edges `s → h1`, with their source spoke.
    closer_edges: Vec<(EdgeId, VertexId)>,
    rng: SmallRng,
}

/// Generate the adversarial two-hub graph for the galloping-intersection
/// benchmarks: maintaining [`queries::TRIANGLES`] under a delta on the
/// bridge edge `h1 → h2` intersects `out(h2)` (`spokes` high-id
/// vertices) with `in(h1)` (`spokes` low-id vertices plus ~1% closers
/// drawn from the high range). Both inputs have hub degree, the output
/// is tiny, and the id ranges are segregated — so a sorted-run cursor
/// gallops over the entire low block in O(log) steps while a hash-trie
/// intersection pays one probe per element of a 10k-entry set.
///
/// Shape (all vertices labelled `N`, all edges typed `E`):
/// * first wave: `spokes` vertices `s1_i` with edges `s1_i → h1`;
/// * second wave: `spokes` vertices `s2_j` with edges `h2 → s2_j`
///   (created after the first wave, so their ids sort strictly higher);
/// * `closers` edges `s2_j → h1` from evenly spaced second-wave spokes —
///   each completes the triangle `h1 → h2 → s2_j → h1`;
/// * the bridge `h1 → h2`.
pub fn generate_hub_motifs(params: HubMotifParams) -> HubMotifGraph {
    assert!(params.spokes >= 2, "hub graphs need at least two spokes");
    assert!(
        params.closers <= params.spokes,
        "cannot close more spokes than exist"
    );
    let mut g = PropertyGraph::new();
    let (h1, _) = g.add_vertex([s("N")], Properties::new());
    let (h2, _) = g.add_vertex([s("N")], Properties::new());
    for _ in 0..params.spokes {
        let (v, _) = g.add_vertex([s("N")], Properties::new());
        g.add_edge(v, h1, s("E"), Properties::new()).unwrap();
    }
    let mut spokes_out = Vec::with_capacity(params.spokes);
    for _ in 0..params.spokes {
        let (v, _) = g.add_vertex([s("N")], Properties::new());
        g.add_edge(h2, v, s("E"), Properties::new()).unwrap();
        spokes_out.push(v);
    }
    let mut closer_edges = Vec::with_capacity(params.closers);
    if let Some(stride) = params.spokes.checked_div(params.closers) {
        for k in 0..params.closers {
            let v = spokes_out[k * stride];
            let (e, _) = g.add_edge(v, h1, s("E"), Properties::new()).unwrap();
            closer_edges.push((e, v));
        }
    }
    let (bridge, _) = g.add_edge(h1, h2, s("E"), Properties::new()).unwrap();
    HubMotifGraph {
        graph: g,
        hub_in: h1,
        hub_out: h2,
        spokes_out,
        bridge,
        closer_edges,
        rng: SmallRng::seed_from_u64(params.seed),
    }
}

impl HubMotifGraph {
    /// Build a seeded churn script of `n` single-operation transactions,
    /// deletion-heavy and centred on the expensive deltas: ~40% bridge
    /// flaps (alternating delete/re-create of `h1 → h2`, each of which
    /// re-runs the full hub-degree intersection) and ~60% closer churn
    /// (delete a live closing edge, or re-create one from a random
    /// second-wave spoke — about half and half, so triangles keep
    /// appearing and disappearing). Applies cleanly in order.
    pub fn churn(&mut self, n: usize) -> Vec<Transaction> {
        let mut txs = Vec::with_capacity(n);
        let mut shadow = self.graph.clone();
        let mut bridge_live = Some(self.bridge);
        for _ in 0..n {
            let mut tx = Transaction::new();
            let flap = self.rng.random_range(0..10u32) < 4;
            if flap {
                match bridge_live.take() {
                    Some(e) => {
                        tx.delete_edge(e);
                    }
                    None => {
                        tx.create_edge(self.hub_in, self.hub_out, s("E"), Properties::new());
                    }
                }
            } else {
                let delete = !self.closer_edges.is_empty() && self.rng.random_bool(0.55);
                if delete {
                    let i = self.rng.random_range(0..self.closer_edges.len());
                    let (e, _) = self.closer_edges.swap_remove(i);
                    tx.delete_edge(e);
                } else {
                    let v = self.spokes_out[self.rng.random_range(0..self.spokes_out.len())];
                    tx.create_edge(v, self.hub_in, s("E"), Properties::new());
                }
            }
            let events = shadow.apply(&tx).expect("hub churn tx applies");
            for ev in &events {
                if let pgq_graph::delta::ChangeEvent::EdgeAdded { id } = ev {
                    let d = shadow.edge(*id).expect("created edge exists");
                    if d.src == self.hub_in {
                        bridge_live = Some(*id);
                    } else {
                        self.closer_edges.push((*id, d.src));
                    }
                }
            }
            txs.push(tx);
        }
        txs
    }
}

/// The standing cyclic-motif queries.
pub mod queries {
    /// Directed triangles — the canonical cyclic pattern. The planner
    /// fuses all three `E` relations (plus the vertex scan) into one
    /// ⨝ⁿ worst-case optimal node.
    pub const TRIANGLES: &str = "MATCH (a:N)-[:E]->(b:N)-[:E]->(c:N)-[:E]->(a) RETURN a, b, c";

    /// [`TRIANGLES`] with every variable renamed: must hash-cons onto
    /// the same ⨝ⁿ node (zero new operators at registration).
    pub const TRIANGLES_RENAMED: &str =
        "MATCH (x:N)-[:E]->(y:N)-[:E]->(z:N)-[:E]->(x) RETURN x, y, z";

    /// Directed four-cycles (the "diamond" motif).
    pub const FOUR_CYCLES: &str =
        "MATCH (a:N)-[:E]->(b:N)-[:E]->(c:N)-[:E]->(d:N)-[:E]->(a) RETURN a, b, c, d";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_skewed() {
        let a = generate_motifs(MotifParams::default());
        let b = generate_motifs(MotifParams::default());
        assert_eq!(a.graph.vertex_count(), b.graph.vertex_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        // Low-index hubs dominate out-degree.
        let hub_out: usize = a.nodes[..a.nodes.len() / 10]
            .iter()
            .map(|&v| a.graph.out_edges(v).len())
            .sum();
        assert!(
            hub_out * 3 > a.graph.edge_count(),
            "first decile should hold well over a third of the out-edges"
        );
    }

    #[test]
    fn tri_bias_raises_triangle_count() {
        let count_triangles = |g: &PropertyGraph| -> usize {
            let mut n = 0;
            for e1 in g.edge_ids() {
                let d1 = g.edge(e1).unwrap();
                for &e2 in g.out_edges(d1.dst) {
                    let d2 = g.edge(e2).unwrap();
                    for &e3 in g.out_edges(d2.dst) {
                        if g.edge(e3).unwrap().dst == d1.src {
                            n += 1;
                        }
                    }
                }
            }
            n
        };
        let dense = generate_motifs(MotifParams {
            tri_bias: 0.5,
            ..MotifParams::default()
        });
        let sparse = generate_motifs(MotifParams {
            tri_bias: 0.0,
            ..MotifParams::default()
        });
        assert!(
            count_triangles(&dense.graph) > 2 * count_triangles(&sparse.graph),
            "wedge-closing bias should multiply the triangle count"
        );
    }

    #[test]
    fn churn_applies_cleanly_and_deletes() {
        let mut net = generate_motifs(MotifParams::quick());
        let script = net.churn(80, 0.3);
        assert!(
            script
                .iter()
                .any(|tx| matches!(tx.ops()[0], pgq_graph::tx::TxOp::DeleteEdge { .. })),
            "churn must include deletions"
        );
        let mut g = net.graph.clone();
        for tx in &script {
            g.apply(tx).expect("churn tx applies");
        }
    }

    #[test]
    fn hub_graph_has_hub_degrees_and_triangles() {
        let params = HubMotifParams::quick();
        let net = generate_hub_motifs(params);
        assert_eq!(
            net.graph.in_edges(net.hub_in).len(),
            params.spokes + params.closers
        );
        assert_eq!(net.graph.out_edges(net.hub_out).len(), params.spokes);
        // Exactly one triangle per closer: h1 → h2 → s2 → h1.
        let mut triangles = 0;
        for &e2 in net.graph.out_edges(net.hub_out) {
            let s2 = net.graph.edge(e2).unwrap().dst;
            for &e3 in net.graph.out_edges(s2) {
                if net.graph.edge(e3).unwrap().dst == net.hub_in {
                    triangles += 1;
                }
            }
        }
        assert_eq!(triangles, params.closers);
    }

    #[test]
    fn hub_churn_applies_cleanly_and_is_deletion_heavy() {
        let mut net = generate_hub_motifs(HubMotifParams::quick());
        let script = net.churn(120);
        let deletes = script
            .iter()
            .filter(|tx| matches!(tx.ops()[0], pgq_graph::tx::TxOp::DeleteEdge { .. }))
            .count();
        assert!(
            deletes * 3 >= script.len(),
            "hub churn should be deletion-heavy, got {deletes}/120 deletions"
        );
        let mut g = net.graph.clone();
        for tx in &script {
            g.apply(tx).expect("hub churn tx applies");
        }
        // Determinism: same params, same script.
        let mut again = generate_hub_motifs(HubMotifParams::quick());
        let script2 = again.churn(120);
        let render = |txs: &[Transaction]| {
            format!("{:?}", txs.iter().map(Transaction::ops).collect::<Vec<_>>())
        };
        assert_eq!(render(&script2), render(&script));
    }
}
