#![warn(missing_docs)]
//! # pgq-workloads
//!
//! Synthetic workload substrate for the experiments:
//!
//! * [`example`] — the paper's Section 2 running example (experiment E1);
//! * [`social`] — an LDBC-SNB-inspired social network with reply trees
//!   and a seeded update stream (experiment E6);
//! * [`railway`] — a Train-Benchmark-inspired railway model with fault
//!   injection/repair streams (experiment E5);
//! * [`trees`] — parameterised reply trees for the transitive-closure
//!   microbenchmarks (experiment E7);
//! * [`hub`] — a star/hub fan-out network with hub-churn streams for
//!   the cost-based join-order planner benchmarks;
//! * [`branches`] — independent reply-tree branches with per-branch
//!   labels/types and views, for the parallel-propagation and
//!   transaction-batching benchmarks;
//! * [`motifs`] — skew-degree graphs with tunable triangle density and
//!   an edge-churn stream, for the worst-case optimal join benchmarks
//!   and the wcoj-vs-binary differential oracle.
//!
//! All generators are deterministic given a seed, so benchmark tables are
//! reproducible run-to-run.

pub mod branches;
pub mod example;
pub mod hub;
pub mod motifs;
pub mod railway;
pub mod social;
pub mod trees;

pub use branches::{branch_forest, branch_query, churn_all, churn_one, Branch, BranchForest};
pub use example::{paper_example_graph, EXAMPLE_QUERY};
pub use hub::{generate_hub, HubParams};
pub use motifs::{generate_motifs, MotifGraph, MotifParams};
pub use railway::{generate_railway, RailwayParams};
pub use social::{generate_social, SocialParams};
