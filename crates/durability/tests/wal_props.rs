//! Property tests for the WAL: random transactions round-trip exactly,
//! and *no* mangled log — truncated anywhere, or with any byte
//! flipped — ever panics the reader. Damage is always reported as a
//! [`WalTail`] verdict over a cleanly decoded prefix.

use pgq_common::ids::{EdgeId, VertexId};
use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_durability::wal;
use pgq_durability::{MemDisk, Vfs, WalTail};
use pgq_graph::props::Properties;
use pgq_graph::tx::{NodeRef, Transaction, TxOp};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<u64>().prop_map(|bits| Value::float(f64::from_bits(bits))),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
        (0..64u64).prop_map(|v| Value::Node(VertexId(v))),
        (0..64u64).prop_map(|e| Value::Rel(EdgeId(e))),
        vec((0..9i64).prop_map(Value::Int), 0..4).prop_map(Value::list),
    ]
}

fn arb_props() -> impl Strategy<Value = Properties> {
    vec(("[a-z]{1,6}", arb_value()), 0..4).prop_map(|pairs| {
        Properties::from_iter(pairs.into_iter().map(|(k, v)| (Symbol::intern(&k), v)))
    })
}

fn arb_node_ref() -> impl Strategy<Value = NodeRef> {
    prop_oneof![
        (0..64u64).prop_map(|v| NodeRef::Existing(VertexId(v))),
        (0..8usize).prop_map(NodeRef::New),
    ]
}

fn arb_op() -> impl Strategy<Value = TxOp> {
    prop_oneof![
        (vec("[A-Z][a-z]{0,5}", 0..3), arb_props()).prop_map(|(labels, props)| {
            TxOp::CreateVertex {
                labels: labels.iter().map(|l| Symbol::intern(l)).collect(),
                props,
            }
        }),
        (arb_node_ref(), arb_node_ref(), "[A-Z]{1,6}", arb_props()).prop_map(
            |(src, dst, ty, props)| TxOp::CreateEdge {
                src,
                dst,
                ty: Symbol::intern(&ty),
                props,
            }
        ),
        (0..64u64, any::<bool>()).prop_map(|(v, detach)| TxOp::DeleteVertex {
            id: VertexId(v),
            detach
        }),
        (0..64u64).prop_map(|e| TxOp::DeleteEdge { id: EdgeId(e) }),
        (arb_node_ref(), "[a-z]{1,6}", arb_value()).prop_map(|(id, key, value)| {
            TxOp::SetVertexProp {
                id,
                key: Symbol::intern(&key),
                value,
            }
        }),
        (0..64u64, "[a-z]{1,6}", arb_value()).prop_map(|(e, key, value)| TxOp::SetEdgeProp {
            id: EdgeId(e),
            key: Symbol::intern(&key),
            value,
        }),
        (arb_node_ref(), "[A-Z][a-z]{0,5}").prop_map(|(id, label)| TxOp::AddLabel {
            id,
            label: Symbol::intern(&label),
        }),
        (arb_node_ref(), "[A-Z][a-z]{0,5}").prop_map(|(id, label)| TxOp::RemoveLabel {
            id,
            label: Symbol::intern(&label),
        }),
    ]
}

fn arb_tx() -> impl Strategy<Value = Transaction> {
    vec(arb_op(), 0..6).prop_map(Transaction::from_ops)
}

/// `Transaction` deliberately has no `PartialEq`; the Debug rendering
/// covers every field and is what the round-trip must preserve.
fn dbg(tx: &Transaction) -> String {
    format!("{tx:?}")
}

/// Byte offset where each appended record starts, plus the total length
/// — record `i` occupies `bounds[i]..bounds[i + 1]`.
fn record_bounds(bytes: &[u8]) -> Vec<usize> {
    let (payloads, tail) = wal::scan(bytes);
    assert!(
        matches!(tail, WalTail::Clean),
        "reference log must be clean"
    );
    let mut bounds = vec![0];
    for p in &payloads {
        bounds.push(bounds.last().unwrap() + 8 + p.len());
    }
    bounds
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Append → load round-trips every transaction exactly, with a
    /// clean tail.
    #[test]
    fn roundtrip_is_exact(txs in vec(arb_tx(), 0..10)) {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        for tx in &txs {
            wal::append_tx(&vfs, 0, tx).unwrap();
        }
        let log = wal::load(&vfs, 0).unwrap();
        let (decoded, tail) = (log.txs, log.tail);
        prop_assert!(matches!(tail, WalTail::Clean), "tail: {tail:?}");
        prop_assert_eq!(decoded.len(), txs.len());
        for (got, want) in decoded.iter().zip(&txs) {
            prop_assert_eq!(dbg(got), dbg(want));
        }
    }

    /// Truncating the log at ANY byte yields exactly the records wholly
    /// before the cut, and never panics. A cut on a record boundary is
    /// indistinguishable from a clean shutdown; a cut inside a record
    /// is a torn tail at that record's start.
    #[test]
    fn truncation_yields_a_prefix(txs in vec(arb_tx(), 1..8), cut in any::<usize>()) {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        for tx in &txs {
            wal::append_tx(&vfs, 0, tx).unwrap();
        }
        let raw = vfs.read(&wal::wal_file(0)).unwrap().unwrap();
        let bounds = record_bounds(&raw);
        let cut = cut % (raw.len() + 1);
        // Records wholly inside `cut` bytes survive; nothing else can.
        let survivors = bounds.iter().skip(1).filter(|b| **b <= cut).count();

        disk.truncate(&wal::wal_file(0), cut);
        let log = wal::load(&vfs, 0).unwrap();
        let (decoded, tail) = (log.txs, log.tail);

        prop_assert_eq!(decoded.len(), survivors, "cut={} bounds={:?}", cut, bounds);
        for (got, want) in decoded.iter().zip(&txs) {
            prop_assert_eq!(dbg(got), dbg(want));
        }
        match tail {
            WalTail::Clean => prop_assert_eq!(bounds[survivors], cut),
            WalTail::Torn { offset } => {
                prop_assert_eq!(offset, bounds[survivors], "torn tail starts at the cut record");
            }
            WalTail::Corrupt { .. } => prop_assert!(false, "truncation can tear, not corrupt"),
        }
    }

    /// Flipping ANY byte never panics the reader; every record wholly
    /// before the damaged one still decodes identically, and the damage
    /// itself never goes unnoticed (the CRC catches any in-record
    /// burst of up to 32 bits, which one byte is).
    #[test]
    fn bit_flips_never_panic(
        txs in vec(arb_tx(), 1..8),
        at in any::<usize>(),
        mask in (0..255u8).prop_map(|m| m + 1),
    ) {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        for tx in &txs {
            wal::append_tx(&vfs, 0, tx).unwrap();
        }
        let raw = vfs.read(&wal::wal_file(0)).unwrap().unwrap();
        let bounds = record_bounds(&raw);
        let at = at % raw.len();
        // Index of the record the flipped byte lives in.
        let damaged = bounds.iter().skip(1).filter(|b| **b <= at).count();

        prop_assert!(disk.corrupt(&wal::wal_file(0), at, mask));
        let log = wal::load(&vfs, 0).unwrap();
        let (decoded, tail) = (log.txs, log.tail);

        prop_assert_eq!(decoded.len(), damaged, "at={} bounds={:?}", at, bounds);
        for (got, want) in decoded.iter().zip(&txs) {
            prop_assert_eq!(dbg(got), dbg(want));
        }
        prop_assert!(
            !matches!(tail, WalTail::Clean),
            "flip at {} (mask {:#x}) went unnoticed", at, mask
        );
    }
}

/// Deterministic edge: a flip in the very first length field makes the
/// whole log unreadable — verdict, not panic, and zero records.
#[test]
fn flip_in_first_header_is_survivable() {
    let disk = MemDisk::new();
    let vfs = disk.vfs();
    let mut tx = Transaction::new();
    tx.create_vertex([Symbol::intern("A")], Properties::new());
    wal::append_tx(&vfs, 0, &tx).unwrap();
    for at in 0..8 {
        for mask in [0x01, 0x80, 0xFF] {
            let d2 = MemDisk::new();
            let v2 = d2.vfs();
            wal::append_tx(&v2, 0, &tx).unwrap();
            assert!(d2.corrupt(&wal::wal_file(0), at, mask));
            let log = wal::load(&v2, 0).unwrap();
            let (decoded, tail) = (log.txs, log.tail);
            assert!(
                decoded.is_empty(),
                "at={at} mask={mask:#x}: damaged first record decoded"
            );
            assert!(
                !matches!(tail, WalTail::Clean),
                "at={at} mask={mask:#x}: damage went unnoticed"
            );
        }
    }
}
