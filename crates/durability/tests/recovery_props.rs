//! Property tests for generation-switching compaction and the
//! fsyncgate loss model.
//!
//! 1. A generation switchover (write `snap.<g+1>`, then delete the old
//!    generation) torn at **every byte** leaves exactly one coherent
//!    recovery target: either the new snapshot landed atomically and
//!    recovery starts there, or it didn't and recovery replays the old
//!    generation in full. The recovered end state is identical either
//!    way, and nothing is quarantined.
//! 2. A failed fsync drops the unsynced tail (the post-fsyncgate loss
//!    window). Whatever the interleaving of appends and syncs, the log
//!    after the failure decodes to **exactly** the records covered by
//!    the last successful sync — uncommitted data never surfaces as
//!    committed, and the tail is clean (the loss window ends on a
//!    record boundary, never inside one).

use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_durability::recovery;
use pgq_durability::snapshot::snap_file;
use pgq_durability::wal::{self, wal_file};
use pgq_durability::{Fault, MemDisk, Snapshot, Vfs, WalTail};
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;
use proptest::collection::vec;
use proptest::prelude::*;

/// A small random vertex-create transaction (enough to make every log
/// byte meaningful; the codec corners are covered in `wal_props.rs`).
fn arb_tx() -> impl Strategy<Value = Transaction> {
    ("[A-Z][a-z]{0,4}", "[a-z]{1,5}", any::<i64>()).prop_map(|(label, key, n)| {
        let mut tx = Transaction::new();
        tx.create_vertex(
            [Symbol::intern(&label)],
            Properties::from_iter([(Symbol::intern(&key), Value::Int(n))]),
        );
        tx
    })
}

fn dbg<T: std::fmt::Debug>(x: &T) -> String {
    format!("{x:?}")
}

/// Graph content identity via the deterministic snapshot dump.
fn identity(g: &PropertyGraph) -> String {
    let snap = Snapshot::capture_graph(g);
    format!("{:?} {:?}", snap.vertices, snap.edges)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Tear the switchover at every byte of its write stream: recovery
    /// always finds exactly one committed-prefix-consistent target,
    /// and the state it reaches is the same on both sides of the
    /// atomicity boundary.
    #[test]
    fn switchover_torn_at_every_byte_recovers_one_generation(txs in vec(arb_tx(), 1..7)) {
        // The pre-switchover world: generation 0, log full of txs.
        let mut shadow = PropertyGraph::new();
        for tx in &txs {
            shadow.apply(tx).unwrap();
        }
        let mut snap = Snapshot::capture_graph(&shadow);
        snap.wal_records = 0;
        let want = identity(&shadow);

        // Measure the switchover's write volume on a scratch disk.
        let scratch = MemDisk::new();
        snap.write(&scratch.vfs(), 1).unwrap();
        let snap_len = scratch.len(&snap_file(1)).unwrap() as u64;

        for cut in 0..=(snap_len + 1) {
            let disk = MemDisk::new();
            let vfs = disk.vfs();
            for tx in &txs {
                wal::append_tx(&vfs, 0, tx).unwrap();
            }
            // The dying switchover: snapshot rename, then old-gen
            // deletion, with the crash fuse at `cut` bytes.
            let doomed = disk.vfs_with_fuse(cut);
            snap.write(&doomed, 1).unwrap();
            let _ = doomed.remove(&wal_file(0));

            let plan = recovery::plan(&disk.vfs()).unwrap();
            prop_assert!(
                plan.report.quarantined.is_empty(),
                "cut={cut}: a torn switchover must never quarantine ({:?})",
                plan.report
            );
            if cut >= snap_len {
                // The rename was atomic and durable: the new
                // generation is the one recovery starts from.
                prop_assert_eq!(plan.report.base_generation, Some(1), "cut={cut}");
                let got = plan.snapshot.as_ref().unwrap();
                prop_assert_eq!(
                    format!("{:?} {:?}", got.vertices, got.edges),
                    want.clone(),
                    "cut={cut}: snapshot state diverged"
                );
                let replayed: usize = plan.replay.iter().map(|(_, l)| l.txs.len()).sum();
                prop_assert_eq!(replayed, 0, "cut={cut}: nothing left to replay");
            } else {
                // The rename never happened: the old generation is
                // complete and recovery replays it in full.
                prop_assert_eq!(plan.report.base_generation, None, "cut={cut}");
                prop_assert_eq!(plan.active_generation, 0, "cut={cut}");
                prop_assert_eq!(plan.replay.len(), 1, "cut={cut}");
                let log = &plan.replay[0].1;
                prop_assert_eq!(log.txs.len(), txs.len(), "cut={cut}");
                for (got, want_tx) in log.txs.iter().zip(&txs) {
                    prop_assert_eq!(dbg(got), dbg(want_tx), "cut={cut}");
                }
            }
        }
    }

    /// Random append/sync interleavings, then a failed fsync: the
    /// surviving log is exactly the last-synced prefix.
    #[test]
    fn fsync_loss_window_never_surfaces_uncommitted_data(
        txs in vec(arb_tx(), 1..10),
        sync_after in vec(any::<bool>(), 1..10),
    ) {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        let mut synced_records = 0usize;
        for (i, tx) in txs.iter().enumerate() {
            wal::append_tx(&vfs, 0, tx).unwrap();
            if *sync_after.get(i).unwrap_or(&false) {
                vfs.sync(&wal_file(0)).unwrap();
                synced_records = i + 1;
            }
        }

        // The fsync that fails AND takes the unsynced tail with it.
        let faulted = disk.vfs_with_fault(disk.ops_attempted(), Fault::FsyncFail);
        prop_assert!(faulted.sync(&wal_file(0)).is_err());

        let log = wal::load(&disk.vfs(), 0).unwrap();
        prop_assert!(
            matches!(log.tail, WalTail::Clean),
            "loss window must end on a record boundary, got {:?}",
            log.tail
        );
        prop_assert_eq!(
            log.txs.len(),
            synced_records,
            "decoded records != last-synced prefix"
        );
        for (got, want) in log.txs.iter().zip(&txs) {
            prop_assert_eq!(dbg(got), dbg(want));
        }
    }
}
