//! Recovery planning over a generation-numbered durability directory.
//!
//! A directory holds `snap.<g>` / `wal.<g>` pairs. Generation `g`'s
//! snapshot anchors the replay of `wal.<g>`; compaction switches to
//! generation `g+1` by atomically writing `snap.<g+1>` (which subsumes
//! all of `wal.<g>`) and only *then* deleting `wal.<g>`. A crash at any
//! byte or operation boundary of that switchover therefore leaves one of
//! three shapes on disk, all recoverable:
//!
//! 1. **Before the rename lands** — `snap.<g+1>` absent (or the old
//!    bytes, for a re-snapshot): recover from `snap.<g>` + `wal.<g>`,
//!    exactly as if the switchover never started.
//! 2. **After the rename, before the delete** — both generations
//!    present: recover from `snap.<g+1>`; `wal.<g>` is stale and is
//!    deleted now.
//! 3. **After the delete** — the steady state of generation `g+1`.
//!
//! The planner generalizes this to any number of interrupted
//! switchovers and to *damaged* files: a snapshot that fails its
//! checksum is **quarantined** (renamed aside, preserved for forensics)
//! and recovery falls back to the newest older snapshot plus a longer
//! replay chain — or a cold start when none survives. A WAL whose tail
//! is torn is trimmed back to its valid prefix; a WAL generation beyond
//! a broken link in the chain cannot be replayed soundly (its base
//! state is unreachable) and is quarantined rather than guessed at.
//! Nothing in this module panics on disk bytes, and every repair action
//! is recorded in a [`RecoveryReport`] the engine exposes to operators.

use crate::error::{DurOp, DurabilityError};
use crate::snapshot::{parse_snap_name, snap_file, Snapshot, SnapshotError};
use crate::vfs::Vfs;
use crate::wal::{self, parse_wal_name, wal_file, WalContents};

/// Suffix appended to files preserved for forensics instead of deleted.
pub const QUARANTINE_SUFFIX: &str = ".quarantined";

/// What recovery found and did to the directory.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Generation of the snapshot recovery started from; `None` means a
    /// cold start (replay of `wal.0` onto an empty graph, or a truly
    /// empty directory).
    pub base_generation: Option<u64>,
    /// Generation whose WAL is active for new appends after recovery.
    pub active_generation: u64,
    /// Files renamed aside with [`QUARANTINE_SUFFIX`] (corrupt
    /// snapshots, unreachable WAL generations).
    pub quarantined: Vec<String>,
    /// Torn/corrupt WAL tails trimmed: `(generation, bytes_dropped)`.
    pub trimmed: Vec<(u64, u64)>,
    /// Superseded files deleted (older generations, temp leftovers).
    pub removed_stale: Vec<String>,
    /// The active WAL's damaged tail could not be rewritten; the engine
    /// must not append to it (it would extend garbage) and opens
    /// degraded instead.
    pub tail_repair_failed: bool,
    /// Human-readable notes on best-effort actions that failed.
    pub notes: Vec<String>,
}

impl RecoveryReport {
    /// Did recovery have to repair, quarantine, or skip anything?
    pub fn is_pristine(&self) -> bool {
        self.quarantined.is_empty()
            && self.trimmed.is_empty()
            && !self.tail_repair_failed
            && self.notes.is_empty()
    }
}

/// A committed-prefix-consistent recovery: the snapshot to restore (if
/// any) and the WAL chain to replay onto it, in order.
pub struct RecoveryPlan {
    /// Base snapshot; `None` is a cold start from an empty graph.
    pub snapshot: Option<Snapshot>,
    /// `(generation, decoded log)` in replay order. The base snapshot's
    /// `wal_records` skip count applies to the **first** entry only
    /// (non-compact mode reuses one generation and counts subsumed
    /// records); later generations replay in full.
    pub replay: Vec<(u64, WalContents)>,
    /// Generation the engine appends to after recovery.
    pub active_generation: u64,
    /// Valid byte length of the active generation's log after tail
    /// repair — the engine's starting `wal_len` mirror.
    pub active_wal_len: u64,
    /// Everything recovery found and did.
    pub report: RecoveryReport,
}

/// Move `name` aside as `<name>.quarantined` (best-effort; failures are
/// noted, never fatal — the in-memory recovery decision already
/// stands). Public so the engine's replay loop can quarantine a log
/// whose records stop applying cleanly mid-chain.
pub fn quarantine_file(vfs: &dyn Vfs, name: &str, report: &mut RecoveryReport) {
    quarantine(vfs, name, report);
}

fn quarantine(vfs: &dyn Vfs, name: &str, report: &mut RecoveryReport) {
    let aside = format!("{name}{QUARANTINE_SUFFIX}");
    let moved = match vfs.read(name) {
        Ok(Some(bytes)) => vfs
            .write_atomic(&aside, &bytes)
            .and_then(|()| vfs.remove(name)),
        Ok(None) => return,
        Err(e) => Err(e),
    };
    match moved {
        Ok(()) => report.quarantined.push(name.to_string()),
        Err(e) => report
            .notes
            .push(format!("failed to quarantine {name}: {e}")),
    }
}

/// Plan recovery for the directory behind `vfs`. Read errors on the
/// directory listing or a WAL file are real I/O failures and surface as
/// typed errors; *corruption* never does — it is quarantined, trimmed,
/// or skipped, and recorded in the report.
pub fn plan(vfs: &dyn Vfs) -> Result<RecoveryPlan, DurabilityError> {
    let names = vfs
        .list()
        .map_err(|e| DurabilityError::io(DurOp::SnapshotLoad, &e))?;
    let mut report = RecoveryReport::default();

    // Sweep temp leftovers from atomic writes that never renamed.
    for name in &names {
        if name.ends_with(".tmp") {
            match vfs.remove(name) {
                Ok(()) => report.removed_stale.push(name.clone()),
                Err(e) => report.notes.push(format!("failed to remove {name}: {e}")),
            }
        }
    }

    let mut snap_gens: Vec<u64> = names.iter().filter_map(|n| parse_snap_name(n)).collect();
    snap_gens.sort_unstable();
    let wal_gens: Vec<u64> = {
        let mut g: Vec<u64> = names.iter().filter_map(|n| parse_wal_name(n)).collect();
        g.sort_unstable();
        g
    };

    // Base: the newest snapshot that actually decodes. Corrupt ones are
    // quarantined and recovery degrades to the previous generation's
    // snapshot (longer replay), or a cold start.
    let mut snapshot = None;
    let mut base_gen = None;
    for &g in snap_gens.iter().rev() {
        match Snapshot::load(vfs, g) {
            Ok(Some(s)) => {
                snapshot = Some(s);
                base_gen = Some(g);
                break;
            }
            Ok(None) => {}
            Err(SnapshotError::Io(e)) => {
                return Err(DurabilityError::io(DurOp::SnapshotLoad, &e));
            }
            Err(verdict) => {
                report
                    .notes
                    .push(format!("snapshot generation {g}: {verdict}"));
                quarantine(vfs, &snap_file(g), &mut report);
            }
        }
    }
    report.base_generation = base_gen;

    // Replay chain: wal.<B> .. wal.<T>, where T is the highest
    // generation present anywhere. The chain is only sound while every
    // link is complete — generation g+1's base state is "all of wal.<g>
    // applied" — so it stops at the first absent or damaged mid-chain
    // log, and logs beyond the break are quarantined (their base state
    // is unreachable).
    let base = base_gen.unwrap_or(0);
    let target = wal_gens
        .iter()
        .copied()
        .chain(snap_gens.iter().copied())
        .max()
        .unwrap_or(0)
        .max(base);

    let mut replay = Vec::new();
    let mut active = base;
    let mut active_wal_len = 0;
    let mut broken = false;
    for g in base..=target {
        if broken {
            quarantine(vfs, &wal_file(g), &mut report);
            continue;
        }
        let log = wal::load(vfs, g).map_err(|e| DurabilityError::io(DurOp::WalLoad, &e))?;
        let absent = vfs
            .read(&wal_file(g))
            .map_err(|e| DurabilityError::io(DurOp::WalLoad, &e))?
            .is_none();
        let complete = log.tail.is_clean() && !absent;
        active = g;
        if !log.tail.is_clean() {
            // Trim the torn/corrupt tail so future appends extend a
            // trustworthy prefix.
            let on_disk = vfs
                .read(&wal_file(g))
                .map_err(|e| DurabilityError::io(DurOp::WalLoad, &e))?
                .map(|b| b.len() as u64)
                .unwrap_or(0);
            let dropped = on_disk.saturating_sub(log.valid_len());
            match wal::repair(vfs, g, log.valid_len()) {
                Ok(()) => report.trimmed.push((g, dropped)),
                Err(e) => {
                    report
                        .notes
                        .push(format!("failed to trim wal generation {g}: {e}"));
                    report.tail_repair_failed = true;
                }
            }
        }
        active_wal_len = log.valid_len();
        replay.push((g, log));
        if !complete && g < target {
            // Later generations were cut from this one's *full* log;
            // an incomplete link makes them unreachable.
            broken = true;
        }
    }
    report.active_generation = active;

    // Everything below the base generation is subsumed by the snapshot.
    for &g in snap_gens.iter().filter(|&&g| g < base) {
        let name = snap_file(g);
        match vfs.remove(&name) {
            Ok(()) => report.removed_stale.push(name),
            Err(e) => report.notes.push(format!("failed to remove {name}: {e}")),
        }
    }
    for &g in wal_gens.iter().filter(|&&g| g < base) {
        let name = wal_file(g);
        match vfs.remove(&name) {
            Ok(()) => report.removed_stale.push(name),
            Err(e) => report.notes.push(format!("failed to remove {name}: {e}")),
        }
    }

    Ok(RecoveryPlan {
        snapshot,
        replay,
        active_generation: active,
        active_wal_len,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemDisk;
    use pgq_common::intern::Symbol;
    use pgq_common::value::Value;
    use pgq_graph::props::Properties;
    use pgq_graph::store::PropertyGraph;
    use pgq_graph::tx::Transaction;

    fn sample_tx(i: i64) -> Transaction {
        let mut tx = Transaction::new();
        tx.create_vertex(
            [Symbol::intern("P")],
            Properties::from_iter([("n", Value::Int(i))]),
        );
        tx
    }

    fn graph_with(n: i64) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for i in 0..n {
            g.apply(&sample_tx(i)).unwrap();
        }
        g
    }

    #[test]
    fn empty_directory_is_a_clean_cold_start() {
        let disk = MemDisk::new();
        let plan = plan(&disk.vfs()).unwrap();
        assert!(plan.snapshot.is_none());
        assert_eq!(plan.active_generation, 0);
        assert_eq!(plan.active_wal_len, 0);
        assert!(plan.report.is_pristine());
    }

    #[test]
    fn genesis_wal_only_replays_from_empty() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        wal::append_tx(&vfs, 0, &sample_tx(1)).unwrap();
        wal::append_tx(&vfs, 0, &sample_tx(2)).unwrap();
        let plan = plan(&vfs).unwrap();
        assert!(plan.snapshot.is_none());
        assert_eq!(plan.replay.len(), 1);
        assert_eq!(plan.replay[0].1.txs.len(), 2);
        assert_eq!(plan.active_generation, 0);
        assert!(plan.report.is_pristine());
    }

    #[test]
    fn steady_state_pair_recovers_snapshot_plus_tail() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        Snapshot::capture_graph(&graph_with(3))
            .write(&vfs, 2)
            .unwrap();
        wal::append_tx(&vfs, 2, &sample_tx(99)).unwrap();
        let plan = plan(&vfs).unwrap();
        assert_eq!(plan.report.base_generation, Some(2));
        assert_eq!(plan.snapshot.as_ref().unwrap().vertices.len(), 3);
        assert_eq!(plan.replay.len(), 1);
        assert_eq!(plan.replay[0].0, 2);
        assert_eq!(plan.replay[0].1.txs.len(), 1);
        assert_eq!(plan.active_generation, 2);
    }

    #[test]
    fn interrupted_switchover_both_generations_present() {
        // Crash after snap.3 landed but before wal.2 was deleted.
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        Snapshot::capture_graph(&graph_with(1))
            .write(&vfs, 2)
            .unwrap();
        wal::append_tx(&vfs, 2, &sample_tx(10)).unwrap();
        Snapshot::capture_graph(&graph_with(2))
            .write(&vfs, 3)
            .unwrap();
        let plan = plan(&vfs).unwrap();
        assert_eq!(plan.report.base_generation, Some(3));
        assert_eq!(plan.snapshot.as_ref().unwrap().vertices.len(), 2);
        // The stale pair is cleaned up now.
        assert!(plan.report.removed_stale.iter().any(|n| n == &wal_file(2)));
        assert!(plan.report.removed_stale.iter().any(|n| n == &snap_file(2)));
        assert_eq!(disk.len(&wal_file(2)), None);
        assert_eq!(plan.active_generation, 3);
    }

    #[test]
    fn corrupt_snapshot_quarantines_and_falls_back_a_generation() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        Snapshot::capture_graph(&graph_with(1))
            .write(&vfs, 2)
            .unwrap();
        wal::append_tx(&vfs, 2, &sample_tx(10)).unwrap();
        Snapshot::capture_graph(&graph_with(2))
            .write(&vfs, 3)
            .unwrap();
        disk.corrupt(&snap_file(3), 20, 0xFF);

        let plan = plan(&vfs).unwrap();
        assert_eq!(plan.report.base_generation, Some(2));
        assert_eq!(plan.snapshot.as_ref().unwrap().vertices.len(), 1);
        // The bad snapshot is preserved aside, not deleted.
        assert!(plan.report.quarantined.contains(&snap_file(3)));
        assert!(disk
            .file_names()
            .contains(&format!("{}{QUARANTINE_SUFFIX}", snap_file(3))));
        // Replay covers wal.2 then (absent) wal.3; active ends at the
        // highest reachable generation.
        assert_eq!(plan.replay[0].0, 2);
        assert_eq!(plan.replay[0].1.txs.len(), 1);
    }

    #[test]
    fn all_snapshots_corrupt_degrades_to_cold_start() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        Snapshot::capture_graph(&graph_with(2))
            .write(&vfs, 1)
            .unwrap();
        disk.corrupt(&snap_file(1), 15, 0xFF);
        let plan = plan(&vfs).unwrap();
        assert!(plan.snapshot.is_none());
        assert_eq!(plan.report.base_generation, None);
        assert!(plan.report.quarantined.contains(&snap_file(1)));
    }

    #[test]
    fn torn_active_tail_is_trimmed() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        wal::append_tx(&vfs, 0, &sample_tx(1)).unwrap();
        let keep = disk.len(&wal_file(0)).unwrap();
        wal::append_tx(&vfs, 0, &sample_tx(2)).unwrap();
        disk.truncate(&wal_file(0), keep + 3);

        let plan = plan(&vfs).unwrap();
        assert_eq!(plan.replay[0].1.txs.len(), 1);
        assert_eq!(plan.active_wal_len, keep as u64);
        assert_eq!(disk.len(&wal_file(0)), Some(keep));
        assert_eq!(plan.report.trimmed, vec![(0, 3)]);
        assert!(!plan.report.tail_repair_failed);
    }

    #[test]
    fn wal_beyond_a_broken_link_is_quarantined_not_replayed() {
        // snap.1 is corrupt, so the base falls back to genesis — but
        // wal.0 is gone (deleted at switchover). wal.1's base state is
        // unreachable; replaying it onto an empty graph would fabricate
        // state, so it must be quarantined.
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        Snapshot::capture_graph(&graph_with(2))
            .write(&vfs, 1)
            .unwrap();
        wal::append_tx(&vfs, 1, &sample_tx(10)).unwrap();
        disk.corrupt(&snap_file(1), 18, 0xFF);

        let plan = plan(&vfs).unwrap();
        assert!(plan.snapshot.is_none());
        // Nothing replayable: wal.0 absent breaks the chain at g=0.
        let replayed: usize = plan.replay.iter().map(|(_, l)| l.txs.len()).sum();
        assert_eq!(replayed, 0);
        assert!(plan.report.quarantined.contains(&wal_file(1)));
        assert_eq!(plan.active_generation, 0);
    }

    #[test]
    fn temp_leftovers_are_swept() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        vfs.append("snap.1.tmp", b"half-written").unwrap();
        wal::append_tx(&vfs, 0, &sample_tx(1)).unwrap();
        let plan = plan(&vfs).unwrap();
        assert!(plan
            .report
            .removed_stale
            .contains(&"snap.1.tmp".to_string()));
        assert!(!disk.file_names().contains(&"snap.1.tmp".to_string()));
    }

    #[test]
    fn planning_is_idempotent() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        Snapshot::capture_graph(&graph_with(1))
            .write(&vfs, 2)
            .unwrap();
        wal::append_tx(&vfs, 2, &sample_tx(10)).unwrap();
        Snapshot::capture_graph(&graph_with(2))
            .write(&vfs, 3)
            .unwrap();
        disk.corrupt(&snap_file(3), 20, 0xFF);

        let first = plan(&vfs).unwrap();
        assert!(!first.report.is_pristine());
        let second = plan(&vfs).unwrap();
        // Second pass finds a directory already repaired: nothing new to
        // quarantine or trim, same base, same replayable transactions.
        assert!(second.report.quarantined.is_empty());
        assert!(second.report.trimmed.is_empty());
        assert_eq!(second.report.base_generation, first.report.base_generation);
        let txs = |p: &RecoveryPlan| -> usize { p.replay.iter().map(|(_, l)| l.txs.len()).sum() };
        assert_eq!(txs(&second), txs(&first));
    }
}
