//! Write-ahead log: one framed record per committed transaction.
//!
//! Record framing, all little-endian:
//!
//! ```text
//! [payload_len: u32][crc32(payload): u32][payload: payload_len bytes]
//! ```
//!
//! The payload is [`crate::codec::encode_tx`]. Appends are the only
//! mutation — the log never rewrites in place, so the only corruption a
//! crash can produce is a **torn tail**: a final record whose frame or
//! payload is shorter than its header promises. Bit rot (or a torn write
//! that happens to look complete) is caught by the checksum. Either way
//! the scan stops **cleanly at the first bad record** and reports how far
//! it got; everything before that point is trusted. Recovery never
//! panics on log bytes.
//!
//! Logs are **generation-numbered**: the file for generation `g` is
//! `wal.<g>` ([`wal_file`]). Compaction switches to generation `g+1` by
//! writing snapshot `snap.<g+1>` and only then deleting `wal.<g>` — see
//! [`crate::recovery`] for how a crash anywhere in that switchover still
//! recovers a committed prefix.

use std::io;

use pgq_graph::tx::Transaction;

use crate::codec::{crc32, decode_tx, encode_tx};
use crate::vfs::Vfs;

/// File name of generation `generation`'s write-ahead log.
pub fn wal_file(generation: u64) -> String {
    format!("wal.{generation}")
}

/// Parse a `wal.<g>` file name back to its generation number.
pub fn parse_wal_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal.")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Why a WAL scan stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WalTail {
    /// The log ended exactly on a record boundary.
    Clean,
    /// The log ended mid-record (classic crash artifact): a frame header
    /// or payload was cut short at byte `offset`.
    Torn {
        /// Byte offset of the incomplete record's frame.
        offset: usize,
    },
    /// A complete-looking record failed its checksum (or decoded to
    /// garbage) at byte `offset`; it and everything after it is ignored.
    Corrupt {
        /// Byte offset of the bad record's frame.
        offset: usize,
    },
}

impl WalTail {
    /// Was the scan clean (no torn or corrupt tail)?
    pub fn is_clean(&self) -> bool {
        matches!(self, WalTail::Clean)
    }
}

/// Frame a payload for appending: length, checksum, bytes.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(8 + payload.len());
    f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    f.extend_from_slice(&crc32(payload).to_le_bytes());
    f.extend_from_slice(payload);
    f
}

/// Append one framed record to generation `generation`'s log. Returns
/// the number of bytes appended (the frame length), so callers can
/// mirror the on-disk length for tail repair.
pub fn append_payload(vfs: &dyn Vfs, generation: u64, payload: &[u8]) -> io::Result<u64> {
    let f = frame(payload);
    vfs.append(&wal_file(generation), &f)?;
    Ok(f.len() as u64)
}

/// Append a committed transaction to generation `generation`'s log.
/// Returns the frame length in bytes.
pub fn append_tx(vfs: &dyn Vfs, generation: u64, tx: &Transaction) -> io::Result<u64> {
    append_payload(vfs, generation, &encode_tx(tx))
}

/// Scan raw log bytes into checksum-verified payload slices, stopping at
/// the first torn or corrupt record.
pub fn scan(bytes: &[u8]) -> (Vec<&[u8]>, WalTail) {
    let mut payloads = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            return (payloads, WalTail::Torn { offset: pos });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let want = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if bytes.len() - pos - 8 < len {
            return (payloads, WalTail::Torn { offset: pos });
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != want {
            return (payloads, WalTail::Corrupt { offset: pos });
        }
        payloads.push(payload);
        pos += 8 + len;
    }
    (payloads, WalTail::Clean)
}

/// Decoded contents of one generation's log.
pub struct WalContents {
    /// Every trustworthy transaction, in commit order.
    pub txs: Vec<Transaction>,
    /// Byte offset just past each record: `ends[i]` is the length of the
    /// valid prefix covering transactions `0..=i`. Used for tail repair
    /// and for failing replay mid-log without losing the good prefix.
    pub ends: Vec<u64>,
    /// Why the scan stopped.
    pub tail: WalTail,
}

impl WalContents {
    /// Length of the valid prefix (everything before the torn/corrupt
    /// tail, or the whole file when clean).
    pub fn valid_len(&self) -> u64 {
        self.ends.last().copied().unwrap_or(0)
    }
}

/// Load and decode every trustworthy transaction in generation
/// `generation`'s log. A record whose checksum passes but whose payload
/// fails to decode is treated like a checksum failure: the scan stops
/// there with [`WalTail::Corrupt`]. An absent log file is an empty,
/// clean log.
pub fn load(vfs: &dyn Vfs, generation: u64) -> io::Result<WalContents> {
    let Some(bytes) = vfs.read(&wal_file(generation))? else {
        return Ok(WalContents {
            txs: Vec::new(),
            ends: Vec::new(),
            tail: WalTail::Clean,
        });
    };
    let (payloads, mut tail) = scan(&bytes);
    let mut txs = Vec::with_capacity(payloads.len());
    let mut ends = Vec::with_capacity(payloads.len());
    let mut offset = 0u64;
    for payload in payloads {
        match decode_tx(payload) {
            Ok(tx) => {
                txs.push(tx);
                offset += 8 + payload.len() as u64;
                ends.push(offset);
            }
            Err(_) => {
                tail = WalTail::Corrupt {
                    offset: offset as usize,
                };
                break;
            }
        }
    }
    Ok(WalContents { txs, ends, tail })
}

/// Rewrite generation `generation`'s log to its first `valid_len` bytes
/// (atomically), discarding a torn or poisoned tail so future appends
/// extend a trustworthy prefix.
pub fn repair(vfs: &dyn Vfs, generation: u64, valid_len: u64) -> io::Result<()> {
    let name = wal_file(generation);
    let bytes = vfs.read(&name)?.unwrap_or_default();
    let keep = (valid_len as usize).min(bytes.len());
    vfs.write_atomic(&name, &bytes[..keep])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemDisk;
    use pgq_common::intern::Symbol;
    use pgq_common::value::Value;
    use pgq_graph::props::Properties;

    fn sample_tx(i: i64) -> Transaction {
        let mut tx = Transaction::new();
        tx.create_vertex(
            [Symbol::intern("Post")],
            Properties::from_iter([("n", Value::Int(i))]),
        );
        tx
    }

    #[test]
    fn wal_names_roundtrip() {
        assert_eq!(wal_file(0), "wal.0");
        assert_eq!(parse_wal_name("wal.0"), Some(0));
        assert_eq!(parse_wal_name("wal.17"), Some(17));
        assert_eq!(parse_wal_name("wal."), None);
        assert_eq!(parse_wal_name("wal.x7"), None);
        assert_eq!(parse_wal_name("snap.3"), None);
        assert_eq!(parse_wal_name("wal.3.tmp"), None);
    }

    #[test]
    fn append_then_load_roundtrips() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        let mut total = 0;
        for i in 0..5 {
            total += append_tx(&vfs, 0, &sample_tx(i)).unwrap();
        }
        assert_eq!(disk.len(&wal_file(0)).unwrap() as u64, total);
        let log = load(&vfs, 0).unwrap();
        assert_eq!(log.tail, WalTail::Clean);
        assert_eq!(log.txs.len(), 5);
        assert_eq!(log.txs[3].len(), 1);
        assert_eq!(log.valid_len(), total);
        assert!(log.ends.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn generations_are_independent_files() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        append_tx(&vfs, 0, &sample_tx(1)).unwrap();
        append_tx(&vfs, 1, &sample_tx(2)).unwrap();
        assert_eq!(load(&vfs, 0).unwrap().txs.len(), 1);
        assert_eq!(load(&vfs, 1).unwrap().txs.len(), 1);
        assert_eq!(load(&vfs, 2).unwrap().txs.len(), 0);
    }

    #[test]
    fn missing_log_is_empty_and_clean() {
        let disk = MemDisk::new();
        let log = load(&disk.vfs(), 0).unwrap();
        assert!(log.txs.is_empty());
        assert_eq!(log.tail, WalTail::Clean);
        assert_eq!(log.valid_len(), 0);
    }

    #[test]
    fn torn_tail_stops_cleanly_at_every_cut() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        append_tx(&vfs, 0, &sample_tx(1)).unwrap();
        let first = disk.len(&wal_file(0)).unwrap();
        append_tx(&vfs, 0, &sample_tx(2)).unwrap();
        let full = disk.len(&wal_file(0)).unwrap();

        for cut in first + 1..full {
            let disk2 = MemDisk::new();
            let bytes = disk.vfs().read(&wal_file(0)).unwrap().unwrap();
            disk2.vfs().append(&wal_file(0), &bytes[..cut]).unwrap();
            let log = load(&disk2.vfs(), 0).unwrap();
            assert_eq!(log.txs.len(), 1, "cut at {cut}");
            assert_eq!(log.tail, WalTail::Torn { offset: first }, "cut at {cut}");
            assert_eq!(log.valid_len(), first as u64, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_in_tail_record_is_quarantined() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        append_tx(&vfs, 0, &sample_tx(1)).unwrap();
        let first = disk.len(&wal_file(0)).unwrap();
        append_tx(&vfs, 0, &sample_tx(2)).unwrap();

        // Flip a payload byte of the second record.
        assert!(disk.corrupt(&wal_file(0), first + 10, 0x40));
        let log = load(&vfs, 0).unwrap();
        assert_eq!(log.txs.len(), 1);
        assert_eq!(log.tail, WalTail::Corrupt { offset: first });
    }

    #[test]
    fn bogus_length_header_reads_as_torn() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        append_tx(&vfs, 0, &sample_tx(1)).unwrap();
        // A frame header promising far more payload than exists.
        vfs.append(&wal_file(0), &[0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4, 9])
            .unwrap();
        let offset = disk.len(&wal_file(0)).unwrap() - 9;
        let log = load(&vfs, 0).unwrap();
        assert_eq!(log.txs.len(), 1);
        assert_eq!(log.tail, WalTail::Torn { offset });
    }

    #[test]
    fn repair_discards_the_torn_tail() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        append_tx(&vfs, 0, &sample_tx(1)).unwrap();
        let first = disk.len(&wal_file(0)).unwrap() as u64;
        append_tx(&vfs, 0, &sample_tx(2)).unwrap();
        disk.truncate(&wal_file(0), first as usize + 5);

        let log = load(&vfs, 0).unwrap();
        assert_eq!(log.valid_len(), first);
        repair(&vfs, 0, log.valid_len()).unwrap();
        assert_eq!(disk.len(&wal_file(0)).unwrap() as u64, first);
        let log = load(&vfs, 0).unwrap();
        assert_eq!(log.tail, WalTail::Clean);
        assert_eq!(log.txs.len(), 1);
        // Appends after repair extend a clean prefix.
        append_tx(&vfs, 0, &sample_tx(3)).unwrap();
        let log = load(&vfs, 0).unwrap();
        assert_eq!(log.tail, WalTail::Clean);
        assert_eq!(log.txs.len(), 2);
    }

    #[test]
    fn empty_transaction_records_are_fine() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        append_tx(&vfs, 0, &Transaction::new()).unwrap();
        let log = load(&vfs, 0).unwrap();
        assert_eq!(log.tail, WalTail::Clean);
        assert_eq!(log.txs.len(), 1);
        assert!(log.txs[0].is_empty());
    }
}
