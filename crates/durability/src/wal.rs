//! Write-ahead log: one framed record per committed transaction.
//!
//! Record framing, all little-endian:
//!
//! ```text
//! [payload_len: u32][crc32(payload): u32][payload: payload_len bytes]
//! ```
//!
//! The payload is [`crate::codec::encode_tx`]. Appends are the only
//! mutation — the log never rewrites in place, so the only corruption a
//! crash can produce is a **torn tail**: a final record whose frame or
//! payload is shorter than its header promises. Bit rot (or a torn write
//! that happens to look complete) is caught by the checksum. Either way
//! the scan stops **cleanly at the first bad record** and reports how far
//! it got; everything before that point is trusted. Recovery never
//! panics on log bytes.

use std::io;

use pgq_graph::tx::Transaction;

use crate::codec::{crc32, decode_tx, encode_tx};
use crate::vfs::Vfs;

/// File name of the write-ahead log inside a durability directory.
pub const WAL_FILE: &str = "wal.log";

/// Why a WAL scan stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WalTail {
    /// The log ended exactly on a record boundary.
    Clean,
    /// The log ended mid-record (classic crash artifact): a frame header
    /// or payload was cut short at byte `offset`.
    Torn {
        /// Byte offset of the incomplete record's frame.
        offset: usize,
    },
    /// A complete-looking record failed its checksum (or decoded to
    /// garbage) at byte `offset`; it and everything after it is ignored.
    Corrupt {
        /// Byte offset of the bad record's frame.
        offset: usize,
    },
}

/// Append one framed record to the log.
pub fn append_payload(vfs: &dyn Vfs, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    vfs.append(WAL_FILE, &frame)
}

/// Append a committed transaction to the log.
pub fn append_tx(vfs: &dyn Vfs, tx: &Transaction) -> io::Result<()> {
    append_payload(vfs, &encode_tx(tx))
}

/// Scan raw log bytes into checksum-verified payload slices, stopping at
/// the first torn or corrupt record.
pub fn scan(bytes: &[u8]) -> (Vec<&[u8]>, WalTail) {
    let mut payloads = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            return (payloads, WalTail::Torn { offset: pos });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let want = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if bytes.len() - pos - 8 < len {
            return (payloads, WalTail::Torn { offset: pos });
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != want {
            return (payloads, WalTail::Corrupt { offset: pos });
        }
        payloads.push(payload);
        pos += 8 + len;
    }
    (payloads, WalTail::Clean)
}

/// Load and decode every trustworthy transaction in the log. A record
/// whose checksum passes but whose payload fails to decode is treated
/// like a checksum failure: the scan stops there with
/// [`WalTail::Corrupt`]. An absent log file is an empty, clean log.
pub fn load(vfs: &dyn Vfs) -> io::Result<(Vec<Transaction>, WalTail)> {
    let Some(bytes) = vfs.read(WAL_FILE)? else {
        return Ok((Vec::new(), WalTail::Clean));
    };
    let (payloads, mut tail) = scan(&bytes);
    let mut txs = Vec::with_capacity(payloads.len());
    let mut offset = 0;
    for payload in payloads {
        match decode_tx(payload) {
            Ok(tx) => {
                txs.push(tx);
                offset += 8 + payload.len();
            }
            Err(_) => {
                tail = WalTail::Corrupt { offset };
                break;
            }
        }
    }
    Ok((txs, tail))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemDisk;
    use pgq_common::intern::Symbol;
    use pgq_common::value::Value;
    use pgq_graph::props::Properties;

    fn sample_tx(i: i64) -> Transaction {
        let mut tx = Transaction::new();
        tx.create_vertex(
            [Symbol::intern("Post")],
            Properties::from_iter([("n", Value::Int(i))]),
        );
        tx
    }

    #[test]
    fn append_then_load_roundtrips() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        for i in 0..5 {
            append_tx(&vfs, &sample_tx(i)).unwrap();
        }
        let (txs, tail) = load(&vfs).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(txs.len(), 5);
        assert_eq!(txs[3].len(), 1);
    }

    #[test]
    fn missing_log_is_empty_and_clean() {
        let disk = MemDisk::new();
        let (txs, tail) = load(&disk.vfs()).unwrap();
        assert!(txs.is_empty());
        assert_eq!(tail, WalTail::Clean);
    }

    #[test]
    fn torn_tail_stops_cleanly_at_every_cut() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        append_tx(&vfs, &sample_tx(1)).unwrap();
        let first = disk.len(WAL_FILE).unwrap();
        append_tx(&vfs, &sample_tx(2)).unwrap();
        let full = disk.len(WAL_FILE).unwrap();

        for cut in first + 1..full {
            let disk2 = MemDisk::new();
            let bytes = disk.vfs().read(WAL_FILE).unwrap().unwrap();
            disk2.vfs().append(WAL_FILE, &bytes[..cut]).unwrap();
            let (txs, tail) = load(&disk2.vfs()).unwrap();
            assert_eq!(txs.len(), 1, "cut at {cut}");
            assert_eq!(tail, WalTail::Torn { offset: first }, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_in_tail_record_is_quarantined() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        append_tx(&vfs, &sample_tx(1)).unwrap();
        let first = disk.len(WAL_FILE).unwrap();
        append_tx(&vfs, &sample_tx(2)).unwrap();

        // Flip a payload byte of the second record.
        assert!(disk.corrupt(WAL_FILE, first + 10, 0x40));
        let (txs, tail) = load(&vfs).unwrap();
        assert_eq!(txs.len(), 1);
        assert_eq!(tail, WalTail::Corrupt { offset: first });
    }

    #[test]
    fn bogus_length_header_reads_as_torn() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        append_tx(&vfs, &sample_tx(1)).unwrap();
        // A frame header promising far more payload than exists.
        vfs.append(WAL_FILE, &[0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4, 9])
            .unwrap();
        let offset = disk.len(WAL_FILE).unwrap() - 9;
        let (txs, tail) = load(&vfs).unwrap();
        assert_eq!(txs.len(), 1);
        assert_eq!(tail, WalTail::Torn { offset });
    }

    #[test]
    fn empty_transaction_records_are_fine() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        append_tx(&vfs, &Transaction::new()).unwrap();
        let (txs, tail) = load(&vfs).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(txs.len(), 1);
        assert!(txs[0].is_empty());
    }
}
