//! Durability for the pgq engine: write-ahead logging, snapshots, and
//! the pieces of crash recovery that live below the engine layer.
//!
//! The design follows the classic WAL + checkpoint split, adapted to an
//! IVM engine whose expensive state is not the *graph* but the *operator
//! network* maintaining the standing views:
//!
//! - [`wal`] appends one checksummed record per committed transaction.
//!   Replaying the log through the normal transaction path reproduces
//!   both the graph and (via delta propagation) every view — the log is
//!   logically complete on its own.
//! - [`snapshot`] bounds replay: it captures the graph dump, the exact
//!   id-allocation watermarks, each standing view's registration
//!   metadata, and every shared operator node's consolidated state bag
//!   keyed by **content-stable plan fingerprint**. Warm recovery
//!   restores operator state from those bags instead of recomputing
//!   joins from scratch, then replays only the WAL tail.
//! - [`recovery`] plans recovery over the generation-numbered
//!   `snap.<g>` / `wal.<g>` directory: it picks the newest readable
//!   snapshot (quarantining corrupt ones and falling back a
//!   generation), trims torn WAL tails, refuses to replay logs beyond a
//!   broken chain link, and reports every repair it made.
//! - [`vfs`] is the fault-injection seam: all I/O goes through a tiny
//!   trait with a real-directory backend and an in-memory backend that
//!   can kill the simulated process at an arbitrary byte boundary (the
//!   write *fuse*) or inject live storage errors — EIO, ENOSPC, short
//!   writes, failed fsyncs with post-failure loss of unsynced bytes,
//!   torn renames — at the N-th operation.
//! - [`error`] classifies every storage failure into a typed
//!   [`DurabilityError`] the engine's degradation policy is built on.
//! - [`codec`] is the hand-rolled binary format underneath both files
//!   (offline-shim rule: no external serialization or checksum crates).
//!
//! What lives *above* this crate: the engine decides when to snapshot
//! and when to switch generations, owns the view table being restored,
//! drives the dataflow network's state dump/restore, and implements the
//! commit-rollback / read-only-degraded contract on top of
//! [`DurabilityError`]. This crate only knows bytes, graphs, and
//! transactions.

pub mod codec;
pub mod error;
pub mod recovery;
pub mod snapshot;
pub mod vfs;
pub mod wal;

pub use codec::CodecError;
pub use error::{DurKind, DurOp, DurabilityError};
pub use recovery::{RecoveryPlan, RecoveryReport, QUARANTINE_SUFFIX};
pub use snapshot::{Snapshot, SnapshotError, SnapshotView, StateBag};
pub use vfs::{Fault, FsyncMode, MemDisk, MemVfs, StdVfs, Vfs};
pub use wal::WalTail;
