//! Durability for the pgq engine: write-ahead logging, snapshots, and
//! the pieces of crash recovery that live below the engine layer.
//!
//! The design follows the classic WAL + checkpoint split, adapted to an
//! IVM engine whose expensive state is not the *graph* but the *operator
//! network* maintaining the standing views:
//!
//! - [`wal`] appends one checksummed record per committed transaction.
//!   Replaying the log through the normal transaction path reproduces
//!   both the graph and (via delta propagation) every view — the log is
//!   logically complete on its own.
//! - [`snapshot`] bounds replay: it captures the graph dump, the exact
//!   id-allocation watermarks, each standing view's registration
//!   metadata, and every shared operator node's consolidated state bag
//!   keyed by **content-stable plan fingerprint**. Warm recovery
//!   restores operator state from those bags instead of recomputing
//!   joins from scratch, then replays only the WAL tail.
//! - [`vfs`] is the fault-injection seam: all I/O goes through a tiny
//!   trait with a real-directory backend and an in-memory backend whose
//!   write *fuse* kills the simulated process at an arbitrary byte
//!   boundary, so crash tests can cover torn tails and half-written
//!   snapshots deterministically.
//! - [`codec`] is the hand-rolled binary format underneath both files
//!   (offline-shim rule: no external serialization or checksum crates).
//!
//! What lives *above* this crate: the engine decides when to snapshot,
//! owns the view table being restored, and drives the dataflow network's
//! state dump/restore. This crate only knows bytes, graphs, and
//! transactions.

pub mod codec;
pub mod snapshot;
pub mod vfs;
pub mod wal;

pub use codec::CodecError;
pub use snapshot::{Snapshot, SnapshotError, SnapshotView, StateBag};
pub use vfs::{FsyncMode, MemDisk, MemVfs, StdVfs, Vfs};
pub use wal::WalTail;
