//! Typed durability errors.
//!
//! Every fallible storage interaction in the durability layer is
//! classified by *what was being attempted* ([`DurOp`]) and *how it
//! failed* ([`DurKind`]). The engine layer builds its failure policy on
//! this type: a failed WAL append fails exactly one commit (rolled back
//! in memory), repeated failures flip the engine into read-only
//! degraded mode, and a corrupt snapshot at recovery is quarantined
//! rather than fatal. `io::Error` is not `Clone`, so the error carries
//! the [`std::io::ErrorKind`] plus a rendered detail string — enough to
//! stay `Clone + PartialEq` like the engine's other error variants.

use std::fmt;
use std::io;

/// The durability operation that failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DurOp {
    /// Appending a committed transaction's record to the active WAL.
    WalAppend,
    /// `fsync` of the active WAL (the group-commit flush point).
    WalSync,
    /// Rewriting the WAL's valid prefix after a failed or torn append.
    WalRepair,
    /// Reading / decoding a WAL file.
    WalLoad,
    /// Atomically writing a snapshot.
    SnapshotWrite,
    /// Reading / decoding a snapshot.
    SnapshotLoad,
    /// Listing or deleting superseded generation files.
    Cleanup,
    /// Replaying the WAL chain at recovery.
    Replay,
    /// Parsing a durability configuration knob (`PGQ_FSYNC`, …).
    Config,
}

impl fmt::Display for DurOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DurOp::WalAppend => "WAL append",
            DurOp::WalSync => "WAL fsync",
            DurOp::WalRepair => "WAL tail repair",
            DurOp::WalLoad => "WAL load",
            DurOp::SnapshotWrite => "snapshot write",
            DurOp::SnapshotLoad => "snapshot load",
            DurOp::Cleanup => "generation cleanup",
            DurOp::Replay => "WAL replay",
            DurOp::Config => "durability configuration",
        };
        f.write_str(s)
    }
}

/// How a durability operation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DurKind {
    /// Generic I/O failure (EIO and friends), by [`io::ErrorKind`].
    Io(io::ErrorKind),
    /// The device is out of space (ENOSPC).
    NoSpace,
    /// An `fsync` failed. Per post-fsyncgate semantics the engine must
    /// assume bytes written since the last *successful* sync are gone.
    SyncFailed,
    /// Stored bytes do not decode (checksum, magic, codec, or a replay
    /// record inconsistent with the state it applies to).
    Corrupt,
    /// A configuration knob could not be parsed.
    BadConfig,
}

/// A classified durability failure: operation, kind, human detail.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DurabilityError {
    /// What was being attempted.
    pub op: DurOp,
    /// How it failed.
    pub kind: DurKind,
    /// Rendered context (underlying error text, file name, …).
    pub detail: String,
}

impl DurabilityError {
    /// Classify an `io::Error` under `op`.
    pub fn io(op: DurOp, e: &io::Error) -> DurabilityError {
        let kind = if is_enospc(e) {
            DurKind::NoSpace
        } else if op == DurOp::WalSync {
            DurKind::SyncFailed
        } else {
            DurKind::Io(e.kind())
        };
        DurabilityError {
            op,
            kind,
            detail: e.to_string(),
        }
    }

    /// A corruption verdict under `op`.
    pub fn corrupt(op: DurOp, detail: impl Into<String>) -> DurabilityError {
        DurabilityError {
            op,
            kind: DurKind::Corrupt,
            detail: detail.into(),
        }
    }

    /// A configuration parse failure.
    pub fn config(detail: impl Into<String>) -> DurabilityError {
        DurabilityError {
            op: DurOp::Config,
            kind: DurKind::BadConfig,
            detail: detail.into(),
        }
    }

    /// Is this an out-of-space failure? (Callers may retry after
    /// freeing disk; other I/O kinds usually need operator attention.)
    pub fn is_no_space(&self) -> bool {
        self.kind == DurKind::NoSpace
    }
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            DurKind::Io(k) => format!("I/O ({k:?})"),
            DurKind::NoSpace => "no space".to_string(),
            DurKind::SyncFailed => "fsync failed".to_string(),
            DurKind::Corrupt => "corrupt".to_string(),
            DurKind::BadConfig => "bad configuration".to_string(),
        };
        write!(f, "{} failed [{kind}]: {}", self.op, self.detail)
    }
}

impl std::error::Error for DurabilityError {}

/// ENOSPC detection: match the raw errno so it works on every stable
/// toolchain, plus the typed kind where the platform maps it.
fn is_enospc(e: &io::Error) -> bool {
    e.raw_os_error() == Some(28) || e.kind() == io::ErrorKind::StorageFull
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enospc_classifies_as_no_space() {
        let e = io::Error::from_raw_os_error(28);
        let d = DurabilityError::io(DurOp::WalAppend, &e);
        assert_eq!(d.kind, DurKind::NoSpace);
        assert!(d.is_no_space());
    }

    #[test]
    fn sync_errors_classify_as_sync_failed() {
        let e = io::Error::other("injected");
        let d = DurabilityError::io(DurOp::WalSync, &e);
        assert_eq!(d.kind, DurKind::SyncFailed);
        assert!(d.to_string().contains("fsync"));
    }

    #[test]
    fn generic_io_keeps_its_kind() {
        let e = io::Error::new(io::ErrorKind::PermissionDenied, "nope");
        let d = DurabilityError::io(DurOp::SnapshotWrite, &e);
        assert_eq!(d.kind, DurKind::Io(io::ErrorKind::PermissionDenied));
    }
}
