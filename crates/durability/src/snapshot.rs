//! Durable snapshots: graph contents plus per-operator network state.
//!
//! Layout (all little-endian, via [`crate::codec`]):
//!
//! ```text
//! [magic "PGQSNAP1": 8 bytes][crc32(body): u32][body]
//! ```
//!
//! The body carries, in order: the number of WAL records the snapshot
//! subsumes (`wal_records` — recovery replays only the log tail after
//! it), the exact id-allocation watermarks (so replayed creates allocate
//! the same ids the original process did), the full vertex/edge dump,
//! per-view registration metadata, and the consolidated state bag of
//! every live operator node keyed by its **content-stable plan
//! fingerprint** (`pgq_algebra`'s fingerprints hash resolved strings, so
//! a different process computes the same keys).
//!
//! Snapshots are written with [`Vfs::write_atomic`] — after a crash the
//! file is either the previous snapshot or the new one, never torn.
//! Correctness never *depends* on the operator states: a fingerprint
//! that fails to match at recovery simply falls back to recomputing that
//! node from its children. The graph dump, by contrast, is
//! load-bearing, which is why a snapshot that fails its checksum loads
//! as a hard [`SnapshotError`] at this layer; [`crate::recovery`] turns
//! that verdict into a quarantine-and-fall-back rather than a fatal
//! error.
//!
//! Snapshots are **generation-numbered**: generation `g`'s snapshot is
//! `snap.<g>` ([`snap_file`]) and anchors the replay of `wal.<g>` and
//! every later generation's log. Generation 0 is genesis — `snap.0`
//! never exists; recovery without any snapshot replays `wal.0` from an
//! empty graph.

use std::fmt;
use std::io;

use pgq_common::ids::{EdgeId, VertexId};
use pgq_common::intern::Symbol;
use pgq_common::tuple::Tuple;
use pgq_graph::props::Properties;
use pgq_graph::store::{GraphError, PropertyGraph};

use crate::codec::{
    crc32, decode_props, decode_tuple, encode_props, encode_symbol, encode_tuple, CodecError,
    Decoder, Encoder,
};
use crate::vfs::Vfs;

/// File name of generation `generation`'s snapshot.
pub fn snap_file(generation: u64) -> String {
    format!("snap.{generation}")
}

/// Parse a `snap.<g>` file name back to its generation number.
pub fn parse_snap_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snap.")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

const MAGIC: &[u8; 8] = b"PGQSNAP1";

/// Why a snapshot failed to load.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The body does not match its checksum.
    BadChecksum,
    /// The body bytes do not decode (version skew or corruption the
    /// checksum happened to miss).
    Codec(CodecError),
    /// The decoded graph dump was internally inconsistent (an edge
    /// referencing a missing endpoint).
    Graph(GraphError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O: {e}"),
            SnapshotError::BadMagic => write!(f, "snapshot has wrong magic"),
            SnapshotError::BadChecksum => write!(f, "snapshot failed checksum"),
            SnapshotError::Codec(e) => write!(f, "snapshot decode: {e}"),
            SnapshotError::Graph(e) => write!(f, "snapshot graph dump: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        SnapshotError::Codec(e)
    }
}

/// Registration metadata for one standing view, enough for the engine to
/// re-register it mode-faithfully (same schema mode, same planner and
/// wcoj toggles) in its original slot. The option fields are small ints
/// the engine maps onto its own enums, keeping this crate independent of
/// the engine layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotView {
    /// Original slot index in the engine's view table (view ids must
    /// survive recovery).
    pub slot: u32,
    /// View name.
    pub name: String,
    /// Original query text.
    pub query: String,
    /// Compile-time schema mode discriminant.
    pub schema_mode: u8,
    /// Compile-time algebraic-rewrite toggle.
    pub optimize: bool,
    /// Was the cost-based planner used?
    pub plan: bool,
    /// Wcoj mode discriminant (disabled / cost-based / forced).
    pub wcoj_mode: u8,
    /// Forced wcoj backend choice, if pinned.
    pub wcoj_sorted: Option<bool>,
}

/// A consolidated operator-state bag: distinct tuples with non-zero
/// signed multiplicities.
pub type StateBag = Vec<(Tuple, i64)>;

/// Everything a snapshot persists.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Number of leading WAL records whose effects this snapshot already
    /// contains; recovery replays only records after these.
    pub wal_records: u64,
    /// Exact vertex-id allocation watermark.
    pub next_vertex: u64,
    /// Exact edge-id allocation watermark.
    pub next_edge: u64,
    /// Vertex dump: id, labels, properties.
    pub vertices: Vec<(VertexId, Vec<Symbol>, Properties)>,
    /// Edge dump: id, src, dst, type, properties.
    pub edges: Vec<(EdgeId, VertexId, VertexId, Symbol, Properties)>,
    /// Standing views to re-register.
    pub views: Vec<SnapshotView>,
    /// Operator state keyed by content-stable plan fingerprint plus a
    /// second, domain-separated check hash — the snapshot's stand-in
    /// for the plan-equality confirmation in-process hash-consing
    /// performs before sharing state.
    pub states: Vec<(u64, u64, StateBag)>,
}

impl Snapshot {
    /// Capture `g`'s contents (dump + watermarks) into a fresh snapshot;
    /// views and operator states are filled in by the engine layer.
    pub fn capture_graph(g: &PropertyGraph) -> Snapshot {
        let (next_vertex, next_edge) = g.id_watermarks();
        let mut vertices: Vec<_> = g
            .vertex_ids()
            .map(|id| {
                let data = g.vertex(id).expect("iterated id exists");
                (id, data.labels.clone(), data.props.clone())
            })
            .collect();
        // Deterministic dump order (iteration order of the id map is
        // hash-dependent); also lets the loader insert edges after both
        // endpoints without a fixpoint.
        vertices.sort_by_key(|(id, _, _)| *id);
        let mut edges: Vec<_> = g
            .edge_ids()
            .map(|id| {
                let data = g.edge(id).expect("iterated id exists");
                (id, data.src, data.dst, data.ty, data.props.clone())
            })
            .collect();
        edges.sort_by_key(|(id, _, _, _, _)| *id);
        Snapshot {
            wal_records: 0,
            next_vertex,
            next_edge,
            vertices,
            edges,
            views: Vec::new(),
            states: Vec::new(),
        }
    }

    /// Rebuild a graph from the dump. Catalog hooks run per insert, so
    /// the recovered cardinality catalog matches a live-built one and
    /// re-planning reproduces the original physical plans (which is what
    /// makes the fingerprint-keyed state restore hit).
    pub fn restore_graph(&self) -> Result<PropertyGraph, SnapshotError> {
        let mut g = PropertyGraph::new();
        for (id, labels, props) in &self.vertices {
            g.load_vertex(*id, labels.iter().copied(), props.clone());
        }
        for (id, src, dst, ty, props) in &self.edges {
            g.load_edge(*id, *src, *dst, *ty, props.clone())
                .map_err(SnapshotError::Graph)?;
        }
        g.set_id_watermarks(self.next_vertex, self.next_edge);
        Ok(g)
    }

    /// Serialize to the on-disk format (magic + checksum + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.wal_records);
        e.u64(self.next_vertex);
        e.u64(self.next_edge);

        e.len(self.vertices.len());
        for (id, labels, props) in &self.vertices {
            e.u64(id.0);
            e.len(labels.len());
            for &l in labels {
                encode_symbol(&mut e, l);
            }
            encode_props(&mut e, props);
        }

        e.len(self.edges.len());
        for (id, src, dst, ty, props) in &self.edges {
            e.u64(id.0);
            e.u64(src.0);
            e.u64(dst.0);
            encode_symbol(&mut e, *ty);
            encode_props(&mut e, props);
        }

        e.len(self.views.len());
        for v in &self.views {
            e.u32(v.slot);
            e.str(&v.name);
            e.str(&v.query);
            e.u8(v.schema_mode);
            e.bool(v.optimize);
            e.bool(v.plan);
            e.u8(v.wcoj_mode);
            e.u8(match v.wcoj_sorted {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            });
        }

        e.len(self.states.len());
        for (fp, check, bag) in &self.states {
            e.u64(*fp);
            e.u64(*check);
            e.len(bag.len());
            for (t, m) in bag {
                encode_tuple(&mut e, t);
                e.i64(*m);
            }
        }

        let body = e.into_bytes();
        let mut out = Vec::with_capacity(12 + body.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode the on-disk format, validating magic and checksum.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < 12 || &bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let want = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let body = &bytes[12..];
        if crc32(body) != want {
            return Err(SnapshotError::BadChecksum);
        }

        let mut d = Decoder::new(body);
        let wal_records = d.u64()?;
        let next_vertex = d.u64()?;
        let next_edge = d.u64()?;

        let nv = d.read_len()?;
        let mut vertices = Vec::with_capacity(nv);
        for _ in 0..nv {
            let id = VertexId(d.u64()?);
            let nl = d.read_len()?;
            let mut labels = Vec::with_capacity(nl);
            for _ in 0..nl {
                labels.push(d.symbol()?);
            }
            vertices.push((id, labels, decode_props(&mut d)?));
        }

        let ne = d.read_len()?;
        let mut edges = Vec::with_capacity(ne);
        for _ in 0..ne {
            let id = EdgeId(d.u64()?);
            let src = VertexId(d.u64()?);
            let dst = VertexId(d.u64()?);
            let ty = d.symbol()?;
            edges.push((id, src, dst, ty, decode_props(&mut d)?));
        }

        let nw = d.read_len()?;
        let mut views = Vec::with_capacity(nw);
        for _ in 0..nw {
            views.push(SnapshotView {
                slot: d.u32()?,
                name: d.str()?,
                query: d.str()?,
                schema_mode: d.u8()?,
                optimize: d.bool()?,
                plan: d.bool()?,
                wcoj_mode: d.u8()?,
                wcoj_sorted: match d.u8()? {
                    0 => None,
                    1 => Some(false),
                    2 => Some(true),
                    t => return Err(SnapshotError::Codec(CodecError::BadTag("wcoj-sorted", t))),
                },
            });
        }

        let ns = d.read_len()?;
        let mut states = Vec::with_capacity(ns);
        for _ in 0..ns {
            let fp = d.u64()?;
            let check = d.u64()?;
            let nb = d.read_len()?;
            let mut bag = Vec::with_capacity(nb);
            for _ in 0..nb {
                let t = decode_tuple(&mut d)?;
                bag.push((t, d.i64()?));
            }
            states.push((fp, check, bag));
        }

        d.finish().map_err(SnapshotError::Codec)?;
        Ok(Snapshot {
            wal_records,
            next_vertex,
            next_edge,
            vertices,
            edges,
            views,
            states,
        })
    }

    /// Atomically persist as generation `generation`'s snapshot.
    pub fn write(&self, vfs: &dyn Vfs, generation: u64) -> io::Result<()> {
        vfs.write_atomic(&snap_file(generation), &self.encode())
    }

    /// Load generation `generation`'s snapshot, if one exists.
    /// Corruption is an error, not a silent empty snapshot: the graph
    /// dump is load-bearing, and the caller ([`crate::recovery`])
    /// decides between quarantine-and-fall-back and reporting.
    pub fn load(vfs: &dyn Vfs, generation: u64) -> Result<Option<Snapshot>, SnapshotError> {
        match vfs.read(&snap_file(generation))? {
            None => Ok(None),
            Some(bytes) => Snapshot::decode(&bytes).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemDisk;
    use pgq_common::value::Value;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn sample_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex(
            [sym("Post")],
            Properties::from_iter([("lang", Value::str("en"))]),
        );
        let (b, _) = g.add_vertex([sym("Comm")], Properties::new());
        g.add_edge(a, b, sym("REPLY"), Properties::new()).unwrap();
        // Burn an id so the watermark outruns max(id)+1.
        let (c, _) = g.add_vertex([sym("Comm")], Properties::new());
        let mut tx = pgq_graph::tx::Transaction::new();
        tx.delete_vertex(c, true);
        g.apply(&tx).unwrap();
        g
    }

    #[test]
    fn graph_capture_restore_roundtrips_including_watermarks() {
        let g = sample_graph();
        let snap = Snapshot::capture_graph(&g);
        let g2 = snap.restore_graph().unwrap();
        assert_eq!(g2.vertex_count(), g.vertex_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        // Watermarks restore exactly, not as max(id)+1.
        assert_eq!(g2.id_watermarks(), g.id_watermarks());
        let snap2 = Snapshot::capture_graph(&g2);
        assert_eq!(
            format!("{:?}", snap.vertices),
            format!("{:?}", snap2.vertices)
        );
        assert_eq!(format!("{:?}", snap.edges), format!("{:?}", snap2.edges));
    }

    #[test]
    fn full_snapshot_roundtrips_through_disk() {
        let mut snap = Snapshot::capture_graph(&sample_graph());
        snap.wal_records = 17;
        snap.views.push(SnapshotView {
            slot: 2,
            name: "v".into(),
            query: "MATCH (n) RETURN n".into(),
            schema_mode: 1,
            optimize: true,
            plan: false,
            wcoj_mode: 2,
            wcoj_sorted: Some(true),
        });
        snap.states.push((
            0xDEAD_BEEF,
            0xFACE_FEED,
            vec![(Tuple::new(vec![Value::Int(1), Value::str("x")]), -3)],
        ));

        let disk = MemDisk::new();
        snap.write(&disk.vfs(), 1).unwrap();
        assert_eq!(disk.file_names(), vec!["snap.1".to_string()]);
        let back = Snapshot::load(&disk.vfs(), 1).unwrap().unwrap();
        assert_eq!(back.wal_records, 17);
        assert_eq!(back.views, snap.views);
        assert_eq!(back.states.len(), 1);
        assert_eq!(back.states[0].0, 0xDEAD_BEEF);
        assert_eq!(back.states[0].1, 0xFACE_FEED);
        assert_eq!(back.states[0].2, snap.states[0].2);
        assert_eq!(back.vertices.len(), snap.vertices.len());
    }

    #[test]
    fn missing_snapshot_is_none() {
        assert!(Snapshot::load(&MemDisk::new().vfs(), 0).unwrap().is_none());
        assert!(Snapshot::load(&MemDisk::new().vfs(), 7).unwrap().is_none());
    }

    #[test]
    fn snap_names_roundtrip() {
        assert_eq!(snap_file(3), "snap.3");
        assert_eq!(parse_snap_name("snap.3"), Some(3));
        assert_eq!(parse_snap_name("snap."), None);
        assert_eq!(parse_snap_name("snap.3x"), None);
        assert_eq!(parse_snap_name("wal.3"), None);
        assert_eq!(parse_snap_name("snap.3.quarantined"), None);
    }

    #[test]
    fn corrupt_snapshot_is_an_error_not_a_cold_start() {
        let snap = Snapshot::capture_graph(&sample_graph());
        let disk = MemDisk::new();
        snap.write(&disk.vfs(), 2).unwrap();
        assert!(disk.corrupt(&snap_file(2), 20, 0x01));
        assert!(matches!(
            Snapshot::load(&disk.vfs(), 2),
            Err(SnapshotError::BadChecksum)
        ));
        // Magic damage is reported distinctly.
        let disk2 = MemDisk::new();
        snap.write(&disk2.vfs(), 2).unwrap();
        disk2.corrupt(&snap_file(2), 0, 0xFF);
        assert!(matches!(
            Snapshot::load(&disk2.vfs(), 2),
            Err(SnapshotError::BadMagic)
        ));
    }
}
