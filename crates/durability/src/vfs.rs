//! Fault-injectable file layer.
//!
//! All durability I/O goes through the [`Vfs`] trait so crash-recovery
//! tests can run against an in-memory disk and kill the "process" at any
//! byte boundary — or hand it a *disk that misbehaves*. Two
//! implementations:
//!
//! - [`StdVfs`] — a real directory, used in production. Honors the
//!   [`FsyncMode`] knob (`PGQ_FSYNC`) for atomic writes; WAL appends
//!   are flushed explicitly via [`Vfs::sync`] (the engine's
//!   group-commit flush point).
//! - [`MemVfs`] over a shared [`MemDisk`] — two independent fault
//!   modes:
//!
//!   **Byte fuse** ([`MemDisk::vfs_with_fuse`]): a write budget counts
//!   down; once it blows, writes silently stop landing, exactly as if
//!   the process had been killed mid-write. Appends tear (a prefix of
//!   the record lands), atomic writes go all-or-nothing. The fuse
//!   models a *crash*, not an I/O error: a dying process gets no error
//!   to handle, so exhausted-fuse writes return `Ok` — the code under
//!   test cannot observe the crash point.
//!
//!   **Error injection** ([`MemDisk::vfs_with_fault`]): the N-th
//!   mutating operation *fails and reports it* — EIO, ENOSPC, a short
//!   write (a prefix lands, then the error), a failed `fsync` (which
//!   also drops every byte written since the last successful sync, the
//!   post-fsyncgate contract), or a torn rename (the destination ends
//!   up *missing*). This models a live disk returning errors to a
//!   process that keeps running; the engine's graceful-degradation
//!   contract is tested against it.
//!
//! The disk tracks a per-file **synced watermark**: [`Vfs::sync`]
//! advances it, and a failed sync truncates the file back to it —
//! unsynced page-cache bytes are exactly what a failed fsync may lose.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;
use pgq_common::fxhash::FxHashMap;

/// How eagerly durable writes are flushed to stable storage.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FsyncMode {
    /// `fsync` at every commit flush point (see the engine's
    /// `PGQ_FLUSH_WINDOW`). Survives OS crashes, costs a disk
    /// round-trip per flush.
    Always,
    /// Leave flushing to the OS page cache (survives process crashes,
    /// not power loss). The default.
    #[default]
    Never,
}

impl FsyncMode {
    /// Strictly parse the `PGQ_FSYNC` knob: `always`/`1`/`true` →
    /// [`FsyncMode::Always`], `never`/`0`/`false`/empty →
    /// [`FsyncMode::Never`]. Anything else is an error — a typo like
    /// `PGQ_FSYNC=alway` must fail startup loudly instead of silently
    /// dropping durability.
    pub fn parse(s: &str) -> Result<FsyncMode, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "always" | "1" | "true" => Ok(FsyncMode::Always),
            "never" | "0" | "false" | "" => Ok(FsyncMode::Never),
            other => Err(format!(
                "unrecognized PGQ_FSYNC value `{other}` (expected `always` or `never`)"
            )),
        }
    }

    /// [`FsyncMode::parse`] of the `PGQ_FSYNC` environment variable;
    /// unset means the default ([`FsyncMode::Never`]).
    pub fn from_env() -> Result<FsyncMode, String> {
        match std::env::var("PGQ_FSYNC") {
            Ok(v) => FsyncMode::parse(&v),
            Err(_) => Ok(FsyncMode::default()),
        }
    }
}

/// Minimal file-system surface the durability layer needs. Names are
/// flat (no subdirectories).
pub trait Vfs: Send + Sync {
    /// Whole-file read; `Ok(None)` when the file does not exist.
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>>;
    /// Append bytes to the file, creating it if missing.
    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Atomically replace the file's contents (write-temp-then-rename):
    /// after a crash the file holds either the old bytes or the new
    /// bytes, never a mix.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Remove the file; fine if it does not exist.
    fn remove(&self, name: &str) -> io::Result<()>;
    /// Durably flush previously appended bytes (fsync). After an
    /// `Err`, callers must assume bytes appended since the last
    /// successful sync never reached the disk.
    fn sync(&self, name: &str) -> io::Result<()>;
    /// Names of all files present.
    fn list(&self) -> io::Result<Vec<String>>;
}

/// [`Vfs`] over a real directory (created on construction).
pub struct StdVfs {
    dir: PathBuf,
    fsync: FsyncMode,
}

impl StdVfs {
    /// Open (creating if needed) `dir` as a durability directory.
    pub fn new(dir: impl Into<PathBuf>, fsync: FsyncMode) -> io::Result<StdVfs> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(StdVfs { dir, fsync })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn sync_dir(&self) -> io::Result<()> {
        // Persist the rename itself; only meaningful under `Always`.
        if self.fsync == FsyncMode::Always {
            std::fs::File::open(&self.dir)?.sync_all()?;
        }
        Ok(())
    }
}

impl Vfs for StdVfs {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(bytes)
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            if self.fsync == FsyncMode::Always {
                f.sync_data()?;
            }
        }
        std::fs::rename(&tmp, self.path(name))?;
        self.sync_dir()
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .append(true)
            .open(self.path(name))?
            .sync_data()
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    out.push(name.to_string());
                }
            }
        }
        Ok(out)
    }
}

/// One injectable storage fault (see [`MemDisk::vfs_with_fault`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Generic I/O error; nothing lands.
    Eio,
    /// Out of space (classifies as ENOSPC); nothing lands.
    Enospc,
    /// Half the bytes land, then the error — a torn-but-reported write.
    ShortWrite,
    /// `fsync` fails AND the file's unsynced tail is dropped (the
    /// post-fsyncgate loss window). On non-sync operations this
    /// behaves like [`Fault::Eio`].
    FsyncFail,
    /// An atomic replace tears: the destination ends up *missing*
    /// (old unlinked, new never linked) and the error is reported. On
    /// non-rename operations this behaves like [`Fault::Eio`].
    TornRename,
}

impl Fault {
    /// All injectable faults, for sweep tests.
    pub const ALL: [Fault; 5] = [
        Fault::Eio,
        Fault::Enospc,
        Fault::ShortWrite,
        Fault::FsyncFail,
        Fault::TornRename,
    ];

    fn to_error(self) -> io::Error {
        match self {
            Fault::Enospc => io::Error::from_raw_os_error(28),
            Fault::ShortWrite => io::Error::new(io::ErrorKind::WriteZero, "injected short write"),
            Fault::FsyncFail => io::Error::other("injected fsync failure"),
            Fault::TornRename => io::Error::other("injected torn rename"),
            Fault::Eio => io::Error::other("injected EIO"),
        }
    }
}

struct FileBuf {
    bytes: Vec<u8>,
    /// Length durably flushed; a failed fsync truncates back to it.
    synced: usize,
}

#[derive(Default)]
struct MemDiskInner {
    files: FxHashMap<String, FileBuf>,
    /// Mutating operations attempted through any handle (append,
    /// write_atomic, remove, sync) — the index space fault plans fire
    /// in.
    ops_attempted: u64,
    /// Bytes offered to append/write_atomic through any handle,
    /// whether or not they landed — the index space byte fuses sweep.
    bytes_attempted: u64,
}

/// A shared in-memory "disk" that survives simulated process crashes.
/// Clones share state; hand one clone to the dying engine (via a fused
/// [`MemVfs`]) and another to the recovering engine.
#[derive(Clone, Default)]
pub struct MemDisk(Arc<Mutex<MemDiskInner>>);

impl MemDisk {
    /// Fresh empty disk.
    pub fn new() -> MemDisk {
        MemDisk::default()
    }

    /// A handle with an unlimited write budget and no faults.
    pub fn vfs(&self) -> MemVfs {
        MemVfs {
            disk: self.clone(),
            remaining: Arc::new(Mutex::new(None)),
            faults: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle whose writes stop landing after `budget` bytes — the
    /// crash-injection side. The budget is shared across all files.
    pub fn vfs_with_fuse(&self, budget: u64) -> MemVfs {
        MemVfs {
            disk: self.clone(),
            remaining: Arc::new(Mutex::new(Some(budget))),
            faults: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle that injects `fault` at the `op`-th mutating operation
    /// (0-indexed over the disk-wide [`MemDisk::ops_attempted`]
    /// counter), then behaves normally. The faulted operation *reports*
    /// its failure — this is the live-disk error model, not the crash
    /// model.
    pub fn vfs_with_fault(&self, op: u64, fault: Fault) -> MemVfs {
        self.vfs_with_faults(vec![(op, fault)])
    }

    /// A handle with a scripted fault plan (each entry fires once).
    pub fn vfs_with_faults(&self, plan: Vec<(u64, Fault)>) -> MemVfs {
        MemVfs {
            disk: self.clone(),
            remaining: Arc::new(Mutex::new(None)),
            faults: Arc::new(Mutex::new(plan)),
        }
    }

    /// Mutating operations attempted so far through any handle.
    pub fn ops_attempted(&self) -> u64 {
        self.0.lock().ops_attempted
    }

    /// Bytes offered to writes so far through any handle.
    pub fn bytes_attempted(&self) -> u64 {
        self.0.lock().bytes_attempted
    }

    /// Current length of `name`, if present.
    pub fn len(&self, name: &str) -> Option<usize> {
        self.0.lock().files.get(name).map(|f| f.bytes.len())
    }

    /// Total bytes currently on the disk (the bounded-disk metric).
    pub fn total_len(&self) -> usize {
        self.0.lock().files.values().map(|f| f.bytes.len()).sum()
    }

    /// Names of all files currently present (sorted).
    pub fn file_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.0.lock().files.keys().cloned().collect();
        names.sort();
        names
    }

    /// XOR `mask` into byte `offset` of `name` (bit-flip injection).
    /// Returns false when the file or offset does not exist.
    pub fn corrupt(&self, name: &str, offset: usize, mask: u8) -> bool {
        let mut inner = self.0.lock();
        match inner
            .files
            .get_mut(name)
            .and_then(|f| f.bytes.get_mut(offset))
        {
            Some(b) => {
                *b ^= mask;
                true
            }
            None => false,
        }
    }

    /// Truncate `name` to `new_len` bytes (torn-tail injection).
    pub fn truncate(&self, name: &str, new_len: usize) {
        if let Some(f) = self.0.lock().files.get_mut(name) {
            f.bytes.truncate(new_len);
            f.synced = f.synced.min(new_len);
        }
    }
}

/// [`Vfs`] handle over a [`MemDisk`], optionally with a byte fuse
/// and/or a fault plan.
pub struct MemVfs {
    disk: MemDisk,
    /// Remaining write budget in bytes; `None` = unlimited. Shared so a
    /// cloned handle (engine + its pool) drains one fuse.
    remaining: Arc<Mutex<Option<u64>>>,
    /// Scripted faults: (disk-wide op index, fault). Entries fire once.
    faults: Arc<Mutex<Vec<(u64, Fault)>>>,
}

impl MemVfs {
    /// Bytes of write budget left (`None` = unlimited).
    pub fn fuse_remaining(&self) -> Option<u64> {
        *self.remaining.lock()
    }

    /// Has the fuse blown (budget exhausted)?
    pub fn fuse_blown(&self) -> bool {
        self.fuse_remaining() == Some(0)
    }

    /// Count one mutating op and return the fault scheduled for it, if
    /// any.
    fn next_op_fault(&self) -> Option<Fault> {
        let idx = {
            let mut inner = self.disk.0.lock();
            let idx = inner.ops_attempted;
            inner.ops_attempted += 1;
            idx
        };
        let mut plan = self.faults.lock();
        let pos = plan.iter().position(|(at, _)| *at == idx)?;
        Some(plan.swap_remove(pos).1)
    }

    fn count_bytes(&self, n: usize) {
        self.disk.0.lock().bytes_attempted += n as u64;
    }
}

impl Vfs for MemVfs {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self.disk.0.lock().files.get(name).map(|f| f.bytes.clone()))
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let fault = self.next_op_fault();
        self.count_bytes(bytes.len());
        // Error injection: a reported failure, with a torn prefix for
        // short writes; everything else leaves the file untouched.
        if let Some(fault) = fault {
            if fault == Fault::ShortWrite {
                let cut = bytes.len() / 2;
                if cut > 0 {
                    let mut inner = self.disk.0.lock();
                    inner
                        .files
                        .entry(name.to_string())
                        .or_insert_with(|| FileBuf {
                            bytes: Vec::new(),
                            synced: 0,
                        })
                        .bytes
                        .extend_from_slice(&bytes[..cut]);
                }
            }
            return Err(fault.to_error());
        }
        // Crash fuse: the prefix that fits lands (a torn record); the
        // budget drains by the full attempt either way, and the caller
        // never sees an error.
        let mut remaining = self.remaining.lock();
        let landed = match *remaining {
            None => bytes.len(),
            Some(ref mut r) => {
                let fit = (*r).min(bytes.len() as u64) as usize;
                *r = r.saturating_sub(bytes.len() as u64);
                fit
            }
        };
        if landed > 0 {
            let mut inner = self.disk.0.lock();
            inner
                .files
                .entry(name.to_string())
                .or_insert_with(|| FileBuf {
                    bytes: Vec::new(),
                    synced: 0,
                })
                .bytes
                .extend_from_slice(&bytes[..landed]);
        }
        Ok(())
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let fault = self.next_op_fault();
        self.count_bytes(bytes.len());
        if let Some(fault) = fault {
            if fault == Fault::TornRename {
                // The nastiest legal outcome of a torn rename without a
                // directory sync: old unlinked, new never linked.
                self.disk.0.lock().files.remove(name);
            }
            // Every other fault leaves the visible file untouched (the
            // temp file absorbed the failure).
            return Err(fault.to_error());
        }
        let mut remaining = self.remaining.lock();
        let lands = match *remaining {
            None => true,
            Some(ref mut r) => {
                if *r >= bytes.len() as u64 {
                    *r -= bytes.len() as u64;
                    true
                } else {
                    // Crashed mid-write: the temp file never got renamed,
                    // so the visible file is untouched.
                    *r = 0;
                    false
                }
            }
        };
        if lands {
            self.disk.0.lock().files.insert(
                name.to_string(),
                FileBuf {
                    bytes: bytes.to_vec(),
                    synced: bytes.len(),
                },
            );
        }
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        if let Some(fault) = self.next_op_fault() {
            return Err(fault.to_error());
        }
        let alive = !matches!(*self.remaining.lock(), Some(0));
        if alive {
            self.disk.0.lock().files.remove(name);
        }
        Ok(())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        let fault = self.next_op_fault();
        let mut inner = self.disk.0.lock();
        let Some(f) = inner.files.get_mut(name) else {
            // Syncing a missing file: report the scheduled fault if
            // any, otherwise succeed vacuously.
            return match fault {
                Some(fault) => Err(fault.to_error()),
                None => Ok(()),
            };
        };
        match fault {
            Some(Fault::FsyncFail) => {
                // Post-fsyncgate: the dirty pages this sync covered are
                // gone, not retryable. Roll the file back to its last
                // durable prefix.
                let synced = f.synced;
                f.bytes.truncate(synced);
                Err(Fault::FsyncFail.to_error())
            }
            Some(fault) => Err(fault.to_error()),
            None => {
                f.synced = f.bytes.len();
                Ok(())
            }
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.disk.file_names())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_append_and_read_roundtrip() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        vfs.append("f", b"abc").unwrap();
        vfs.append("f", b"de").unwrap();
        assert_eq!(vfs.read("f").unwrap().unwrap(), b"abcde");
        assert_eq!(vfs.read("missing").unwrap(), None);
        assert_eq!(disk.ops_attempted(), 2);
        assert_eq!(disk.bytes_attempted(), 5);
        assert_eq!(vfs.list().unwrap(), vec!["f".to_string()]);
    }

    #[test]
    fn fuse_tears_appends_at_the_byte() {
        let disk = MemDisk::new();
        let vfs = disk.vfs_with_fuse(5);
        vfs.append("f", b"abc").unwrap(); // 3 land, 2 left
        vfs.append("f", b"defg").unwrap(); // 2 land (torn), fuse blown
        vfs.append("f", b"hij").unwrap(); // nothing lands
        assert!(vfs.fuse_blown());
        assert_eq!(disk.vfs().read("f").unwrap().unwrap(), b"abcde");
    }

    #[test]
    fn fused_atomic_write_is_all_or_nothing() {
        let disk = MemDisk::new();
        disk.vfs().write_atomic("s", b"old").unwrap();
        let vfs = disk.vfs_with_fuse(2);
        vfs.write_atomic("s", b"newer").unwrap(); // doesn't fit: old survives
        assert!(vfs.fuse_blown());
        assert_eq!(disk.vfs().read("s").unwrap().unwrap(), b"old");

        let vfs2 = disk.vfs_with_fuse(100);
        vfs2.write_atomic("s", b"newer").unwrap();
        assert_eq!(disk.vfs().read("s").unwrap().unwrap(), b"newer");
    }

    #[test]
    fn corruption_injection() {
        let disk = MemDisk::new();
        disk.vfs().append("f", b"abc").unwrap();
        assert!(disk.corrupt("f", 1, 0xFF));
        assert!(!disk.corrupt("f", 99, 0xFF));
        assert_eq!(disk.vfs().read("f").unwrap().unwrap()[1], b'b' ^ 0xFF);
        disk.truncate("f", 1);
        assert_eq!(disk.len("f"), Some(1));
    }

    #[test]
    fn injected_eio_reports_and_leaves_file_untouched() {
        let disk = MemDisk::new();
        let vfs = disk.vfs_with_fault(1, Fault::Eio);
        vfs.append("f", b"abc").unwrap(); // op 0
        let err = vfs.append("f", b"def").unwrap_err(); // op 1: injected
        assert!(err.to_string().contains("EIO"));
        vfs.append("f", b"ghi").unwrap(); // op 2: healthy again
        assert_eq!(disk.vfs().read("f").unwrap().unwrap(), b"abcghi");
    }

    #[test]
    fn injected_enospc_classifies_as_out_of_space() {
        let disk = MemDisk::new();
        let vfs = disk.vfs_with_fault(0, Fault::Enospc);
        let err = vfs.append("f", b"abc").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        assert_eq!(disk.len("f"), None);
    }

    #[test]
    fn injected_short_write_tears_and_reports() {
        let disk = MemDisk::new();
        let vfs = disk.vfs_with_fault(1, Fault::ShortWrite);
        vfs.append("f", b"abcd").unwrap();
        assert!(vfs.append("f", b"wxyz").is_err());
        // Half landed: a torn-but-reported record.
        assert_eq!(disk.vfs().read("f").unwrap().unwrap(), b"abcdwx");
    }

    #[test]
    fn failed_fsync_drops_the_unsynced_tail() {
        let disk = MemDisk::new();
        let vfs = disk.vfs_with_fault(3, Fault::FsyncFail);
        vfs.append("f", b"abc").unwrap(); // op 0
        vfs.sync("f").unwrap(); // op 1: synced = 3
        vfs.append("f", b"def").unwrap(); // op 2 (unsynced)
        assert!(vfs.sync("f").is_err()); // op 3: fails, tail dropped
        assert_eq!(disk.vfs().read("f").unwrap().unwrap(), b"abc");
        // The disk keeps working afterwards.
        vfs.append("f", b"ghi").unwrap();
        vfs.sync("f").unwrap();
        assert_eq!(disk.vfs().read("f").unwrap().unwrap(), b"abcghi");
    }

    #[test]
    fn torn_rename_unlinks_the_destination() {
        let disk = MemDisk::new();
        disk.vfs().write_atomic("s", b"old").unwrap();
        let vfs = disk.vfs_with_fault(1, Fault::TornRename);
        assert!(vfs.write_atomic("s", b"new").is_err());
        assert_eq!(disk.vfs().read("s").unwrap(), None);
    }

    #[test]
    fn std_vfs_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pgq-vfs-test-{}", std::process::id()));
        let vfs = StdVfs::new(&dir, FsyncMode::Never).unwrap();
        vfs.append("w", b"ab").unwrap();
        vfs.append("w", b"c").unwrap();
        vfs.sync("w").unwrap();
        assert_eq!(vfs.read("w").unwrap().unwrap(), b"abc");
        vfs.write_atomic("s", b"snap").unwrap();
        assert_eq!(vfs.read("s").unwrap().unwrap(), b"snap");
        let mut names = vfs.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["s".to_string(), "w".to_string()]);
        vfs.remove("w").unwrap();
        vfs.remove("w").unwrap(); // idempotent
        assert_eq!(vfs.read("w").unwrap(), None);
        vfs.remove("s").unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn fsync_mode_parsing_is_strict() {
        assert_eq!(FsyncMode::parse("always"), Ok(FsyncMode::Always));
        assert_eq!(FsyncMode::parse(" 1 "), Ok(FsyncMode::Always));
        assert_eq!(FsyncMode::parse("true"), Ok(FsyncMode::Always));
        assert_eq!(FsyncMode::parse("never"), Ok(FsyncMode::Never));
        assert_eq!(FsyncMode::parse("0"), Ok(FsyncMode::Never));
        assert_eq!(FsyncMode::parse(""), Ok(FsyncMode::Never));
        // The typo that used to silently drop durability.
        assert!(FsyncMode::parse("alway").is_err());
        assert!(FsyncMode::parse("yes").is_err());
        assert!(FsyncMode::parse("fsync").is_err());
    }
}
