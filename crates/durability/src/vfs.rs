//! Fault-injectable file layer.
//!
//! All durability I/O goes through the [`Vfs`] trait so crash-recovery
//! tests can run against an in-memory disk and kill the "process" at any
//! byte boundary. Two implementations:
//!
//! - [`StdVfs`] — a real directory, used in production. Honors the
//!   [`FsyncMode`] knob (`PGQ_FSYNC`).
//! - [`MemVfs`] over a shared [`MemDisk`] — a write **fuse** counts down
//!   a byte budget; once it blows, writes silently stop landing, exactly
//!   as if the process had been killed mid-write. Appends tear (a prefix
//!   of the record lands), atomic writes are all-or-nothing. Recovery
//!   tests then open a fresh, unlimited handle over the surviving bytes.
//!
//! The fuse models a *crash*, not an I/O error: a dying process gets no
//! error to handle, its writes just never reach the disk. That is why
//! exhausted-fuse writes return `Ok` — the code under test must not be
//! able to observe the crash point.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;
use pgq_common::fxhash::FxHashMap;

/// How eagerly durable writes are flushed to stable storage.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FsyncMode {
    /// `fsync` after every WAL append and snapshot write. Survives OS
    /// crashes, costs a disk round-trip per commit.
    Always,
    /// Leave flushing to the OS page cache (survives process crashes,
    /// not power loss). The default.
    #[default]
    Never,
}

impl FsyncMode {
    /// Parse the `PGQ_FSYNC` knob: `always`/`1`/`true` → [`FsyncMode::Always`],
    /// anything else → [`FsyncMode::Never`].
    pub fn from_env_str(s: &str) -> FsyncMode {
        match s.trim().to_ascii_lowercase().as_str() {
            "always" | "1" | "true" => FsyncMode::Always,
            _ => FsyncMode::Never,
        }
    }
}

/// Minimal file-system surface the durability layer needs. Names are
/// flat (no subdirectories).
pub trait Vfs: Send + Sync {
    /// Whole-file read; `Ok(None)` when the file does not exist.
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>>;
    /// Append bytes to the file, creating it if missing.
    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Atomically replace the file's contents (write-temp-then-rename):
    /// after a crash the file holds either the old bytes or the new
    /// bytes, never a mix.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Remove the file; fine if it does not exist.
    fn remove(&self, name: &str) -> io::Result<()>;
}

/// [`Vfs`] over a real directory (created on construction).
pub struct StdVfs {
    dir: PathBuf,
    fsync: FsyncMode,
}

impl StdVfs {
    /// Open (creating if needed) `dir` as a durability directory.
    pub fn new(dir: impl Into<PathBuf>, fsync: FsyncMode) -> io::Result<StdVfs> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(StdVfs { dir, fsync })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn sync_dir(&self) -> io::Result<()> {
        // Persist the rename itself; only meaningful under `Always`.
        if self.fsync == FsyncMode::Always {
            std::fs::File::open(&self.dir)?.sync_all()?;
        }
        Ok(())
    }
}

impl Vfs for StdVfs {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(bytes)?;
        if self.fsync == FsyncMode::Always {
            f.sync_data()?;
        }
        Ok(())
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            if self.fsync == FsyncMode::Always {
                f.sync_data()?;
            }
        }
        std::fs::rename(&tmp, self.path(name))?;
        self.sync_dir()
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[derive(Default)]
struct MemDiskInner {
    files: FxHashMap<String, Vec<u8>>,
}

/// A shared in-memory "disk" that survives simulated process crashes.
/// Clones share state; hand one clone to the dying engine (via a fused
/// [`MemVfs`]) and another to the recovering engine.
#[derive(Clone, Default)]
pub struct MemDisk(Arc<Mutex<MemDiskInner>>);

impl MemDisk {
    /// Fresh empty disk.
    pub fn new() -> MemDisk {
        MemDisk::default()
    }

    /// A handle with an unlimited write budget (recovery side).
    pub fn vfs(&self) -> MemVfs {
        MemVfs {
            disk: self.clone(),
            remaining: Arc::new(Mutex::new(None)),
        }
    }

    /// A handle whose writes stop landing after `budget` bytes — the
    /// crash-injection side. The budget is shared across all files.
    pub fn vfs_with_fuse(&self, budget: u64) -> MemVfs {
        MemVfs {
            disk: self.clone(),
            remaining: Arc::new(Mutex::new(Some(budget))),
        }
    }

    /// Current length of `name`, if present.
    pub fn len(&self, name: &str) -> Option<usize> {
        self.0.lock().files.get(name).map(Vec::len)
    }

    /// XOR `mask` into byte `offset` of `name` (bit-flip injection).
    /// Returns false when the file or offset does not exist.
    pub fn corrupt(&self, name: &str, offset: usize, mask: u8) -> bool {
        let mut inner = self.0.lock();
        match inner.files.get_mut(name).and_then(|f| f.get_mut(offset)) {
            Some(b) => {
                *b ^= mask;
                true
            }
            None => false,
        }
    }

    /// Truncate `name` to `new_len` bytes (torn-tail injection).
    pub fn truncate(&self, name: &str, new_len: usize) {
        if let Some(f) = self.0.lock().files.get_mut(name) {
            f.truncate(new_len);
        }
    }
}

/// [`Vfs`] handle over a [`MemDisk`], optionally with a byte fuse.
pub struct MemVfs {
    disk: MemDisk,
    /// Remaining write budget in bytes; `None` = unlimited. Shared so a
    /// cloned handle (engine + its pool) drains one fuse.
    remaining: Arc<Mutex<Option<u64>>>,
}

impl MemVfs {
    /// Bytes of write budget left (`None` = unlimited).
    pub fn fuse_remaining(&self) -> Option<u64> {
        *self.remaining.lock()
    }

    /// Has the fuse blown (budget exhausted)?
    pub fn fuse_blown(&self) -> bool {
        self.fuse_remaining() == Some(0)
    }
}

impl Vfs for MemVfs {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self.disk.0.lock().files.get(name).cloned())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut remaining = self.remaining.lock();
        let landed = match *remaining {
            None => bytes.len(),
            Some(ref mut r) => {
                // The prefix that fits lands (a torn record); the budget
                // drains by the full attempt either way.
                let fit = (*r).min(bytes.len() as u64) as usize;
                *r = r.saturating_sub(bytes.len() as u64);
                fit
            }
        };
        if landed > 0 {
            self.disk
                .0
                .lock()
                .files
                .entry(name.to_string())
                .or_default()
                .extend_from_slice(&bytes[..landed]);
        }
        Ok(())
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut remaining = self.remaining.lock();
        let lands = match *remaining {
            None => true,
            Some(ref mut r) => {
                if *r >= bytes.len() as u64 {
                    *r -= bytes.len() as u64;
                    true
                } else {
                    // Crashed mid-write: the temp file never got renamed,
                    // so the visible file is untouched.
                    *r = 0;
                    false
                }
            }
        };
        if lands {
            self.disk
                .0
                .lock()
                .files
                .insert(name.to_string(), bytes.to_vec());
        }
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let alive = !matches!(*self.remaining.lock(), Some(0));
        if alive {
            self.disk.0.lock().files.remove(name);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_append_and_read_roundtrip() {
        let disk = MemDisk::new();
        let vfs = disk.vfs();
        vfs.append("f", b"abc").unwrap();
        vfs.append("f", b"de").unwrap();
        assert_eq!(vfs.read("f").unwrap().unwrap(), b"abcde");
        assert_eq!(vfs.read("missing").unwrap(), None);
    }

    #[test]
    fn fuse_tears_appends_at_the_byte() {
        let disk = MemDisk::new();
        let vfs = disk.vfs_with_fuse(5);
        vfs.append("f", b"abc").unwrap(); // 3 land, 2 left
        vfs.append("f", b"defg").unwrap(); // 2 land (torn), fuse blown
        vfs.append("f", b"hij").unwrap(); // nothing lands
        assert!(vfs.fuse_blown());
        assert_eq!(disk.vfs().read("f").unwrap().unwrap(), b"abcde");
    }

    #[test]
    fn fused_atomic_write_is_all_or_nothing() {
        let disk = MemDisk::new();
        disk.vfs().write_atomic("s", b"old").unwrap();
        let vfs = disk.vfs_with_fuse(2);
        vfs.write_atomic("s", b"newer").unwrap(); // doesn't fit: old survives
        assert!(vfs.fuse_blown());
        assert_eq!(disk.vfs().read("s").unwrap().unwrap(), b"old");

        let vfs2 = disk.vfs_with_fuse(100);
        vfs2.write_atomic("s", b"newer").unwrap();
        assert_eq!(disk.vfs().read("s").unwrap().unwrap(), b"newer");
    }

    #[test]
    fn corruption_injection() {
        let disk = MemDisk::new();
        disk.vfs().append("f", b"abc").unwrap();
        assert!(disk.corrupt("f", 1, 0xFF));
        assert!(!disk.corrupt("f", 99, 0xFF));
        assert_eq!(disk.vfs().read("f").unwrap().unwrap()[1], b'b' ^ 0xFF);
        disk.truncate("f", 1);
        assert_eq!(disk.len("f"), Some(1));
    }

    #[test]
    fn std_vfs_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pgq-vfs-test-{}", std::process::id()));
        let vfs = StdVfs::new(&dir, FsyncMode::Never).unwrap();
        vfs.append("w", b"ab").unwrap();
        vfs.append("w", b"c").unwrap();
        assert_eq!(vfs.read("w").unwrap().unwrap(), b"abc");
        vfs.write_atomic("s", b"snap").unwrap();
        assert_eq!(vfs.read("s").unwrap().unwrap(), b"snap");
        vfs.remove("w").unwrap();
        vfs.remove("w").unwrap(); // idempotent
        assert_eq!(vfs.read("w").unwrap(), None);
        vfs.remove("s").unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn fsync_mode_parsing() {
        assert_eq!(FsyncMode::from_env_str("always"), FsyncMode::Always);
        assert_eq!(FsyncMode::from_env_str(" 1 "), FsyncMode::Always);
        assert_eq!(FsyncMode::from_env_str("never"), FsyncMode::Never);
        assert_eq!(FsyncMode::from_env_str(""), FsyncMode::Never);
    }
}
