//! Hand-rolled binary codec for durable records.
//!
//! A small, explicit little-endian format — no external serialization
//! crates (offline shim rule), no reflection. Every durable structure
//! (values, property maps, transaction ops, operator-state tuples) has a
//! matching `encode_*`/`decode_*` pair here, and the WAL/snapshot layers
//! only ever frame byte blobs produced by this module.
//!
//! Two invariants the recovery path depends on:
//!
//! - **Symbols encode as their resolved strings**, never as intern ids.
//!   Intern ids are interning-order artifacts of one process; a recovered
//!   process re-interns the strings and gets its own ids.
//! - **Decoding never panics.** Every read is bounds-checked and every
//!   tag validated, returning [`CodecError`]; recovery treats a decode
//!   failure like a checksum failure (stop cleanly, fall back).

use std::fmt;
use std::sync::Arc;

use pgq_common::ids::{EdgeId, VertexId};
use pgq_common::intern::Symbol;
use pgq_common::ordf::OrdF64;
use pgq_common::path::PathValue;
use pgq_common::tuple::Tuple;
use pgq_common::value::Value;
use pgq_graph::props::Properties;
use pgq_graph::tx::{NodeRef, Transaction, TxOp};

/// Decode failure. Carries enough to say *what* was malformed without
/// retaining any of the (possibly corrupt) input.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// Input ended before the value being decoded was complete.
    Eof,
    /// Unknown tag byte for the named type.
    BadTag(&'static str, u8),
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// Bytes remained after the top-level value (framing bug upstream).
    Trailing,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Eof => write!(f, "unexpected end of input"),
            CodecError::BadTag(what, tag) => write!(f, "bad {what} tag {tag:#04x}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string payload"),
            CodecError::Trailing => write!(f, "trailing bytes after value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// CRC-32 (IEEE 802.3 polynomial, the zlib/`crc32fast` convention),
/// hand-rolled so the WAL needs no external checksum crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Little-endian byte-buffer writer.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Finish, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a collection length (`u32`).
    pub fn len(&mut self, n: usize) {
        self.u32(n as u32);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian reader over a byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Read from `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the input was consumed exactly.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Trailing)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Eof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::BadTag("bool", t)),
        }
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a collection length, refusing lengths that cannot fit in the
    /// remaining input (defense against corrupt prefixes: no huge
    /// preallocations, no long bogus loops).
    pub fn read_len(&mut self) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(CodecError::Eof);
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.read_len()?;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_owned)
            .map_err(|_| CodecError::BadUtf8)
    }

    /// Read a symbol (stored as its resolved string; re-interned here).
    pub fn symbol(&mut self) -> Result<Symbol, CodecError> {
        Ok(Symbol::intern(&self.str()?))
    }
}

/// Encode a symbol as its resolved string.
pub fn encode_symbol(e: &mut Encoder, s: Symbol) {
    s.with_str(|str| e.str(str));
}

// Value tags.
const V_NULL: u8 = 0;
const V_BOOL: u8 = 1;
const V_INT: u8 = 2;
const V_FLOAT: u8 = 3;
const V_STR: u8 = 4;
const V_NODE: u8 = 5;
const V_REL: u8 = 6;
const V_LIST: u8 = 7;
const V_MAP: u8 = 8;
const V_PATH: u8 = 9;

/// Encode a [`Value`] (tagged, recursive).
pub fn encode_value(e: &mut Encoder, v: &Value) {
    match v {
        Value::Null => e.u8(V_NULL),
        Value::Bool(b) => {
            e.u8(V_BOOL);
            e.bool(*b);
        }
        Value::Int(i) => {
            e.u8(V_INT);
            e.i64(*i);
        }
        Value::Float(f) => {
            e.u8(V_FLOAT);
            e.u64(f.get().to_bits());
        }
        Value::Str(s) => {
            e.u8(V_STR);
            e.str(s);
        }
        Value::Node(v) => {
            e.u8(V_NODE);
            e.u64(v.0);
        }
        Value::Rel(r) => {
            e.u8(V_REL);
            e.u64(r.0);
        }
        Value::List(items) => {
            e.u8(V_LIST);
            e.len(items.len());
            for item in items.iter() {
                encode_value(e, item);
            }
        }
        Value::Map(m) => {
            e.u8(V_MAP);
            e.len(m.len());
            for (k, v) in m.iter() {
                e.str(k);
                encode_value(e, v);
            }
        }
        Value::Path(p) => {
            e.u8(V_PATH);
            e.len(p.vertices().len());
            for v in p.vertices() {
                e.u64(v.0);
            }
            e.len(p.edges().len());
            for ed in p.edges() {
                e.u64(ed.0);
            }
        }
    }
}

/// Decode a [`Value`].
pub fn decode_value(d: &mut Decoder<'_>) -> Result<Value, CodecError> {
    Ok(match d.u8()? {
        V_NULL => Value::Null,
        V_BOOL => Value::Bool(d.bool()?),
        V_INT => Value::Int(d.i64()?),
        V_FLOAT => Value::Float(OrdF64(f64::from_bits(d.u64()?))),
        V_STR => Value::Str(Arc::from(d.str()?)),
        V_NODE => Value::Node(VertexId(d.u64()?)),
        V_REL => Value::Rel(EdgeId(d.u64()?)),
        V_LIST => {
            let n = d.read_len()?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(d)?);
            }
            Value::list(items)
        }
        V_MAP => {
            let n = d.read_len()?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let k = d.str()?;
                entries.push((k, decode_value(d)?));
            }
            Value::map(entries)
        }
        V_PATH => {
            let nv = d.read_len()?;
            let mut vertices = Vec::with_capacity(nv);
            for _ in 0..nv {
                vertices.push(VertexId(d.u64()?));
            }
            let ne = d.read_len()?;
            let mut edges = Vec::with_capacity(ne);
            for _ in 0..ne {
                edges.push(EdgeId(d.u64()?));
            }
            Value::path(PathValue::new(vertices, edges))
        }
        t => return Err(CodecError::BadTag("value", t)),
    })
}

/// Encode a property map as `(key-string, value)` pairs.
pub fn encode_props(e: &mut Encoder, p: &Properties) {
    e.len(p.len());
    for (k, v) in p.iter() {
        encode_symbol(e, k);
        encode_value(e, v);
    }
}

/// Decode a property map.
pub fn decode_props(d: &mut Decoder<'_>) -> Result<Properties, CodecError> {
    let n = d.read_len()?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let k = d.symbol()?;
        pairs.push((k, decode_value(d)?));
    }
    Ok(Properties::from_iter(pairs))
}

/// Encode a tuple as a value vector.
pub fn encode_tuple(e: &mut Encoder, t: &Tuple) {
    e.len(t.arity());
    for v in t.values() {
        encode_value(e, v);
    }
}

/// Decode a tuple.
pub fn decode_tuple(d: &mut Decoder<'_>) -> Result<Tuple, CodecError> {
    let n = d.read_len()?;
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(decode_value(d)?);
    }
    Ok(Tuple::new(vals))
}

// NodeRef tags.
const NR_EXISTING: u8 = 0;
const NR_NEW: u8 = 1;

fn encode_node_ref(e: &mut Encoder, r: NodeRef) {
    match r {
        NodeRef::Existing(v) => {
            e.u8(NR_EXISTING);
            e.u64(v.0);
        }
        NodeRef::New(i) => {
            e.u8(NR_NEW);
            e.u64(i as u64);
        }
    }
}

fn decode_node_ref(d: &mut Decoder<'_>) -> Result<NodeRef, CodecError> {
    Ok(match d.u8()? {
        NR_EXISTING => NodeRef::Existing(VertexId(d.u64()?)),
        NR_NEW => NodeRef::New(d.u64()? as usize),
        t => return Err(CodecError::BadTag("node-ref", t)),
    })
}

// TxOp tags.
const OP_CREATE_VERTEX: u8 = 0;
const OP_CREATE_EDGE: u8 = 1;
const OP_DELETE_VERTEX: u8 = 2;
const OP_DELETE_EDGE: u8 = 3;
const OP_SET_VPROP: u8 = 4;
const OP_SET_EPROP: u8 = 5;
const OP_ADD_LABEL: u8 = 6;
const OP_REMOVE_LABEL: u8 = 7;

fn encode_op(e: &mut Encoder, op: &TxOp) {
    match op {
        TxOp::CreateVertex { labels, props } => {
            e.u8(OP_CREATE_VERTEX);
            e.len(labels.len());
            for &l in labels {
                encode_symbol(e, l);
            }
            encode_props(e, props);
        }
        TxOp::CreateEdge {
            src,
            dst,
            ty,
            props,
        } => {
            e.u8(OP_CREATE_EDGE);
            encode_node_ref(e, *src);
            encode_node_ref(e, *dst);
            encode_symbol(e, *ty);
            encode_props(e, props);
        }
        TxOp::DeleteVertex { id, detach } => {
            e.u8(OP_DELETE_VERTEX);
            e.u64(id.0);
            e.bool(*detach);
        }
        TxOp::DeleteEdge { id } => {
            e.u8(OP_DELETE_EDGE);
            e.u64(id.0);
        }
        TxOp::SetVertexProp { id, key, value } => {
            e.u8(OP_SET_VPROP);
            encode_node_ref(e, *id);
            encode_symbol(e, *key);
            encode_value(e, value);
        }
        TxOp::SetEdgeProp { id, key, value } => {
            e.u8(OP_SET_EPROP);
            e.u64(id.0);
            encode_symbol(e, *key);
            encode_value(e, value);
        }
        TxOp::AddLabel { id, label } => {
            e.u8(OP_ADD_LABEL);
            encode_node_ref(e, *id);
            encode_symbol(e, *label);
        }
        TxOp::RemoveLabel { id, label } => {
            e.u8(OP_REMOVE_LABEL);
            encode_node_ref(e, *id);
            encode_symbol(e, *label);
        }
    }
}

fn decode_op(d: &mut Decoder<'_>) -> Result<TxOp, CodecError> {
    Ok(match d.u8()? {
        OP_CREATE_VERTEX => {
            let n = d.read_len()?;
            let mut labels = Vec::with_capacity(n);
            for _ in 0..n {
                labels.push(d.symbol()?);
            }
            TxOp::CreateVertex {
                labels,
                props: decode_props(d)?,
            }
        }
        OP_CREATE_EDGE => TxOp::CreateEdge {
            src: decode_node_ref(d)?,
            dst: decode_node_ref(d)?,
            ty: d.symbol()?,
            props: decode_props(d)?,
        },
        OP_DELETE_VERTEX => TxOp::DeleteVertex {
            id: VertexId(d.u64()?),
            detach: d.bool()?,
        },
        OP_DELETE_EDGE => TxOp::DeleteEdge {
            id: EdgeId(d.u64()?),
        },
        OP_SET_VPROP => TxOp::SetVertexProp {
            id: decode_node_ref(d)?,
            key: d.symbol()?,
            value: decode_value(d)?,
        },
        OP_SET_EPROP => TxOp::SetEdgeProp {
            id: EdgeId(d.u64()?),
            key: d.symbol()?,
            value: decode_value(d)?,
        },
        OP_ADD_LABEL => TxOp::AddLabel {
            id: decode_node_ref(d)?,
            label: d.symbol()?,
        },
        OP_REMOVE_LABEL => TxOp::RemoveLabel {
            id: decode_node_ref(d)?,
            label: d.symbol()?,
        },
        t => return Err(CodecError::BadTag("tx-op", t)),
    })
}

/// Encode a whole transaction (the WAL record payload).
pub fn encode_tx(tx: &Transaction) -> Vec<u8> {
    let mut e = Encoder::new();
    e.len(tx.len());
    for op in tx.ops() {
        encode_op(&mut e, op);
    }
    e.into_bytes()
}

/// Decode a transaction payload, requiring exact consumption.
pub fn decode_tx(bytes: &[u8]) -> Result<Transaction, CodecError> {
    let mut d = Decoder::new(bytes);
    let n = d.read_len()?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(decode_op(&mut d)?);
    }
    d.finish()?;
    Ok(Transaction::from_ops(ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    fn roundtrip_value(v: &Value) {
        let mut e = Encoder::new();
        encode_value(&mut e, v);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = decode_value(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn value_roundtrips_cover_every_variant() {
        roundtrip_value(&Value::Null);
        roundtrip_value(&Value::Bool(true));
        roundtrip_value(&Value::Int(-42));
        roundtrip_value(&Value::float(2.5));
        roundtrip_value(&Value::float(f64::NEG_INFINITY));
        roundtrip_value(&Value::str("héllo"));
        roundtrip_value(&Value::Node(VertexId(7)));
        roundtrip_value(&Value::Rel(EdgeId(9)));
        roundtrip_value(&Value::list(vec![Value::Int(1), Value::str("x")]));
        roundtrip_value(&Value::map([
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::Null),
        ]));
        roundtrip_value(&Value::path(PathValue::new(
            vec![VertexId(1), VertexId(2)],
            vec![EdgeId(5)],
        )));
    }

    #[test]
    fn nan_float_roundtrips_bit_exactly() {
        let mut e = Encoder::new();
        encode_value(&mut e, &Value::float(f64::NAN));
        let bytes = e.into_bytes();
        let back = decode_value(&mut Decoder::new(&bytes)).unwrap();
        match back {
            Value::Float(f) => assert!(f.get().is_nan()),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn tx_roundtrip_covers_every_op() {
        let sym = Symbol::intern;
        let mut tx = Transaction::new();
        let a = tx.create_vertex(
            [sym("Post")],
            Properties::from_iter([("lang", Value::str("en"))]),
        );
        tx.create_edge(a, VertexId(3), sym("REPLY"), Properties::new());
        tx.delete_vertex(VertexId(9), true);
        tx.delete_edge(EdgeId(4));
        tx.set_vertex_prop(a, sym("score"), Value::Int(5));
        tx.set_edge_prop(EdgeId(2), sym("w"), Value::Null);
        tx.add_label(a, sym("Hot"));
        tx.remove_label(VertexId(3), sym("Cold"));

        let bytes = encode_tx(&tx);
        let back = decode_tx(&bytes).unwrap();
        assert_eq!(back.len(), tx.len());
        for (x, y) in back.ops().iter().zip(tx.ops()) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut e = Encoder::new();
        encode_value(&mut e, &Value::str("hello world"));
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let r = decode_value(&mut Decoder::new(&bytes[..cut]));
            assert!(r.is_err(), "prefix of {cut} bytes decoded to {r:?}");
        }
    }

    #[test]
    fn bogus_length_is_rejected_without_allocation() {
        let mut e = Encoder::new();
        e.u8(7); // list tag
        e.u32(u32::MAX); // absurd length with no payload behind it
        let bytes = e.into_bytes();
        assert_eq!(
            decode_value(&mut Decoder::new(&bytes)),
            Err(CodecError::Eof)
        );
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert!(matches!(
            decode_value(&mut Decoder::new(&[0xFE])),
            Err(CodecError::BadTag("value", 0xFE))
        ));
        assert!(matches!(
            decode_tx(&[1, 0, 0, 0, 0xFE]),
            Err(CodecError::BadTag("tx-op", 0xFE))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_tx(&Transaction::new());
        bytes.push(0);
        assert!(matches!(decode_tx(&bytes), Err(CodecError::Trailing)));
    }
}
