//! Property-based tests for the store: transactional atomicity under
//! arbitrary failure points, and text-format round-trips for arbitrary
//! graphs.

use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_graph::csv;
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;
use proptest::prelude::*;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

/// A random atom that the text format supports.
fn atom() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>()
            .prop_filter("finite & roundtrip-stable", |f| f.is_finite())
            .prop_map(Value::float),
        "[ -~]{0,12}".prop_map(Value::str), // printable ASCII incl. delimiters
    ]
}

/// Build a random small graph.
fn graph_strategy() -> impl Strategy<Value = PropertyGraph> {
    let vertex = (
        proptest::collection::vec(0usize..4, 0..3), // label ids
        proptest::collection::vec((0usize..5, atom()), 0..4),
    );
    (
        proptest::collection::vec(vertex, 0..12),
        proptest::collection::vec((any::<usize>(), any::<usize>(), 0usize..3), 0..20),
    )
        .prop_map(|(vertices, edges)| {
            let labels = ["A", "B", "C", "D"];
            let keys = ["k0", "k1", "k2", "k3", "k4"];
            let types = ["R", "S", "T"];
            let mut g = PropertyGraph::new();
            let mut ids = Vec::new();
            for (ls, props) in vertices {
                let lset: Vec<Symbol> = ls.iter().map(|&i| s(labels[i])).collect();
                let pset: Properties = props.into_iter().map(|(k, v)| (keys[k], v)).collect();
                ids.push(g.add_vertex(lset, pset).0);
            }
            if !ids.is_empty() {
                for (a, b, t) in edges {
                    let src = ids[a % ids.len()];
                    let dst = ids[b % ids.len()];
                    g.add_edge(src, dst, s(types[t]), Properties::new())
                        .unwrap();
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn text_format_roundtrips(g in graph_strategy()) {
        let text = csv::to_text(&g).unwrap();
        let g2 = csv::from_text(&text).unwrap();
        prop_assert_eq!(g.vertex_count(), g2.vertex_count());
        prop_assert_eq!(g.edge_count(), g2.edge_count());
        // Content equality via re-serialisation (deterministic order).
        prop_assert_eq!(text, csv::to_text(&g2).unwrap());
    }

    #[test]
    fn failed_transactions_leave_no_trace(g in graph_strategy(), k in 0usize..6) {
        // A transaction with k valid ops followed by a guaranteed-failing
        // op must leave the graph bit-identical.
        let before = csv::to_text(&g).unwrap();
        let mut g = g;
        let mut tx = Transaction::new();
        for i in 0..k {
            let v = tx.create_vertex([s("X")], Properties::new());
            tx.set_vertex_prop(v, s("n"), Value::Int(i as i64));
        }
        // Fails: edge to a vertex that does not exist.
        tx.create_edge(
            pgq_common::ids::VertexId(u64::MAX),
            pgq_common::ids::VertexId(u64::MAX - 1),
            s("R"),
            Properties::new(),
        );
        prop_assert!(g.apply(&tx).is_err());
        prop_assert_eq!(before, csv::to_text(&g).unwrap());
    }

    #[test]
    fn detach_delete_is_complete(g in graph_strategy()) {
        // Detach-deleting every vertex empties the graph and never errors.
        let mut g = g;
        let ids: Vec<_> = g.vertex_ids().collect();
        for v in ids {
            let mut tx = Transaction::new();
            tx.delete_vertex(v, true);
            g.apply(&tx).unwrap();
        }
        prop_assert_eq!(g.vertex_count(), 0);
        prop_assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn event_count_matches_effect(g in graph_strategy()) {
        // Applying a property set to every vertex yields exactly one
        // event per actual change.
        let mut g = g;
        let ids: Vec<_> = g.vertex_ids().collect();
        let mut tx = Transaction::new();
        for &v in &ids {
            tx.set_vertex_prop(v, s("stamp"), Value::Int(1));
        }
        let events = g.apply(&tx).unwrap();
        prop_assert_eq!(events.len(), ids.len());
    }
}
