//! Property maps for vertices and edges.
//!
//! A property map is the paper's partial function `p_i : V → D_i`. The
//! vocabulary of keys per graph is small and repetitive, so keys are
//! interned [`Symbol`]s and the map is a sorted vector — denser and faster
//! to scan than a hash map at the typical 2–10 entries.

use std::fmt;

use pgq_common::intern::Symbol;
use pgq_common::value::Value;

/// A compact key-sorted property map.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Properties {
    entries: Vec<(Symbol, Value)>,
}

impl Properties {
    /// Empty map.
    pub fn new() -> Self {
        Properties::default()
    }

    /// Build from an iterator of `(key, value)` pairs; later duplicates win.
    #[allow(clippy::should_implement_trait)] // ergonomic alias for the generic FromIterator impl
    pub fn from_iter<K: Into<Symbol>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Self {
        let mut p = Properties::new();
        for (k, v) in pairs {
            p.set(k.into(), v);
        }
        p
    }

    /// Number of properties.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the map empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up `key`.
    pub fn get(&self, key: Symbol) -> Option<&Value> {
        self.entries
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Look up `key`, returning `Value::Null` when absent (Cypher property
    /// access semantics).
    pub fn get_or_null(&self, key: Symbol) -> Value {
        self.get(key).cloned().unwrap_or(Value::Null)
    }

    /// Set `key` to `value`, returning the previous value if any.
    /// Setting to [`Value::Null`] removes the property (Cypher `SET n.p =
    /// null` semantics).
    pub fn set(&mut self, key: Symbol, value: Value) -> Option<Value> {
        if value.is_null() {
            return self.remove(key);
        }
        match self.entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&mut self, key: Symbol) -> Option<Value> {
        match self.entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Iterate `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Value)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Does every `(k, v)` of `pattern` match this map exactly? Used for
    /// inline property patterns like `(p:Post {lang: 'en'})`.
    pub fn matches(&self, pattern: &Properties) -> bool {
        pattern
            .iter()
            .all(|(k, v)| self.get(k).is_some_and(|mine| mine == v))
    }

    /// Convert to a [`Value::Map`] (for returning whole elements).
    pub fn to_value_map(&self) -> Value {
        Value::map(
            self.entries
                .iter()
                .map(|(k, v)| (k.resolve().to_string(), v.clone())),
        )
    }
}

impl fmt::Display for Properties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

impl<K: Into<Symbol>> FromIterator<(K, Value)> for Properties {
    fn from_iter<T: IntoIterator<Item = (K, Value)>>(iter: T) -> Self {
        Properties::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn set_get_remove_roundtrip() {
        let mut p = Properties::new();
        assert_eq!(p.set(sym("lang"), "en".into()), None);
        assert_eq!(p.get(sym("lang")), Some(&Value::str("en")));
        assert_eq!(p.set(sym("lang"), "de".into()), Some(Value::str("en")));
        assert_eq!(p.remove(sym("lang")), Some(Value::str("de")));
        assert!(p.is_empty());
    }

    #[test]
    fn missing_key_is_null() {
        let p = Properties::new();
        assert_eq!(p.get_or_null(sym("nope")), Value::Null);
    }

    #[test]
    fn setting_null_removes() {
        let mut p = Properties::from_iter([("a", Value::Int(1))]);
        p.set(sym("a"), Value::Null);
        assert!(p.get(sym("a")).is_none());
    }

    #[test]
    fn keys_stay_sorted() {
        let p = Properties::from_iter([
            ("z", Value::Int(1)),
            ("a", Value::Int(2)),
            ("m", Value::Int(3)),
        ]);
        let keys: Vec<u32> = p.iter().map(|(k, _)| k.index()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn pattern_matching() {
        let p = Properties::from_iter([("lang", Value::str("en")), ("id", Value::Int(1))]);
        assert!(p.matches(&Properties::from_iter([("lang", Value::str("en"))])));
        assert!(!p.matches(&Properties::from_iter([("lang", Value::str("de"))])));
        assert!(!p.matches(&Properties::from_iter([("other", Value::Int(0))])));
        assert!(p.matches(&Properties::new()));
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let p = Properties::from_iter([("k", Value::Int(1)), ("k", Value::Int(2))]);
        assert_eq!(p.get(sym("k")), Some(&Value::Int(2)));
        assert_eq!(p.len(), 1);
    }
}
