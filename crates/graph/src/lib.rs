#![warn(missing_docs)]
//! # pgq-graph
//!
//! An in-memory property graph store — the substrate the paper assumes.
//!
//! The store follows the paper's data model `G = (V, E, st, L, T, L, T,
//! Pv, Pe)`: vertices carry a *set* of labels and a property map, edges
//! carry exactly one type, a source/target pair and a property map.
//!
//! Three aspects matter for incremental view maintenance and shape this
//! crate's design:
//!
//! 1. **Transactions** ([`tx::Transaction`]) apply a batch of update
//!    operations atomically (with rollback on failure) and report the
//!    committed effects as a list of [`delta::ChangeEvent`]s — the delta
//!    feed driving the IVM network.
//! 2. **Fine-grained updates (FGN)**: properties and labels can be set or
//!    removed individually, without recreating the element, and each such
//!    change is visible as its own event.
//! 3. **Indexes** ([`index`]): label, edge-type and adjacency indexes give
//!    the base-relation operators (© get-vertices, ⇑ get-edges) and the
//!    baseline evaluator O(1) access to their extents.

pub mod csv;
pub mod delta;
pub mod index;
pub mod props;
pub mod stats;
pub mod store;
pub mod tx;

pub use delta::ChangeEvent;
pub use props::Properties;
pub use store::{EdgeData, GraphError, PropertyGraph, VertexData};
pub use tx::{NodeRef, Transaction, TxOp};
