//! Committed change events — the delta feed for view maintenance.
//!
//! Every mutation of the store produces a [`ChangeEvent`]. Events that
//! destroy information (element removal) carry the before-image, so a
//! downstream consumer can retract derived tuples without consulting a
//! pre-state snapshot. Property/label changes identify the touched
//! element and the before/after value of the changed slot — fine-grained
//! exactly as the paper's FGN property demands.

use pgq_common::ids::{EdgeId, VertexId};
use pgq_common::intern::Symbol;
use pgq_common::value::Value;

use crate::store::{EdgeData, VertexData};

/// A single committed change to the graph.
#[derive(Clone, Debug, PartialEq)]
pub enum ChangeEvent {
    /// A vertex was created (its data is readable from the post-state).
    VertexAdded {
        /// The new vertex.
        id: VertexId,
    },
    /// A vertex was deleted; `data` is its before-image.
    VertexRemoved {
        /// The removed vertex.
        id: VertexId,
        /// Its labels and properties at removal time.
        data: VertexData,
    },
    /// An edge was created.
    EdgeAdded {
        /// The new edge.
        id: EdgeId,
    },
    /// An edge was deleted; `data` is its before-image.
    EdgeRemoved {
        /// The removed edge.
        id: EdgeId,
        /// Its endpoints, type and properties at removal time.
        data: EdgeData,
    },
    /// A label was attached to an existing vertex.
    LabelAdded {
        /// The vertex.
        id: VertexId,
        /// The attached label.
        label: Symbol,
    },
    /// A label was detached from a vertex.
    LabelRemoved {
        /// The vertex.
        id: VertexId,
        /// The detached label.
        label: Symbol,
    },
    /// A vertex property changed; `Value::Null` encodes "absent".
    VertexPropChanged {
        /// The vertex.
        id: VertexId,
        /// The property key.
        key: Symbol,
        /// Previous value (`Null` = absent).
        old: Value,
        /// New value (`Null` = removed).
        new: Value,
    },
    /// An edge property changed; `Value::Null` encodes "absent".
    EdgePropChanged {
        /// The edge.
        id: EdgeId,
        /// The property key.
        key: Symbol,
        /// Previous value (`Null` = absent).
        old: Value,
        /// New value (`Null` = removed).
        new: Value,
    },
}

impl ChangeEvent {
    /// The vertex this event touches, if any.
    pub fn touched_vertex(&self) -> Option<VertexId> {
        match self {
            ChangeEvent::VertexAdded { id }
            | ChangeEvent::VertexRemoved { id, .. }
            | ChangeEvent::LabelAdded { id, .. }
            | ChangeEvent::LabelRemoved { id, .. }
            | ChangeEvent::VertexPropChanged { id, .. } => Some(*id),
            _ => None,
        }
    }

    /// The edge this event touches, if any.
    pub fn touched_edge(&self) -> Option<EdgeId> {
        match self {
            ChangeEvent::EdgeAdded { id }
            | ChangeEvent::EdgeRemoved { id, .. }
            | ChangeEvent::EdgePropChanged { id, .. } => Some(*id),
            _ => None,
        }
    }

    /// Is this a structural event (element added/removed) as opposed to a
    /// fine-grained property/label update?
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            ChangeEvent::VertexAdded { .. }
                | ChangeEvent::VertexRemoved { .. }
                | ChangeEvent::EdgeAdded { .. }
                | ChangeEvent::EdgeRemoved { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touched_accessors() {
        let ev = ChangeEvent::VertexAdded { id: VertexId(4) };
        assert_eq!(ev.touched_vertex(), Some(VertexId(4)));
        assert_eq!(ev.touched_edge(), None);
        assert!(ev.is_structural());

        let ev = ChangeEvent::EdgePropChanged {
            id: EdgeId(9),
            key: Symbol::intern("w"),
            old: Value::Null,
            new: Value::Int(1),
        };
        assert_eq!(ev.touched_edge(), Some(EdgeId(9)));
        assert!(!ev.is_structural());
    }
}
