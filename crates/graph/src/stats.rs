//! Summary statistics over a property graph — used by benchmark reports
//! and by examples to describe generated workloads.

use pgq_common::intern::Symbol;

use crate::store::PropertyGraph;

/// Aggregate statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Total vertices.
    pub vertices: usize,
    /// Total edges.
    pub edges: usize,
    /// `(label, count)` pairs sorted by label name.
    pub label_counts: Vec<(Symbol, usize)>,
    /// `(edge type, count)` pairs sorted by type name.
    pub type_counts: Vec<(Symbol, usize)>,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Average out-degree.
    pub avg_out_degree: f64,
}

impl GraphStats {
    /// Compute statistics for `g`.
    pub fn of(g: &PropertyGraph) -> GraphStats {
        let mut label_counts: Vec<(Symbol, usize)> = g
            .labels()
            .map(|l| (l, g.vertices_with_label(l).len()))
            .filter(|(_, n)| *n > 0)
            .collect();
        label_counts.sort_by_key(|(l, _)| l.resolve());
        let mut type_counts: Vec<(Symbol, usize)> = g
            .edge_types()
            .map(|t| (t, g.edges_with_type(t).len()))
            .filter(|(_, n)| *n > 0)
            .collect();
        type_counts.sort_by_key(|(t, _)| t.resolve());

        let mut max_out = 0usize;
        let mut total_out = 0usize;
        for v in g.vertex_ids() {
            let d = g.out_edges(v).len();
            max_out = max_out.max(d);
            total_out += d;
        }
        let n = g.vertex_count();
        GraphStats {
            vertices: n,
            edges: g.edge_count(),
            label_counts,
            type_counts,
            max_out_degree: max_out,
            avg_out_degree: if n == 0 {
                0.0
            } else {
                total_out as f64 / n as f64
            },
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "|V| = {}, |E| = {}", self.vertices, self.edges)?;
        for (l, n) in &self.label_counts {
            writeln!(f, "  :{l} × {n}")?;
        }
        for (t, n) in &self.type_counts {
            writeln!(f, "  [:{t}] × {n}")?;
        }
        write!(
            f,
            "  out-degree: avg {:.2}, max {}",
            self.avg_out_degree, self.max_out_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::Properties;

    #[test]
    fn stats_of_small_graph() {
        let mut g = PropertyGraph::new();
        let s = |x: &str| Symbol::intern(x);
        let (a, _) = g.add_vertex([s("Post")], Properties::new());
        let (b, _) = g.add_vertex([s("Comm")], Properties::new());
        let (c, _) = g.add_vertex([s("Comm")], Properties::new());
        g.add_edge(a, b, s("REPLY"), Properties::new()).unwrap();
        g.add_edge(b, c, s("REPLY"), Properties::new()).unwrap();

        let st = GraphStats::of(&g);
        assert_eq!(st.vertices, 3);
        assert_eq!(st.edges, 2);
        assert!(st.label_counts.contains(&(s("Comm"), 2)));
        assert_eq!(st.max_out_degree, 1);
        assert!((st.avg_out_degree - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_stats() {
        let st = GraphStats::of(&PropertyGraph::new());
        assert_eq!(st.vertices, 0);
        assert_eq!(st.avg_out_degree, 0.0);
    }
}
