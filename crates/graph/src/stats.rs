//! Graph statistics: the live **cardinality catalog** maintained from
//! the store's mutators, and the [`GraphStats`] summary built from it.
//!
//! The catalog is the statistics substrate of the cost-based join-order
//! planner (`pgq_algebra::plan`): label/type counts come straight from
//! the secondary indexes, and this module adds the quantities the
//! indexes cannot answer in O(1) — the maximum out-degree (via a degree
//! histogram), per-edge-type distinct source/target counts (so the
//! planner can estimate join fan-out as `|type| / distinct sources`),
//! and per-property-key distinct-value estimates (equality-filter
//! selectivity). Nothing here ever rescans vertices or edges.
//!
//! Two design points keep the write side off the transaction hot path:
//!
//! * **Deferred integration.** A store mutation appends a compact,
//!   pre-hashed `PendingDelta` (one `Vec` push) instead of touching
//!   counter maps; deltas are integrated in order when the catalog is
//!   *read* (view registration, stats reports) or when the pending log
//!   reaches `MAX_PENDING` (4096). Writes stay at a hash plus a push
//!   (~15 ns); integration is amortised O(1) per mutation and runs
//!   outside measured transactions in steady state. An eager version of
//!   these counters showed up as a 7–10% regression on the sub-µs IVM
//!   suites.
//! * **Counting sketches.** Distinct counts (property values, per-type
//!   endpoints) use fixed-size bucket-count sketches with a
//!   linear-counting estimator: exact for small cardinalities (modulo a
//!   1/`SKETCH_BUCKETS` collision), within a few percent at planner
//!   scales, O(1) memory per key, deletion-safe (buckets hold
//!   occurrence counts).

use std::hash::BuildHasher;
use std::ops::Deref;
use std::sync::MutexGuard;

use pgq_common::fxhash::{FxBuildHasher, FxHashMap};
use pgq_common::ids::VertexId;
use pgq_common::intern::Symbol;
use pgq_common::value::Value;

use crate::props::Properties;
use crate::store::PropertyGraph;

/// Buckets per counting sketch (power of two; 1 KiB of counters).
const SKETCH_BUCKETS: usize = 256;

/// Pending-log length that triggers inline integration, bounding the
/// log's memory on write-only workloads.
const MAX_PENDING: usize = 4096;

/// A deletion-safe distinct-count sketch: per-bucket occurrence counts
/// plus a linear-counting estimator over occupied buckets.
#[derive(Debug, Clone, Default, PartialEq)]
struct CountSketch {
    /// Occurrences per hash bucket (allocated on first use).
    counts: Vec<u32>,
    /// Buckets with a non-zero count.
    occupied: u32,
    /// Total tracked occurrences.
    total: u64,
}

impl CountSketch {
    #[inline]
    fn bucket(h: u64) -> usize {
        // Fx mixes the high bits best (final multiply).
        (h >> 32) as usize & (SKETCH_BUCKETS - 1)
    }

    fn add(&mut self, h: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; SKETCH_BUCKETS];
        }
        let c = &mut self.counts[Self::bucket(h)];
        if *c == 0 {
            self.occupied += 1;
        }
        *c += 1;
        self.total += 1;
    }

    /// Remove one occurrence; returns `true` when the sketch is empty
    /// afterwards (so the caller can drop it from its outer map).
    fn remove(&mut self, h: u64) -> bool {
        if let Some(c) = self.counts.get_mut(Self::bucket(h)) {
            if *c > 0 {
                *c -= 1;
                if *c == 0 {
                    self.occupied -= 1;
                }
                self.total -= 1;
            }
        }
        self.total == 0
    }

    /// Linear-counting distinct estimate: exact (after rounding) while
    /// occupancy is low, `total` once the sketch saturates.
    fn distinct(&self) -> usize {
        let k = self.occupied as usize;
        if k == 0 {
            return 0;
        }
        if k >= SKETCH_BUCKETS {
            return self.total as usize;
        }
        let n = SKETCH_BUCKETS as f64;
        let est = (-n * (1.0 - k as f64 / n).ln()).round() as usize;
        est.clamp(1, self.total as usize)
    }
}

#[inline]
fn value_hash(v: &Value) -> u64 {
    FxBuildHasher::default().hash_one(v)
}

#[inline]
fn id_hash(v: VertexId) -> u64 {
    FxBuildHasher::default().hash_one(v.0)
}

/// Per-edge-type endpoint sketches.
#[derive(Debug, Clone, Default, PartialEq)]
struct TypeCard {
    /// Distinct-source sketch.
    src: CountSketch,
    /// Distinct-target sketch.
    dst: CountSketch,
}

/// One pre-hashed statistics delta awaiting integration.
#[derive(Debug, Clone, Copy)]
enum PendingDelta {
    /// A vertex (`on_vertex`) or edge property occurrence appeared
    /// (`add`) or disappeared.
    Prop {
        /// Property key.
        key: Symbol,
        /// Hash of the property value.
        hash: u64,
        /// Vertex property (vs edge property)?
        on_vertex: bool,
        /// Appeared (vs disappeared)?
        add: bool,
    },
    /// An edge appeared (`add`) or disappeared.
    Edge {
        /// Edge type.
        ty: Symbol,
        /// Hash of the source vertex id.
        src: u64,
        /// Hash of the target vertex id.
        dst: u64,
        /// The source's out-degree *before* the mutation.
        old_out: u32,
        /// Appeared (vs disappeared)?
        add: bool,
    },
}

/// The integrated counters of the cardinality catalog.
///
/// Obtained through [`PropertyGraph::catalog`], which integrates any
/// pending deltas first; all reads below are O(1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CardinalityCatalog {
    /// Dense out-degree histogram: `out_hist[d]` = vertices with
    /// out-degree `d` (index 0 unused — degree-0 vertices are implicit;
    /// trailing zero buckets are trimmed so the form is canonical).
    out_hist: Vec<u32>,
    /// Current maximum out-degree.
    max_out: u32,
    /// Per-edge-type endpoint sketches.
    per_type: FxHashMap<Symbol, TypeCard>,
    /// Distinct-value sketches for vertex property keys.
    vprops: FxHashMap<Symbol, CountSketch>,
    /// Distinct-value sketches for edge property keys.
    eprops: FxHashMap<Symbol, CountSketch>,
}

impl CardinalityCatalog {
    /// Maximum out-degree over all vertices.
    pub fn max_out_degree(&self) -> usize {
        self.max_out as usize
    }

    /// Σ out-degree² over all vertices — the second moment of the
    /// out-degree histogram. Measures wedge blow-up: a binary join over
    /// two edge hops materialises Σ deg² intermediate wedges, so the
    /// planner compares this against the uniform-degree assumption
    /// (E²/sources) to quantify skew.
    pub fn out_degree_second_moment(&self) -> u64 {
        self.out_hist
            .iter()
            .enumerate()
            .map(|(d, &n)| (d as u64) * (d as u64) * n as u64)
            .sum()
    }

    /// Number of vertices with at least one outgoing edge (the support
    /// of the out-degree histogram).
    pub fn out_degree_source_count(&self) -> u64 {
        self.out_hist.iter().map(|&n| n as u64).sum()
    }

    /// Estimated number of distinct vertices with at least one outgoing
    /// edge of type `ty`. `|type| / distinct_sources` is the type's
    /// average out-fan-out.
    pub fn distinct_sources(&self, ty: Symbol) -> usize {
        self.per_type.get(&ty).map_or(0, |t| t.src.distinct())
    }

    /// Estimated number of distinct vertices with at least one incoming
    /// edge of type `ty`.
    pub fn distinct_targets(&self, ty: Symbol) -> usize {
        self.per_type.get(&ty).map_or(0, |t| t.dst.distinct())
    }

    /// Estimated number of distinct values stored under vertex property
    /// `key` (0 when the key is absent).
    pub fn vertex_prop_distinct(&self, key: Symbol) -> usize {
        self.vprops.get(&key).map_or(0, |c| c.distinct())
    }

    /// Number of vertices currently carrying vertex property `key`.
    pub fn vertex_prop_count(&self, key: Symbol) -> u64 {
        self.vprops.get(&key).map_or(0, |c| c.total)
    }

    /// Estimated number of distinct values stored under edge property
    /// `key`.
    pub fn edge_prop_distinct(&self, key: Symbol) -> usize {
        self.eprops.get(&key).map_or(0, |c| c.distinct())
    }

    /// Number of edges currently carrying edge property `key`.
    pub fn edge_prop_count(&self, key: Symbol) -> u64 {
        self.eprops.get(&key).map_or(0, |c| c.total)
    }

    /// Vertex property keys currently carried by at least one vertex.
    pub fn vertex_prop_keys(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.vprops.keys().copied()
    }

    /// Edge property keys currently carried by at least one edge.
    pub fn edge_prop_keys(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.eprops.keys().copied()
    }

    /// Apply one delta. Deltas are applied in mutation order, so the
    /// degree-histogram transitions replay exactly.
    fn apply(&mut self, d: PendingDelta) {
        match d {
            PendingDelta::Prop {
                key,
                hash,
                on_vertex,
                add,
            } => {
                let map = if on_vertex {
                    &mut self.vprops
                } else {
                    &mut self.eprops
                };
                if add {
                    map.entry(key).or_default().add(hash);
                } else if let Some(c) = map.get_mut(&key) {
                    if c.remove(hash) {
                        map.remove(&key);
                    }
                }
            }
            PendingDelta::Edge {
                ty,
                src,
                dst,
                old_out,
                add,
            } => {
                if add {
                    let t = self.per_type.entry(ty).or_default();
                    t.src.add(src);
                    t.dst.add(dst);
                    self.degree_transition(old_out, old_out + 1);
                } else {
                    if let Some(t) = self.per_type.get_mut(&ty) {
                        let src_empty = t.src.remove(src);
                        let dst_empty = t.dst.remove(dst);
                        if src_empty && dst_empty {
                            self.per_type.remove(&ty);
                        }
                    }
                    self.degree_transition(old_out, old_out - 1);
                }
            }
        }
    }

    /// Move one vertex between out-degree histogram buckets (degree 0 is
    /// implicit). The max tracker only ever rises by one per insertion,
    /// so the decrement walk below is amortised O(1).
    fn degree_transition(&mut self, from: u32, to: u32) {
        if from > 0 {
            self.out_hist[from as usize] -= 1;
        }
        if to > 0 {
            if self.out_hist.len() <= to as usize {
                self.out_hist.resize(to as usize + 1, 0);
            }
            self.out_hist[to as usize] += 1;
            if to > self.max_out {
                self.max_out = to;
            }
        }
        while self.max_out > 0 && self.out_hist[self.max_out as usize] == 0 {
            self.max_out -= 1;
        }
        // Keep the representation canonical (== a from-scratch rebuild):
        // no trailing zero buckets. `truncate` never reallocates.
        if self.max_out == 0 {
            self.out_hist.clear();
        } else {
            self.out_hist.truncate(self.max_out as usize + 1);
        }
    }
}

/// The store-owned catalog cell: integrated counters plus the pending
/// delta log. Store mutators append through the `on_*` hooks (cheap:
/// hash + push); readers integrate through [`PropertyGraph::catalog`].
#[derive(Debug, Default, Clone)]
pub(crate) struct CatalogCell {
    counters: CardinalityCatalog,
    pending: Vec<PendingDelta>,
}

impl CatalogCell {
    #[inline]
    pub(crate) fn on_vertex_added(&mut self, props: &Properties) {
        if !props.is_empty() {
            self.push_props(props, true, true);
            self.maybe_integrate();
        }
    }

    #[inline]
    pub(crate) fn on_vertex_removed(&mut self, props: &Properties) {
        if !props.is_empty() {
            self.push_props(props, true, false);
            self.maybe_integrate();
        }
    }

    fn push_props(&mut self, props: &Properties, on_vertex: bool, add: bool) {
        for (key, v) in props.iter() {
            self.push_prop_delta(key, v, on_vertex, add);
        }
    }

    /// Append one property-occurrence delta (the fold primitive used by
    /// [`PropertyGraph::catalog_fold_events`](crate::store)).
    #[inline]
    pub(crate) fn push_prop_delta(&mut self, key: Symbol, v: &Value, on_vertex: bool, add: bool) {
        self.pending.push(PendingDelta::Prop {
            key,
            hash: value_hash(v),
            on_vertex,
            add,
        });
    }

    /// Append one edge-appeared/disappeared delta without touching the
    /// edge's properties (the fold pushes those separately, patched to
    /// their value at mutation time).
    #[inline]
    pub(crate) fn push_edge_delta(
        &mut self,
        ty: Symbol,
        src: VertexId,
        dst: VertexId,
        old_src_out: usize,
        add: bool,
    ) {
        self.pending.push(PendingDelta::Edge {
            ty,
            src: id_hash(src),
            dst: id_hash(dst),
            old_out: old_src_out as u32,
            add,
        });
    }

    /// `old_src_out` is the source's out-degree *before* this edge.
    #[inline]
    pub(crate) fn on_edge_added(
        &mut self,
        ty: Symbol,
        src: VertexId,
        dst: VertexId,
        old_src_out: usize,
        props: &Properties,
    ) {
        self.push_edge_delta(ty, src, dst, old_src_out, true);
        if !props.is_empty() {
            self.push_props(props, false, true);
        }
        self.maybe_integrate();
    }

    /// `old_src_out` is the source's out-degree *before* the removal.
    #[inline]
    pub(crate) fn on_edge_removed(
        &mut self,
        ty: Symbol,
        src: VertexId,
        dst: VertexId,
        old_src_out: usize,
        props: &Properties,
    ) {
        self.push_edge_delta(ty, src, dst, old_src_out, false);
        if !props.is_empty() {
            self.push_props(props, false, false);
        }
        self.maybe_integrate();
    }

    #[inline]
    pub(crate) fn on_vertex_prop_changed(&mut self, key: Symbol, old: &Value, new: &Value) {
        self.push_prop_change(key, old, new, true);
    }

    #[inline]
    pub(crate) fn on_edge_prop_changed(&mut self, key: Symbol, old: &Value, new: &Value) {
        self.push_prop_change(key, old, new, false);
    }

    fn push_prop_change(&mut self, key: Symbol, old: &Value, new: &Value, on_vertex: bool) {
        if !old.is_null() {
            self.pending.push(PendingDelta::Prop {
                key,
                hash: value_hash(old),
                on_vertex,
                add: false,
            });
        }
        if !new.is_null() {
            self.pending.push(PendingDelta::Prop {
                key,
                hash: value_hash(new),
                on_vertex,
                add: true,
            });
        }
        self.maybe_integrate();
    }

    #[inline]
    pub(crate) fn maybe_integrate(&mut self) {
        if self.pending.len() >= MAX_PENDING {
            self.integrate();
        }
    }

    /// Fold every pending delta into the counters, in mutation order.
    pub(crate) fn integrate(&mut self) {
        for i in 0..self.pending.len() {
            let d = self.pending[i];
            self.counters.apply(d);
        }
        self.pending.clear();
    }
}

/// Read guard over the integrated [`CardinalityCatalog`] (see
/// [`PropertyGraph::catalog`]).
pub struct CatalogRef<'a>(MutexGuard<'a, CatalogCell>);

impl Deref for CatalogRef<'_> {
    type Target = CardinalityCatalog;

    fn deref(&self) -> &CardinalityCatalog {
        &self.0.counters
    }
}

impl std::fmt::Debug for CatalogRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

impl PropertyGraph {
    /// The live cardinality catalog (degree histogram, per-type distinct
    /// endpoints, distinct property values), integrated up to the last
    /// committed mutation.
    ///
    /// Mutators append compact pre-hashed deltas; this accessor
    /// integrates them (amortised O(1) per mutation since the last
    /// read) and returns a read guard. Registration-time snapshots and
    /// stats reports pay the integration; measured transactions never
    /// do.
    pub fn catalog(&self) -> CatalogRef<'_> {
        let mut guard = self
            .catalog_cell()
            .lock()
            .expect("catalog mutex poisoned (a catalog update panicked)");
        guard.integrate();
        CatalogRef(guard)
    }
}

/// Recompute the catalog from scratch — the ground truth the deferred
/// counter maintenance must never drift from. Test-only: production
/// code reads the incrementally maintained counters.
#[cfg(test)]
pub(crate) fn rescan_catalog(g: &PropertyGraph) -> CardinalityCatalog {
    let mut cell = CatalogCell::default();
    for v in g.vertex_ids() {
        cell.on_vertex_added(&g.vertex(v).expect("listed vertex exists").props);
    }
    let mut degrees: FxHashMap<VertexId, usize> = FxHashMap::default();
    for e in g.edge_ids() {
        let d = g.edge(e).expect("listed edge exists");
        let deg = degrees.entry(d.src).or_insert(0);
        cell.on_edge_added(d.ty, d.src, d.dst, *deg, &d.props);
        *deg += 1;
    }
    cell.integrate();
    cell.counters
}

/// Aggregate statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Total vertices.
    pub vertices: usize,
    /// Total edges.
    pub edges: usize,
    /// `(label, count)` pairs sorted by label name.
    pub label_counts: Vec<(Symbol, usize)>,
    /// `(edge type, count)` pairs sorted by type name.
    pub type_counts: Vec<(Symbol, usize)>,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Average out-degree.
    pub avg_out_degree: f64,
}

impl GraphStats {
    /// Compute statistics for `g`. Reads the label/type indexes and the
    /// live [`CardinalityCatalog`] — O(labels + types + pending deltas),
    /// never O(V + E).
    pub fn of(g: &PropertyGraph) -> GraphStats {
        let mut label_counts: Vec<(Symbol, usize)> = g
            .labels()
            .map(|l| (l, g.vertices_with_label(l).len()))
            .filter(|(_, n)| *n > 0)
            .collect();
        label_counts.sort_by_key(|(l, _)| l.resolve());
        let mut type_counts: Vec<(Symbol, usize)> = g
            .edge_types()
            .map(|t| (t, g.edges_with_type(t).len()))
            .filter(|(_, n)| *n > 0)
            .collect();
        type_counts.sort_by_key(|(t, _)| t.resolve());

        let n = g.vertex_count();
        GraphStats {
            vertices: n,
            edges: g.edge_count(),
            label_counts,
            type_counts,
            max_out_degree: g.catalog().max_out_degree(),
            avg_out_degree: if n == 0 {
                0.0
            } else {
                // Every edge contributes exactly one outgoing endpoint.
                g.edge_count() as f64 / n as f64
            },
        }
    }

    /// The pre-catalog O(V + E) rescan, kept as the test oracle for
    /// [`GraphStats::of`].
    #[cfg(test)]
    fn of_rescan(g: &PropertyGraph) -> GraphStats {
        let mut from_catalog = GraphStats::of(g);
        let mut max_out = 0usize;
        let mut total_out = 0usize;
        for v in g.vertex_ids() {
            let d = g.out_edges(v).len();
            max_out = max_out.max(d);
            total_out += d;
        }
        from_catalog.max_out_degree = max_out;
        from_catalog.avg_out_degree = if g.vertex_count() == 0 {
            0.0
        } else {
            total_out as f64 / g.vertex_count() as f64
        };
        from_catalog
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "|V| = {}, |E| = {}", self.vertices, self.edges)?;
        for (l, n) in &self.label_counts {
            writeln!(f, "  :{l} × {n}")?;
        }
        for (t, n) in &self.type_counts {
            writeln!(f, "  [:{t}] × {n}")?;
        }
        write!(
            f,
            "  out-degree: avg {:.2}, max {}",
            self.avg_out_degree, self.max_out_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::Properties;
    use crate::store::GraphError;
    use crate::tx::Transaction;
    use pgq_common::ids::EdgeId;
    use proptest::prelude::*;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn stats_of_small_graph() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([s("Post")], Properties::new());
        let (b, _) = g.add_vertex([s("Comm")], Properties::new());
        let (c, _) = g.add_vertex([s("Comm")], Properties::new());
        g.add_edge(a, b, s("REPLY"), Properties::new()).unwrap();
        g.add_edge(b, c, s("REPLY"), Properties::new()).unwrap();

        let st = GraphStats::of(&g);
        assert_eq!(st.vertices, 3);
        assert_eq!(st.edges, 2);
        assert!(st.label_counts.contains(&(s("Comm"), 2)));
        assert_eq!(st.max_out_degree, 1);
        assert!((st.avg_out_degree - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_stats() {
        let st = GraphStats::of(&PropertyGraph::new());
        assert_eq!(st.vertices, 0);
        assert_eq!(st.avg_out_degree, 0.0);
    }

    #[test]
    fn catalog_tracks_type_endpoints_and_props() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex(
            [s("User")],
            Properties::from_iter([("lang", Value::str("en"))]),
        );
        let (b, _) = g.add_vertex(
            [s("User")],
            Properties::from_iter([("lang", Value::str("en"))]),
        );
        let (c, _) = g.add_vertex(
            [s("User")],
            Properties::from_iter([("lang", Value::str("de"))]),
        );
        g.add_edge(a, b, s("KNOWS"), Properties::new()).unwrap();
        g.add_edge(a, c, s("KNOWS"), Properties::new()).unwrap();
        let (e, _) = g.add_edge(b, c, s("LIKES"), Properties::new()).unwrap();

        {
            let cat = g.catalog();
            assert_eq!(cat.distinct_sources(s("KNOWS")), 1, "only `a` knows");
            assert_eq!(cat.distinct_targets(s("KNOWS")), 2);
            assert_eq!(cat.vertex_prop_distinct(s("lang")), 2, "en + de");
            assert_eq!(cat.vertex_prop_count(s("lang")), 3);
            assert_eq!(cat.max_out_degree(), 2);
        }

        // Deletion unwinds every counter.
        g.remove_edge(e).unwrap();
        assert_eq!(g.catalog().distinct_sources(s("LIKES")), 0);
        g.set_vertex_prop(c, s("lang"), Value::str("en")).unwrap();
        assert_eq!(g.catalog().vertex_prop_distinct(s("lang")), 1);
        g.set_vertex_prop(c, s("lang"), Value::Null).unwrap();
        assert_eq!(g.catalog().vertex_prop_count(s("lang")), 2);
    }

    /// One random catalog-relevant operation. Indices are reduced modulo
    /// the live population at apply time, as in the differential oracle.
    #[derive(Clone, Debug)]
    enum Op {
        AddVertex { lang: usize, score: Option<i64> },
        AddEdge { from: usize, to: usize, ty: usize },
        DeleteVertex { pick: usize },
        DeleteEdge { pick: usize },
        SetProp { pick: usize, lang: usize },
        ClearProp { pick: usize },
        SetEdgeProp { pick: usize, weight: i64 },
        FailingTx,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..4usize, 0..6i64).prop_map(|(lang, score)| Op::AddVertex {
                lang,
                score: (score < 5).then_some(score),
            }),
            (any::<usize>(), any::<usize>(), 0..3usize).prop_map(|(from, to, ty)| Op::AddEdge {
                from,
                to,
                ty
            }),
            any::<usize>().prop_map(|pick| Op::DeleteVertex { pick }),
            any::<usize>().prop_map(|pick| Op::DeleteEdge { pick }),
            (any::<usize>(), 0..4usize).prop_map(|(pick, lang)| Op::SetProp { pick, lang }),
            any::<usize>().prop_map(|pick| Op::ClearProp { pick }),
            (any::<usize>(), 0..5i64).prop_map(|(pick, weight)| Op::SetEdgeProp { pick, weight }),
            Just(Op::FailingTx),
        ]
    }

    const LANGS: &[&str] = &["en", "de", "fr", "hu"];
    const TYPES: &[&str] = &["KNOWS", "LIKES", "REPLY"];

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 32,
            ..ProptestConfig::default()
        })]

        /// The tentpole invariant: across randomized transaction scripts
        /// — including failing transactions that exercise the rollback
        /// path — the deferred counters never drift from a from-scratch
        /// rescan, and the catalog-backed [`GraphStats::of`] equals the
        /// old O(V+E) computation.
        #[test]
        fn catalog_never_drifts_from_rescan(
            ops in proptest::collection::vec(op_strategy(), 1..40),
        ) {
            let mut g = PropertyGraph::new();
            for op in &ops {
                let vertices: Vec<VertexId> = {
                    let mut v: Vec<_> = g.vertex_ids().collect();
                    v.sort_unstable();
                    v
                };
                let edges: Vec<EdgeId> = {
                    let mut e: Vec<_> = g.edge_ids().collect();
                    e.sort_unstable();
                    e
                };
                let mut tx = Transaction::new();
                match op {
                    Op::AddVertex { lang, score } => {
                        let mut props =
                            Properties::from_iter([("lang", Value::str(LANGS[*lang]))]);
                        if let Some(sc) = score {
                            props.set(s("score"), Value::Int(*sc));
                        }
                        tx.create_vertex([s("N")], props);
                    }
                    Op::AddEdge { from, to, ty } if !vertices.is_empty() => {
                        tx.create_edge(
                            vertices[from % vertices.len()],
                            vertices[to % vertices.len()],
                            s(TYPES[*ty]),
                            Properties::from_iter([("w", Value::Int(*ty as i64))]),
                        );
                    }
                    Op::DeleteVertex { pick } if !vertices.is_empty() => {
                        tx.delete_vertex(vertices[pick % vertices.len()], true);
                    }
                    Op::DeleteEdge { pick } if !edges.is_empty() => {
                        tx.delete_edge(edges[pick % edges.len()]);
                    }
                    Op::SetProp { pick, lang } if !vertices.is_empty() => {
                        tx.set_vertex_prop(
                            vertices[pick % vertices.len()],
                            s("lang"),
                            Value::str(LANGS[*lang]),
                        );
                    }
                    Op::ClearProp { pick } if !vertices.is_empty() => {
                        tx.set_vertex_prop(vertices[pick % vertices.len()], s("lang"), Value::Null);
                    }
                    Op::SetEdgeProp { pick, weight } if !edges.is_empty() => {
                        tx.set_edge_prop(edges[pick % edges.len()], s("w"), Value::Int(*weight));
                    }
                    Op::FailingTx => {
                        // Real work first, then a failing op: the whole
                        // transaction rolls back and must leave the
                        // counters exactly where they were.
                        let v = tx.create_vertex(
                            [s("N")],
                            Properties::from_iter([("lang", Value::str("zz"))]),
                        );
                        tx.create_edge(v, v, s("KNOWS"), Properties::new());
                        tx.delete_edge(EdgeId(u64::MAX));
                    }
                    _ => {}
                }
                let result = g.apply(&tx);
                if matches!(op, Op::FailingTx) {
                    prop_assert!(matches!(result, Err(GraphError::EdgeNotFound(_))));
                }
                prop_assert_eq!(
                    &*g.catalog(),
                    &rescan_catalog(&g),
                    "catalog drifted after {:?}",
                    op
                );
                prop_assert_eq!(GraphStats::of(&g), GraphStats::of_rescan(&g));
            }
        }
    }
}
