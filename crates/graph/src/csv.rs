//! Plain-text import/export of property graphs.
//!
//! The format is a line-oriented, pipe-separated layout inspired by the
//! LDBC/Train Benchmark CSV dumps the paper's evaluation tradition uses:
//!
//! ```text
//! V|<id>|<label;label>|<key=typed-value&key=typed-value>
//! E|<id>|<src>|<dst>|<TYPE>|<props>
//! ```
//!
//! Typed values are tagged (`i:`, `f:`, `s:`, `b:`) and strings are
//! percent-escaped, so the format round-trips every atom. Collection
//! properties are rejected — in the paper's maintainable fragment the
//! stored data model is collection-free (bags only at query level).

use std::fmt::Write as _;

use pgq_common::ids::{EdgeId, VertexId};
use pgq_common::intern::Symbol;
use pgq_common::value::Value;

use crate::props::Properties;
use crate::store::{GraphError, PropertyGraph};

/// Errors from parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// Malformed line with 1-based line number and reason.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// Value type that cannot be serialised (lists/maps/paths).
    Unsupported(String),
    /// Store rejected an element (e.g. dangling edge).
    Graph(GraphError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Parse { line, reason } => write!(f, "line {line}: {reason}"),
            CsvError::Unsupported(t) => write!(f, "unsupported property type {t}"),
            CsvError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<GraphError> for CsvError {
    fn from(e: GraphError) -> Self {
        CsvError::Graph(e)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '|' => out.push_str("%7C"),
            '&' => out.push_str("%26"),
            '=' => out.push_str("%3D"),
            ';' => out.push_str("%3B"),
            '\n' => out.push_str("%0A"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 2 > bytes.len() && i + 2 > bytes.len() - 1 {
                return Err("truncated escape".into());
            }
            let hex = s
                .get(i + 1..i + 3)
                .ok_or_else(|| "truncated escape".to_string())?;
            let code = u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape %{hex}"))?;
            out.push(code as char);
            i += 3;
        } else {
            // Safe: we iterate at char boundaries only for ASCII '%'; copy
            // the raw char otherwise.
            let c = s[i..].chars().next().expect("in range");
            out.push(c);
            i += c.len_utf8();
        }
    }
    Ok(out)
}

fn encode_value(v: &Value) -> Result<String, CsvError> {
    Ok(match v {
        Value::Int(i) => format!("i:{i}"),
        Value::Float(f) => format!("f:{}", f.get()),
        Value::Bool(b) => format!("b:{b}"),
        Value::Str(s) => format!("s:{}", escape(s)),
        other => return Err(CsvError::Unsupported(other.type_name().into())),
    })
}

fn decode_value(s: &str, line: usize) -> Result<Value, CsvError> {
    let err = |reason: String| CsvError::Parse { line, reason };
    let (tag, rest) = s
        .split_once(':')
        .ok_or_else(|| err(format!("untagged value {s:?}")))?;
    Ok(match tag {
        "i" => Value::Int(rest.parse().map_err(|_| err(format!("bad int {rest:?}")))?),
        "f" => Value::float(
            rest.parse()
                .map_err(|_| err(format!("bad float {rest:?}")))?,
        ),
        "b" => Value::Bool(
            rest.parse()
                .map_err(|_| err(format!("bad bool {rest:?}")))?,
        ),
        "s" => Value::str(unescape(rest).map_err(err)?),
        _ => return Err(err(format!("unknown tag {tag:?}"))),
    })
}

fn encode_props(props: &Properties) -> Result<String, CsvError> {
    let mut out = String::new();
    for (i, (k, v)) in props.iter().enumerate() {
        if i > 0 {
            out.push('&');
        }
        let _ = write!(out, "{}={}", escape(&k.resolve()), encode_value(v)?);
    }
    Ok(out)
}

fn decode_props(s: &str, line: usize) -> Result<Properties, CsvError> {
    let mut props = Properties::new();
    if s.is_empty() {
        return Ok(props);
    }
    for pair in s.split('&') {
        let (k, v) = pair.split_once('=').ok_or_else(|| CsvError::Parse {
            line,
            reason: format!("property without '=': {pair:?}"),
        })?;
        let key = unescape(k).map_err(|reason| CsvError::Parse { line, reason })?;
        props.set(Symbol::intern(&key), decode_value(v, line)?);
    }
    Ok(props)
}

/// Serialise a graph to the text format. Deterministic: vertices and
/// edges are emitted in id order.
pub fn to_text(g: &PropertyGraph) -> Result<String, CsvError> {
    let mut out = String::new();
    let mut vids: Vec<VertexId> = g.vertex_ids().collect();
    vids.sort_unstable();
    for v in vids {
        let data = g.vertex(v).expect("listed id");
        let labels = data
            .labels
            .iter()
            .map(|l| escape(&l.resolve()))
            .collect::<Vec<_>>()
            .join(";");
        let _ = writeln!(
            out,
            "V|{}|{}|{}",
            v.raw(),
            labels,
            encode_props(&data.props)?
        );
    }
    let mut eids: Vec<EdgeId> = g.edge_ids().collect();
    eids.sort_unstable();
    for e in eids {
        let data = g.edge(e).expect("listed id");
        let _ = writeln!(
            out,
            "E|{}|{}|{}|{}|{}",
            e.raw(),
            data.src.raw(),
            data.dst.raw(),
            escape(&data.ty.resolve()),
            encode_props(&data.props)?
        );
    }
    Ok(out)
}

/// Parse the text format into a fresh graph.
pub fn from_text(text: &str) -> Result<PropertyGraph, CsvError> {
    let mut g = PropertyGraph::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        // Only strip the carriage return: trailing spaces can be part of
        // an (escaped) string value in the final field.
        let content = raw.strip_suffix('\r').unwrap_or(raw);
        if content.trim().is_empty() || content.trim_start().starts_with('#') {
            continue;
        }
        let mut parts = content.split('|');
        let kind = parts.next().unwrap_or("");
        let err = |reason: &str| CsvError::Parse {
            line,
            reason: reason.to_string(),
        };
        match kind {
            "V" => {
                let id: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad vertex id"))?;
                let labels_field = parts.next().ok_or_else(|| err("missing labels"))?;
                let props_field = parts.next().unwrap_or("");
                let labels: Vec<Symbol> = labels_field
                    .split(';')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        unescape(s)
                            .map(|u| Symbol::intern(&u))
                            .map_err(|reason| CsvError::Parse { line, reason })
                    })
                    .collect::<Result<_, _>>()?;
                if g.has_vertex(VertexId(id)) {
                    return Err(err("duplicate vertex id"));
                }
                g.insert_vertex_raw(VertexId(id), labels, decode_props(props_field, line)?);
            }
            "E" => {
                let id: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad edge id"))?;
                let src: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad src id"))?;
                let dst: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad dst id"))?;
                let ty = parts.next().ok_or_else(|| err("missing type"))?;
                let props_field = parts.next().unwrap_or("");
                if !g.has_vertex(VertexId(src)) {
                    return Err(CsvError::Graph(GraphError::VertexNotFound(VertexId(src))));
                }
                if !g.has_vertex(VertexId(dst)) {
                    return Err(CsvError::Graph(GraphError::VertexNotFound(VertexId(dst))));
                }
                if g.has_edge(EdgeId(id)) {
                    return Err(err("duplicate edge id"));
                }
                let ty = unescape(ty)
                    .map(|u| Symbol::intern(&u))
                    .map_err(|reason| CsvError::Parse { line, reason })?;
                g.insert_edge_raw(
                    EdgeId(id),
                    VertexId(src),
                    VertexId(dst),
                    ty,
                    decode_props(props_field, line)?,
                );
            }
            _ => return Err(err("line must start with V or E")),
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn sample() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex(
            [sym("Post")],
            Properties::from_iter([("lang", Value::str("en")), ("n", Value::Int(3))]),
        );
        let (b, _) = g.add_vertex(
            [sym("Comm"), sym("Msg")],
            Properties::from_iter([("score", Value::float(1.5))]),
        );
        g.add_edge(
            a,
            b,
            sym("REPLY"),
            Properties::from_iter([("w", Value::Bool(true))]),
        )
        .unwrap();
        g
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample();
        let text = to_text(&g).unwrap();
        let g2 = from_text(&text).unwrap();
        assert_eq!(g2.vertex_count(), g.vertex_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        let text2 = to_text(&g2).unwrap();
        assert_eq!(text, text2);
    }

    #[test]
    fn strings_with_delimiters_roundtrip() {
        let mut g = PropertyGraph::new();
        g.add_vertex(
            [sym("X")],
            Properties::from_iter([("s", Value::str("a|b&c=d;e%f"))]),
        );
        let text = to_text(&g).unwrap();
        let g2 = from_text(&text).unwrap();
        let v = g2.vertex_ids().next().unwrap();
        assert_eq!(g2.vertex_prop(v, sym("s")), Value::str("a|b&c=d;e%f"));
    }

    #[test]
    fn dangling_edge_rejected() {
        let text = "E|0|0|1|REPLY|";
        assert!(matches!(from_text(text), Err(CsvError::Graph(_))));
    }

    #[test]
    fn duplicate_vertex_rejected() {
        let text = "V|0|Post|\nV|0|Post|";
        assert!(matches!(from_text(text), Err(CsvError::Parse { .. })));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\nV|0|Post|\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.vertex_count(), 1);
    }

    #[test]
    fn list_property_rejected_on_export() {
        let mut g = PropertyGraph::new();
        g.add_vertex(
            [sym("X")],
            Properties::from_iter([("l", Value::list(vec![Value::Int(1)]))]),
        );
        assert!(matches!(to_text(&g), Err(CsvError::Unsupported(_))));
    }
}
