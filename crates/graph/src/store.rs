//! The property graph store.

use std::fmt;

use pgq_common::fxhash::FxHashMap;
use pgq_common::ids::{EdgeId, VertexId};
use pgq_common::intern::Symbol;
use pgq_common::value::Value;

use crate::delta::ChangeEvent;
use crate::index::GraphIndexes;
use crate::props::Properties;
use crate::stats::CatalogCell;

/// Payload of a vertex: label set + property map.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct VertexData {
    /// Labels, kept sorted and duplicate-free.
    pub labels: Vec<Symbol>,
    /// Property map.
    pub props: Properties,
}

impl VertexData {
    /// Does the vertex carry `label`?
    pub fn has_label(&self, label: Symbol) -> bool {
        self.labels.binary_search(&label).is_ok()
    }
}

/// Payload of an edge: endpoints (the paper's `st` function), single type,
/// property map.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeData {
    /// Source vertex.
    pub src: VertexId,
    /// Target vertex.
    pub dst: VertexId,
    /// Edge type.
    pub ty: Symbol,
    /// Property map.
    pub props: Properties,
}

/// Errors from store mutations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// Referenced vertex does not exist.
    VertexNotFound(VertexId),
    /// Referenced edge does not exist.
    EdgeNotFound(EdgeId),
    /// Attempt to delete a vertex that still has incident edges without
    /// `detach` (mirrors Cypher's `DELETE` vs `DETACH DELETE`).
    VertexHasEdges(VertexId),
    /// A transaction referenced a locally created vertex index that does
    /// not exist.
    BadNodeRef(usize),
    /// Store-level validation failure with a free-form reason.
    Invalid(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexNotFound(v) => write!(f, "vertex {v} not found"),
            GraphError::EdgeNotFound(e) => write!(f, "edge {e} not found"),
            GraphError::VertexHasEdges(v) => {
                write!(f, "vertex {v} still has incident edges (use detach delete)")
            }
            GraphError::BadNodeRef(i) => write!(f, "transaction-local node #{i} does not exist"),
            GraphError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An in-memory property graph with label/type/adjacency indexes.
///
/// All mutators return the [`ChangeEvent`]s they committed; batch them
/// through [`crate::tx::Transaction`] for atomicity.
#[derive(Default, Debug)]
pub struct PropertyGraph {
    vertices: FxHashMap<VertexId, VertexData>,
    edges: FxHashMap<EdgeId, EdgeData>,
    index: GraphIndexes,
    /// Deferred cardinality counters (see [`crate::stats`]); a mutex
    /// only so `&self` readers can integrate pending deltas — mutators
    /// go through `get_mut` and never lock.
    catalog: std::sync::Mutex<CatalogCell>,
    /// While true, mutators skip their per-mutation catalog hooks; the
    /// transaction path ([`PropertyGraph::apply`]) sets this and derives
    /// the catalog deltas from the committed event stream instead, so a
    /// rolled-back transaction pays zero catalog traffic.
    catalog_defer: bool,
    next_vertex: u64,
    next_edge: u64,
}

impl Clone for PropertyGraph {
    fn clone(&self) -> PropertyGraph {
        PropertyGraph {
            vertices: self.vertices.clone(),
            edges: self.edges.clone(),
            index: self.index.clone(),
            catalog: std::sync::Mutex::new(
                self.catalog
                    .lock()
                    .expect("catalog mutex poisoned (a catalog update panicked)")
                    .clone(),
            ),
            catalog_defer: self.catalog_defer,
            next_vertex: self.next_vertex,
            next_edge: self.next_edge,
        }
    }
}

impl PropertyGraph {
    /// Empty graph.
    pub fn new() -> Self {
        PropertyGraph::default()
    }

    // ---- accessors -------------------------------------------------------

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Vertex payload.
    pub fn vertex(&self, id: VertexId) -> Option<&VertexData> {
        self.vertices.get(&id)
    }

    /// Edge payload.
    pub fn edge(&self, id: EdgeId) -> Option<&EdgeData> {
        self.edges.get(&id)
    }

    /// Does `id` exist?
    pub fn has_vertex(&self, id: VertexId) -> bool {
        self.vertices.contains_key(&id)
    }

    /// Does `id` exist?
    pub fn has_edge(&self, id: EdgeId) -> bool {
        self.edges.contains_key(&id)
    }

    /// All vertex ids (arbitrary but deterministic order).
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices.keys().copied()
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.keys().copied()
    }

    /// Vertices carrying `label` (via the label index).
    pub fn vertices_with_label(&self, label: Symbol) -> &[VertexId] {
        self.index.with_label(label)
    }

    /// Edges of type `ty` (via the type index).
    pub fn edges_with_type(&self, ty: Symbol) -> &[EdgeId] {
        self.index.with_type(ty)
    }

    /// Outgoing edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> &[EdgeId] {
        self.index.out_edges(v)
    }

    /// Incoming edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> &[EdgeId] {
        self.index.in_edges(v)
    }

    /// Every label that has ever appeared.
    pub fn labels(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.index.labels()
    }

    /// Every edge type that has ever appeared.
    pub fn edge_types(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.index.types()
    }

    /// The catalog cell (counters + pending deltas); the public read
    /// API is [`PropertyGraph::catalog`](crate::stats) in `stats.rs`.
    pub(crate) fn catalog_cell(&self) -> &std::sync::Mutex<CatalogCell> {
        &self.catalog
    }

    /// The catalog cell for mutators: no locking (`&mut self` proves
    /// exclusivity).
    #[inline]
    fn catalog_mut(&mut self) -> &mut CatalogCell {
        self.catalog
            .get_mut()
            .expect("catalog mutex poisoned (a catalog update panicked)")
    }

    /// Start deferring catalog maintenance: mutators skip their
    /// per-mutation hooks until [`PropertyGraph::end_catalog_defer`].
    /// Used by the transaction path, which derives the deltas from the
    /// committed events via [`PropertyGraph::catalog_fold_events`].
    #[inline]
    pub(crate) fn begin_catalog_defer(&mut self) {
        self.catalog_defer = true;
    }

    /// Stop deferring catalog maintenance (see
    /// [`PropertyGraph::begin_catalog_defer`]).
    #[inline]
    pub(crate) fn end_catalog_defer(&mut self) {
        self.catalog_defer = false;
    }

    /// Append the cardinality-catalog deltas of a committed transaction,
    /// derived from its event stream in exact mutation order. Must be
    /// called on the post-transaction graph (added elements' payloads
    /// are read from the final state, or from the removal event when
    /// they were deleted again within the same transaction).
    pub(crate) fn catalog_fold_events(&mut self, events: &[ChangeEvent]) {
        let PropertyGraph {
            vertices,
            edges,
            index,
            catalog,
            ..
        } = self;
        let cell = catalog
            .get_mut()
            .expect("catalog mutex poisoned (a catalog update panicked)");
        match events {
            [] => return,
            [ev] => fold_single(cell, vertices, edges, index, ev),
            evs => fold_many(cell, vertices, edges, index, evs),
        }
        cell.maybe_integrate();
    }

    /// Vertex property lookup, `Null` when absent (Cypher semantics).
    pub fn vertex_prop(&self, id: VertexId, key: Symbol) -> Value {
        self.vertices
            .get(&id)
            .map_or(Value::Null, |d| d.props.get_or_null(key))
    }

    /// Edge property lookup, `Null` when absent.
    pub fn edge_prop(&self, id: EdgeId, key: Symbol) -> Value {
        self.edges
            .get(&id)
            .map_or(Value::Null, |d| d.props.get_or_null(key))
    }

    // ---- mutators --------------------------------------------------------

    /// Create a vertex; returns its id and the event.
    pub fn add_vertex(
        &mut self,
        labels: impl IntoIterator<Item = Symbol>,
        props: Properties,
    ) -> (VertexId, ChangeEvent) {
        let id = VertexId(self.next_vertex);
        self.next_vertex += 1;
        self.insert_vertex_raw(id, labels, props);
        (id, ChangeEvent::VertexAdded { id })
    }

    /// Re-insert a vertex under a specific id (transaction rollback and
    /// loader use only — ids must not collide).
    pub(crate) fn insert_vertex_raw(
        &mut self,
        id: VertexId,
        labels: impl IntoIterator<Item = Symbol>,
        props: Properties,
    ) {
        let mut labels: Vec<Symbol> = labels.into_iter().collect();
        labels.sort_unstable();
        labels.dedup();
        for &l in &labels {
            self.index.add_label(l, id);
        }
        if !self.catalog_defer {
            self.catalog_mut().on_vertex_added(&props);
        }
        self.vertices.insert(id, VertexData { labels, props });
        self.next_vertex = self.next_vertex.max(id.0 + 1);
    }

    /// Re-insert a vertex under a specific id — the snapshot-loader
    /// seam (`pgq_durability`). Ids must not collide with live
    /// elements; the id watermark advances past `id` and catalog
    /// counters are maintained as for a normal insert.
    pub fn load_vertex(
        &mut self,
        id: VertexId,
        labels: impl IntoIterator<Item = Symbol>,
        props: Properties,
    ) {
        self.insert_vertex_raw(id, labels, props);
    }

    /// Re-insert an edge under a specific id (snapshot-loader seam; see
    /// [`PropertyGraph::load_vertex`]). Endpoints must already exist.
    pub fn load_edge(
        &mut self,
        id: EdgeId,
        src: VertexId,
        dst: VertexId,
        ty: Symbol,
        props: Properties,
    ) -> Result<(), GraphError> {
        if !self.vertices.contains_key(&src) {
            return Err(GraphError::VertexNotFound(src));
        }
        if !self.vertices.contains_key(&dst) {
            return Err(GraphError::VertexNotFound(dst));
        }
        self.insert_edge_raw(id, src, dst, ty, props);
        Ok(())
    }

    /// The id-allocation watermarks `(next_vertex, next_edge)`. Part of
    /// the durable snapshot: WAL-tail replay must allocate the same ids
    /// the original process did, and the maximum live id can undershoot
    /// the watermark when the most recently created elements were
    /// deleted before the snapshot.
    pub fn id_watermarks(&self) -> (u64, u64) {
        (self.next_vertex, self.next_edge)
    }

    /// Advance the id-allocation watermarks (monotone; loader use only —
    /// see [`PropertyGraph::id_watermarks`]).
    pub fn set_id_watermarks(&mut self, next_vertex: u64, next_edge: u64) {
        self.next_vertex = self.next_vertex.max(next_vertex);
        self.next_edge = self.next_edge.max(next_edge);
    }

    /// Restore the id-allocation watermarks *exactly* — rollback use
    /// only. Ids are part of the durable contract (WAL replay must
    /// re-allocate the same ids the original process did), so undoing a
    /// transaction must also un-burn the ids it allocated; the monotone
    /// setter above cannot move the watermark backwards.
    pub(crate) fn rollback_id_watermarks(&mut self, next_vertex: u64, next_edge: u64) {
        self.next_vertex = next_vertex;
        self.next_edge = next_edge;
    }

    /// Delete a vertex. With `detach`, incident edges are removed first
    /// (their events precede the vertex event); otherwise incident edges
    /// are an error.
    pub fn remove_vertex(
        &mut self,
        id: VertexId,
        detach: bool,
    ) -> Result<Vec<ChangeEvent>, GraphError> {
        if !self.vertices.contains_key(&id) {
            return Err(GraphError::VertexNotFound(id));
        }
        let mut incident: Vec<EdgeId> = self
            .index
            .out_edges(id)
            .iter()
            .chain(self.index.in_edges(id))
            .copied()
            .collect();
        incident.sort_unstable();
        incident.dedup();
        if !incident.is_empty() && !detach {
            return Err(GraphError::VertexHasEdges(id));
        }
        let mut events = Vec::with_capacity(incident.len() + 1);
        for e in incident {
            events.push(self.remove_edge(e)?);
        }
        let data = self.vertices.remove(&id).expect("checked above");
        for &l in &data.labels {
            self.index.remove_label(l, id);
        }
        if !self.catalog_defer {
            self.catalog_mut().on_vertex_removed(&data.props);
        }
        events.push(ChangeEvent::VertexRemoved { id, data });
        Ok(events)
    }

    /// Create an edge; both endpoints must exist.
    pub fn add_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        ty: Symbol,
        props: Properties,
    ) -> Result<(EdgeId, ChangeEvent), GraphError> {
        if !self.vertices.contains_key(&src) {
            return Err(GraphError::VertexNotFound(src));
        }
        if !self.vertices.contains_key(&dst) {
            return Err(GraphError::VertexNotFound(dst));
        }
        let id = EdgeId(self.next_edge);
        self.next_edge += 1;
        self.insert_edge_raw(id, src, dst, ty, props);
        Ok((id, ChangeEvent::EdgeAdded { id }))
    }

    pub(crate) fn insert_edge_raw(
        &mut self,
        id: EdgeId,
        src: VertexId,
        dst: VertexId,
        ty: Symbol,
        props: Properties,
    ) {
        let old_src_out = self.index.add_edge(id, src, dst, ty);
        if !self.catalog_defer {
            self.catalog_mut()
                .on_edge_added(ty, src, dst, old_src_out, &props);
        }
        self.edges.insert(
            id,
            EdgeData {
                src,
                dst,
                ty,
                props,
            },
        );
        self.next_edge = self.next_edge.max(id.0 + 1);
    }

    /// Delete an edge.
    pub fn remove_edge(&mut self, id: EdgeId) -> Result<ChangeEvent, GraphError> {
        let data = self.edges.remove(&id).ok_or(GraphError::EdgeNotFound(id))?;
        let old_src_out = self.index.remove_edge(id, data.src, data.dst, data.ty);
        if !self.catalog_defer {
            self.catalog_mut().on_edge_removed(
                data.ty,
                data.src,
                data.dst,
                old_src_out,
                &data.props,
            );
        }
        Ok(ChangeEvent::EdgeRemoved { id, data })
    }

    /// Set (or with `Null`, remove) a vertex property.
    pub fn set_vertex_prop(
        &mut self,
        id: VertexId,
        key: Symbol,
        value: Value,
    ) -> Result<ChangeEvent, GraphError> {
        let data = self
            .vertices
            .get_mut(&id)
            .ok_or(GraphError::VertexNotFound(id))?;
        let old = data.props.set(key, value.clone()).unwrap_or(Value::Null);
        if !self.catalog_defer {
            self.catalog_mut().on_vertex_prop_changed(key, &old, &value);
        }
        Ok(ChangeEvent::VertexPropChanged {
            id,
            key,
            old,
            new: value,
        })
    }

    /// Set (or with `Null`, remove) an edge property.
    pub fn set_edge_prop(
        &mut self,
        id: EdgeId,
        key: Symbol,
        value: Value,
    ) -> Result<ChangeEvent, GraphError> {
        let data = self
            .edges
            .get_mut(&id)
            .ok_or(GraphError::EdgeNotFound(id))?;
        let old = data.props.set(key, value.clone()).unwrap_or(Value::Null);
        if !self.catalog_defer {
            self.catalog_mut().on_edge_prop_changed(key, &old, &value);
        }
        Ok(ChangeEvent::EdgePropChanged {
            id,
            key,
            old,
            new: value,
        })
    }

    /// Attach `label` to a vertex (no-op event suppressed if present).
    pub fn add_label(
        &mut self,
        id: VertexId,
        label: Symbol,
    ) -> Result<Option<ChangeEvent>, GraphError> {
        let data = self
            .vertices
            .get_mut(&id)
            .ok_or(GraphError::VertexNotFound(id))?;
        match data.labels.binary_search(&label) {
            Ok(_) => Ok(None),
            Err(pos) => {
                data.labels.insert(pos, label);
                self.index.add_label(label, id);
                Ok(Some(ChangeEvent::LabelAdded { id, label }))
            }
        }
    }

    /// Detach `label` from a vertex (no-op event suppressed if absent).
    pub fn remove_label(
        &mut self,
        id: VertexId,
        label: Symbol,
    ) -> Result<Option<ChangeEvent>, GraphError> {
        let data = self
            .vertices
            .get_mut(&id)
            .ok_or(GraphError::VertexNotFound(id))?;
        match data.labels.binary_search(&label) {
            Err(_) => Ok(None),
            Ok(pos) => {
                data.labels.remove(pos);
                self.index.remove_label(label, id);
                Ok(Some(ChangeEvent::LabelRemoved { id, label }))
            }
        }
    }
}

/// Catalog fold for a single-event transaction (the common transactional
/// workload): no per-element interactions are possible, so the payloads
/// and degrees come straight from the final graph state.
fn fold_single(
    cell: &mut CatalogCell,
    vertices: &FxHashMap<VertexId, VertexData>,
    edges: &FxHashMap<EdgeId, EdgeData>,
    index: &GraphIndexes,
    ev: &ChangeEvent,
) {
    match ev {
        ChangeEvent::VertexAdded { id } => {
            let data = vertices.get(id).expect("added vertex exists");
            cell.on_vertex_added(&data.props);
        }
        ChangeEvent::VertexRemoved { data, .. } => cell.on_vertex_removed(&data.props),
        ChangeEvent::EdgeAdded { id } => {
            let d = edges.get(id).expect("added edge exists");
            // The edge is already in the index, so the pre-mutation
            // out-degree is one less than the current one.
            cell.on_edge_added(
                d.ty,
                d.src,
                d.dst,
                index.out_edges(d.src).len() - 1,
                &d.props,
            );
        }
        ChangeEvent::EdgeRemoved { data, .. } => cell.on_edge_removed(
            data.ty,
            data.src,
            data.dst,
            index.out_edges(data.src).len() + 1,
            &data.props,
        ),
        ChangeEvent::VertexPropChanged { key, old, new, .. } => {
            cell.on_vertex_prop_changed(*key, old, new);
        }
        ChangeEvent::EdgePropChanged { key, old, new, .. } => {
            cell.on_edge_prop_changed(*key, old, new);
        }
        // Labels are counted by the label index, not the catalog.
        ChangeEvent::LabelAdded { .. } | ChangeEvent::LabelRemoved { .. } => {}
    }
}

/// Catalog fold for a multi-event transaction, replaying the deltas in
/// exact mutation order. Added elements' payloads come from the final
/// graph state (or the removal event, if they were deleted again within
/// the transaction), with property values rewound through the
/// transaction's own later changes; running out-degrees start from the
/// final degrees minus the transaction's net change.
fn fold_many(
    cell: &mut CatalogCell,
    vertices: &FxHashMap<VertexId, VertexData>,
    edges: &FxHashMap<EdgeId, EdgeData>,
    index: &GraphIndexes,
    events: &[ChangeEvent],
) {
    use ChangeEvent as Ev;
    // Pass 1: removed payloads, per-source net out-degree change, and
    // each property's value before its first in-transaction change.
    let mut removed_v: FxHashMap<VertexId, &VertexData> = FxHashMap::default();
    let mut removed_e: FxHashMap<EdgeId, &EdgeData> = FxHashMap::default();
    let mut net: FxHashMap<VertexId, i64> = FxHashMap::default();
    let mut vfirst: FxHashMap<(VertexId, Symbol), &Value> = FxHashMap::default();
    let mut efirst: FxHashMap<(EdgeId, Symbol), &Value> = FxHashMap::default();
    for ev in events {
        match ev {
            Ev::VertexRemoved { id, data } => {
                removed_v.insert(*id, data);
            }
            Ev::EdgeRemoved { id, data } => {
                removed_e.insert(*id, data);
                *net.entry(data.src).or_insert(0) -= 1;
            }
            Ev::VertexPropChanged { id, key, old, .. } => {
                vfirst.entry((*id, *key)).or_insert(old);
            }
            Ev::EdgePropChanged { id, key, old, .. } => {
                efirst.entry((*id, *key)).or_insert(old);
            }
            _ => {}
        }
    }
    let edge_data = |id: EdgeId| -> &EdgeData {
        edges
            .get(&id)
            .or_else(|| removed_e.get(&id).copied())
            .expect("added edge has a payload")
    };
    for ev in events {
        if let Ev::EdgeAdded { id } = ev {
            *net.entry(edge_data(*id).src).or_insert(0) += 1;
        }
    }
    // Running out-degrees, rewound to their pre-transaction values.
    let mut deg: FxHashMap<VertexId, i64> = net
        .iter()
        .map(|(&v, &n)| (v, index.out_edges(v).len() as i64 - n))
        .collect();
    // Pass 2: replay in mutation order.
    for ev in events {
        match ev {
            Ev::VertexAdded { id } => {
                let data = vertices
                    .get(id)
                    .or_else(|| removed_v.get(id).copied())
                    .expect("added vertex has a payload");
                for (key, v) in data.props.iter() {
                    let v0 = vfirst.get(&(*id, key)).copied().unwrap_or(v);
                    if !v0.is_null() {
                        cell.push_prop_delta(key, v0, true, true);
                    }
                }
                // Keys present at creation but gone from the final state.
                for (&(vid, key), &old) in vfirst.iter() {
                    if vid == *id && data.props.get(key).is_none() && !old.is_null() {
                        cell.push_prop_delta(key, old, true, true);
                    }
                }
            }
            Ev::VertexRemoved { data, .. } => {
                for (key, v) in data.props.iter() {
                    cell.push_prop_delta(key, v, true, false);
                }
            }
            Ev::EdgeAdded { id } => {
                let data = edge_data(*id);
                let d = deg.get_mut(&data.src).expect("degree seeded in pass 1");
                cell.push_edge_delta(data.ty, data.src, data.dst, *d as usize, true);
                *d += 1;
                for (key, v) in data.props.iter() {
                    let v0 = efirst.get(&(*id, key)).copied().unwrap_or(v);
                    if !v0.is_null() {
                        cell.push_prop_delta(key, v0, false, true);
                    }
                }
                for (&(eid, key), &old) in efirst.iter() {
                    if eid == *id && data.props.get(key).is_none() && !old.is_null() {
                        cell.push_prop_delta(key, old, false, true);
                    }
                }
            }
            Ev::EdgeRemoved { data, .. } => {
                let d = deg.get_mut(&data.src).expect("degree seeded in pass 1");
                cell.push_edge_delta(data.ty, data.src, data.dst, *d as usize, false);
                *d -= 1;
                for (key, v) in data.props.iter() {
                    cell.push_prop_delta(key, v, false, false);
                }
            }
            Ev::VertexPropChanged { key, old, new, .. } => {
                if !old.is_null() {
                    cell.push_prop_delta(*key, old, true, false);
                }
                if !new.is_null() {
                    cell.push_prop_delta(*key, new, true, true);
                }
            }
            Ev::EdgePropChanged { key, old, new, .. } => {
                if !old.is_null() {
                    cell.push_prop_delta(*key, old, false, false);
                }
                if !new.is_null() {
                    cell.push_prop_delta(*key, new, false, true);
                }
            }
            Ev::LabelAdded { .. } | Ev::LabelRemoved { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn props(pairs: &[(&str, Value)]) -> Properties {
        pairs.iter().map(|(k, v)| (*k, v.clone())).collect()
    }

    #[test]
    fn vertex_lifecycle() {
        let mut g = PropertyGraph::new();
        let (v, ev) = g.add_vertex([sym("Post")], props(&[("lang", "en".into())]));
        assert_eq!(ev, ChangeEvent::VertexAdded { id: v });
        assert_eq!(g.vertex_count(), 1);
        assert!(g.vertex(v).unwrap().has_label(sym("Post")));
        assert_eq!(g.vertex_prop(v, sym("lang")), Value::str("en"));
        assert_eq!(g.vertices_with_label(sym("Post")), &[v]);

        let evs = g.remove_vertex(v, false).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(g.vertex_count(), 0);
        assert!(g.vertices_with_label(sym("Post")).is_empty());
    }

    #[test]
    fn edge_lifecycle_and_adjacency() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("Post")], Properties::new());
        let (b, _) = g.add_vertex([sym("Comm")], Properties::new());
        let (e, _) = g.add_edge(a, b, sym("REPLY"), Properties::new()).unwrap();
        assert_eq!(g.out_edges(a), &[e]);
        assert_eq!(g.in_edges(b), &[e]);
        assert_eq!(g.edges_with_type(sym("REPLY")), &[e]);
        let data = g.edge(e).unwrap();
        assert_eq!((data.src, data.dst), (a, b));

        g.remove_edge(e).unwrap();
        assert!(g.out_edges(a).is_empty());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn edge_to_missing_vertex_fails() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("Post")], Properties::new());
        let err = g
            .add_edge(a, VertexId(999), sym("REPLY"), Properties::new())
            .unwrap_err();
        assert_eq!(err, GraphError::VertexNotFound(VertexId(999)));
    }

    #[test]
    fn delete_vertex_with_edges_requires_detach() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("Post")], Properties::new());
        let (b, _) = g.add_vertex([sym("Comm")], Properties::new());
        let (e, _) = g.add_edge(a, b, sym("REPLY"), Properties::new()).unwrap();

        assert_eq!(
            g.remove_vertex(a, false),
            Err(GraphError::VertexHasEdges(a))
        );
        let evs = g.remove_vertex(a, true).unwrap();
        // Edge removal precedes vertex removal.
        assert!(matches!(evs[0], ChangeEvent::EdgeRemoved { id, .. } if id == e));
        assert!(matches!(evs[1], ChangeEvent::VertexRemoved { id, .. } if id == a));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.vertex_count(), 1);
    }

    #[test]
    fn self_loop_detach_delete_removes_edge_once() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("N")], Properties::new());
        g.add_edge(a, a, sym("SELF"), Properties::new()).unwrap();
        let evs = g.remove_vertex(a, true).unwrap();
        assert_eq!(evs.len(), 2); // one edge event + one vertex event
    }

    #[test]
    fn property_update_events_carry_old_and_new() {
        let mut g = PropertyGraph::new();
        let (v, _) = g.add_vertex([sym("Post")], props(&[("lang", "en".into())]));
        let ev = g.set_vertex_prop(v, sym("lang"), "de".into()).unwrap();
        assert_eq!(
            ev,
            ChangeEvent::VertexPropChanged {
                id: v,
                key: sym("lang"),
                old: "en".into(),
                new: "de".into(),
            }
        );
        // Setting Null removes.
        let ev = g.set_vertex_prop(v, sym("lang"), Value::Null).unwrap();
        assert_eq!(g.vertex_prop(v, sym("lang")), Value::Null);
        assert!(matches!(
            ev,
            ChangeEvent::VertexPropChanged {
                new: Value::Null,
                ..
            }
        ));
    }

    #[test]
    fn label_add_remove_events() {
        let mut g = PropertyGraph::new();
        let (v, _) = g.add_vertex([sym("Post")], Properties::new());
        assert!(g.add_label(v, sym("Pinned")).unwrap().is_some());
        assert!(g.add_label(v, sym("Pinned")).unwrap().is_none()); // idempotent
        assert_eq!(g.vertices_with_label(sym("Pinned")), &[v]);
        assert!(g.remove_label(v, sym("Pinned")).unwrap().is_some());
        assert!(g.remove_label(v, sym("Pinned")).unwrap().is_none());
    }

    #[test]
    fn labels_deduplicated_on_insert() {
        let mut g = PropertyGraph::new();
        let (v, _) = g.add_vertex([sym("A"), sym("A"), sym("B")], Properties::new());
        assert_eq!(g.vertex(v).unwrap().labels.len(), 2);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("X")], Properties::new());
        g.remove_vertex(a, false).unwrap();
        let (b, _) = g.add_vertex([sym("X")], Properties::new());
        assert_ne!(a, b);
    }
}
