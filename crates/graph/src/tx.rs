//! Atomic update transactions.
//!
//! A [`Transaction`] is an ordered batch of update operations applied
//! all-or-nothing. Operations may reference vertices created earlier in
//! the same transaction through [`NodeRef::New`], which is what lets a
//! single `CREATE (a)-[:R]->(b)` clause build both endpoints and the edge
//! atomically.
//!
//! On failure the store is rolled back via an undo log, so a failed
//! transaction leaves no trace — neither in the graph nor in the change
//! feed (no events are emitted for rolled-back work).

use pgq_common::ids::{EdgeId, VertexId};
use pgq_common::intern::Symbol;
use pgq_common::value::Value;

use crate::delta::ChangeEvent;
use crate::props::Properties;
use crate::store::{GraphError, PropertyGraph};

/// Reference to a vertex: either pre-existing or created earlier within
/// the same transaction (by 0-based creation order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRef {
    /// An id that existed before the transaction.
    Existing(VertexId),
    /// The `n`-th vertex created by this transaction.
    New(usize),
}

impl From<VertexId> for NodeRef {
    fn from(v: VertexId) -> Self {
        NodeRef::Existing(v)
    }
}

/// One operation inside a transaction.
#[derive(Clone, Debug)]
pub enum TxOp {
    /// Create a vertex (becomes `NodeRef::New(k)` for the k-th create).
    CreateVertex {
        /// Labels of the new vertex.
        labels: Vec<Symbol>,
        /// Initial properties.
        props: Properties,
    },
    /// Create an edge between two (possibly transaction-local) vertices.
    CreateEdge {
        /// Source endpoint.
        src: NodeRef,
        /// Target endpoint.
        dst: NodeRef,
        /// Edge type.
        ty: Symbol,
        /// Initial properties.
        props: Properties,
    },
    /// Delete a vertex; with `detach`, incident edges go first.
    DeleteVertex {
        /// Vertex to delete.
        id: VertexId,
        /// Remove incident edges too?
        detach: bool,
    },
    /// Delete an edge.
    DeleteEdge {
        /// Edge to delete.
        id: EdgeId,
    },
    /// Set (or remove, with `Null`) a vertex property.
    SetVertexProp {
        /// Vertex to update.
        id: NodeRef,
        /// Property key.
        key: Symbol,
        /// New value (`Null` removes).
        value: Value,
    },
    /// Set (or remove, with `Null`) an edge property.
    SetEdgeProp {
        /// Edge to update.
        id: EdgeId,
        /// Property key.
        key: Symbol,
        /// New value (`Null` removes).
        value: Value,
    },
    /// Attach a label.
    AddLabel {
        /// Vertex to update.
        id: NodeRef,
        /// Label to attach.
        label: Symbol,
    },
    /// Detach a label.
    RemoveLabel {
        /// Vertex to update.
        id: NodeRef,
        /// Label to detach.
        label: Symbol,
    },
}

/// An atomic batch of graph updates.
#[derive(Clone, Debug, Default)]
pub struct Transaction {
    ops: Vec<TxOp>,
    creates: usize,
}

impl Transaction {
    /// Empty transaction.
    pub fn new() -> Self {
        Transaction::default()
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The queued operations.
    pub fn ops(&self) -> &[TxOp] {
        &self.ops
    }

    /// Rebuild a transaction from a decoded operation list (the
    /// write-ahead-log replay seam). The create counter is re-derived
    /// from the ops, so `NodeRef::New` references resolve exactly as
    /// they did when the transaction was first applied.
    pub fn from_ops(ops: Vec<TxOp>) -> Self {
        let creates = ops
            .iter()
            .filter(|op| matches!(op, TxOp::CreateVertex { .. }))
            .count();
        Transaction { ops, creates }
    }

    /// Queue a vertex creation; the returned [`NodeRef`] can be used by
    /// later operations in this transaction.
    pub fn create_vertex(
        &mut self,
        labels: impl IntoIterator<Item = Symbol>,
        props: Properties,
    ) -> NodeRef {
        self.ops.push(TxOp::CreateVertex {
            labels: labels.into_iter().collect(),
            props,
        });
        let r = NodeRef::New(self.creates);
        self.creates += 1;
        r
    }

    /// Queue an edge creation.
    pub fn create_edge(
        &mut self,
        src: impl Into<NodeRef>,
        dst: impl Into<NodeRef>,
        ty: Symbol,
        props: Properties,
    ) -> &mut Self {
        self.ops.push(TxOp::CreateEdge {
            src: src.into(),
            dst: dst.into(),
            ty,
            props,
        });
        self
    }

    /// Queue a vertex deletion.
    pub fn delete_vertex(&mut self, id: VertexId, detach: bool) -> &mut Self {
        self.ops.push(TxOp::DeleteVertex { id, detach });
        self
    }

    /// Queue an edge deletion.
    pub fn delete_edge(&mut self, id: EdgeId) -> &mut Self {
        self.ops.push(TxOp::DeleteEdge { id });
        self
    }

    /// Queue a vertex property update.
    pub fn set_vertex_prop(
        &mut self,
        id: impl Into<NodeRef>,
        key: Symbol,
        value: Value,
    ) -> &mut Self {
        self.ops.push(TxOp::SetVertexProp {
            id: id.into(),
            key,
            value,
        });
        self
    }

    /// Queue an edge property update.
    pub fn set_edge_prop(&mut self, id: EdgeId, key: Symbol, value: Value) -> &mut Self {
        self.ops.push(TxOp::SetEdgeProp { id, key, value });
        self
    }

    /// Queue a label attach.
    pub fn add_label(&mut self, id: impl Into<NodeRef>, label: Symbol) -> &mut Self {
        self.ops.push(TxOp::AddLabel {
            id: id.into(),
            label,
        });
        self
    }

    /// Queue a label detach.
    pub fn remove_label(&mut self, id: impl Into<NodeRef>, label: Symbol) -> &mut Self {
        self.ops.push(TxOp::RemoveLabel {
            id: id.into(),
            label,
        });
        self
    }
}

/// Undo records mirroring each committed event, applied in reverse on
/// rollback.
enum Undo {
    RemoveVertex(VertexId),
    RestoreVertex(VertexId, crate::store::VertexData),
    RemoveEdge(EdgeId),
    RestoreEdge(EdgeId, crate::store::EdgeData),
    SetVertexProp(VertexId, Symbol, Value),
    SetEdgeProp(EdgeId, Symbol, Value),
    RemoveLabel(VertexId, Symbol),
    AddLabel(VertexId, Symbol),
}

impl PropertyGraph {
    fn resolve(&self, r: NodeRef, created: &[VertexId]) -> Result<VertexId, GraphError> {
        match r {
            NodeRef::Existing(v) => Ok(v),
            NodeRef::New(i) => created.get(i).copied().ok_or(GraphError::BadNodeRef(i)),
        }
    }

    /// Apply `tx` atomically. On success returns the committed events in
    /// operation order; on failure the graph is unchanged.
    ///
    /// Cardinality-catalog maintenance is folded into the event
    /// materialisation: the per-mutation hooks are suppressed for the
    /// whole transaction and the deltas are derived from the committed
    /// event stream in one pass afterwards, so a rolled-back transaction
    /// (including its undo replay) generates no catalog traffic at all.
    pub fn apply(&mut self, tx: &Transaction) -> Result<Vec<ChangeEvent>, GraphError> {
        let mut events: Vec<ChangeEvent> = Vec::with_capacity(tx.len());
        let mut undo: Vec<Undo> = Vec::with_capacity(tx.len());
        let mut created: Vec<VertexId> = Vec::new();
        let watermarks = self.id_watermarks();

        self.begin_catalog_defer();
        let result = (|| -> Result<(), GraphError> {
            for op in &tx.ops {
                match op {
                    TxOp::CreateVertex { labels, props } => {
                        let (id, ev) = self.add_vertex(labels.iter().copied(), props.clone());
                        created.push(id);
                        undo.push(Undo::RemoveVertex(id));
                        events.push(ev);
                    }
                    TxOp::CreateEdge {
                        src,
                        dst,
                        ty,
                        props,
                    } => {
                        let s = self.resolve(*src, &created)?;
                        let d = self.resolve(*dst, &created)?;
                        let (id, ev) = self.add_edge(s, d, *ty, props.clone())?;
                        undo.push(Undo::RemoveEdge(id));
                        events.push(ev);
                    }
                    TxOp::DeleteVertex { id, detach } => {
                        let evs = self.remove_vertex(*id, *detach)?;
                        for ev in evs {
                            match &ev {
                                ChangeEvent::EdgeRemoved { id, data } => {
                                    undo.push(Undo::RestoreEdge(*id, data.clone()));
                                }
                                ChangeEvent::VertexRemoved { id, data } => {
                                    undo.push(Undo::RestoreVertex(*id, data.clone()));
                                }
                                _ => unreachable!("remove_vertex emits only removals"),
                            }
                            events.push(ev);
                        }
                    }
                    TxOp::DeleteEdge { id } => {
                        let ev = self.remove_edge(*id)?;
                        if let ChangeEvent::EdgeRemoved { id, data } = &ev {
                            undo.push(Undo::RestoreEdge(*id, data.clone()));
                        }
                        events.push(ev);
                    }
                    TxOp::SetVertexProp { id, key, value } => {
                        let v = self.resolve(*id, &created)?;
                        let ev = self.set_vertex_prop(v, *key, value.clone())?;
                        if let ChangeEvent::VertexPropChanged { old, .. } = &ev {
                            undo.push(Undo::SetVertexProp(v, *key, old.clone()));
                        }
                        events.push(ev);
                    }
                    TxOp::SetEdgeProp { id, key, value } => {
                        let ev = self.set_edge_prop(*id, *key, value.clone())?;
                        if let ChangeEvent::EdgePropChanged { old, .. } = &ev {
                            undo.push(Undo::SetEdgeProp(*id, *key, old.clone()));
                        }
                        events.push(ev);
                    }
                    TxOp::AddLabel { id, label } => {
                        let v = self.resolve(*id, &created)?;
                        if let Some(ev) = self.add_label(v, *label)? {
                            undo.push(Undo::RemoveLabel(v, *label));
                            events.push(ev);
                        }
                    }
                    TxOp::RemoveLabel { id, label } => {
                        let v = self.resolve(*id, &created)?;
                        if let Some(ev) = self.remove_label(v, *label)? {
                            undo.push(Undo::AddLabel(v, *label));
                            events.push(ev);
                        }
                    }
                }
            }
            Ok(())
        })();

        match result {
            Ok(()) => {
                self.end_catalog_defer();
                self.catalog_fold_events(&events);
                Ok(events)
            }
            Err(e) => {
                for u in undo.into_iter().rev() {
                    match u {
                        Undo::RemoveVertex(v) => {
                            self.remove_vertex(v, true).expect("rollback remove vertex");
                        }
                        Undo::RestoreVertex(v, data) => {
                            self.insert_vertex_raw(v, data.labels.iter().copied(), data.props);
                        }
                        Undo::RemoveEdge(e) => {
                            self.remove_edge(e).expect("rollback remove edge");
                        }
                        Undo::RestoreEdge(e, data) => {
                            self.insert_edge_raw(e, data.src, data.dst, data.ty, data.props);
                        }
                        Undo::SetVertexProp(v, k, old) => {
                            self.set_vertex_prop(v, k, old).expect("rollback vprop");
                        }
                        Undo::SetEdgeProp(e, k, old) => {
                            self.set_edge_prop(e, k, old).expect("rollback eprop");
                        }
                        Undo::RemoveLabel(v, l) => {
                            self.remove_label(v, l).expect("rollback label");
                        }
                        Undo::AddLabel(v, l) => {
                            self.add_label(v, l).expect("rollback label");
                        }
                    }
                }
                // Un-burn the ids the aborted transaction allocated: a
                // failed transaction must be invisible to WAL replay,
                // which re-derives ids from the watermarks.
                self.rollback_id_watermarks(watermarks.0, watermarks.1);
                self.end_catalog_defer();
                Err(e)
            }
        }
    }

    /// Reverse an already-committed event stream, restoring the graph —
    /// including the id-allocation watermarks — to its state before the
    /// transaction that produced `events`. `watermarks` is the
    /// [`PropertyGraph::id_watermarks`] value captured *before* that
    /// transaction applied.
    ///
    /// This is the durable engine's commit-failure path: the graph
    /// mutated in memory, but the WAL append failed, so the commit must
    /// be taken back as if it never happened. Must be called immediately
    /// after the transaction (no intervening mutations). The normal
    /// mutators run with catalog hooks live, so the cardinality catalog
    /// rolls back along with the topology.
    pub fn unapply(&mut self, events: &[ChangeEvent], watermarks: (u64, u64)) {
        for ev in events.iter().rev() {
            match ev {
                ChangeEvent::VertexAdded { id } => {
                    self.remove_vertex(*id, true).expect("unapply vertex add");
                }
                ChangeEvent::VertexRemoved { id, data } => {
                    self.insert_vertex_raw(*id, data.labels.iter().copied(), data.props.clone());
                }
                ChangeEvent::EdgeAdded { id } => {
                    self.remove_edge(*id).expect("unapply edge add");
                }
                ChangeEvent::EdgeRemoved { id, data } => {
                    self.insert_edge_raw(*id, data.src, data.dst, data.ty, data.props.clone());
                }
                ChangeEvent::VertexPropChanged { id, key, old, .. } => {
                    self.set_vertex_prop(*id, *key, old.clone())
                        .expect("unapply vprop");
                }
                ChangeEvent::EdgePropChanged { id, key, old, .. } => {
                    self.set_edge_prop(*id, *key, old.clone())
                        .expect("unapply eprop");
                }
                ChangeEvent::LabelAdded { id, label } => {
                    self.remove_label(*id, *label).expect("unapply label add");
                }
                ChangeEvent::LabelRemoved { id, label } => {
                    self.add_label(*id, *label).expect("unapply label remove");
                }
            }
        }
        self.rollback_id_watermarks(watermarks.0, watermarks.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn create_pattern_atomically() {
        let mut g = PropertyGraph::new();
        let mut tx = Transaction::new();
        let a = tx.create_vertex([sym("Post")], Properties::new());
        let b = tx.create_vertex([sym("Comm")], Properties::new());
        tx.create_edge(a, b, sym("REPLY"), Properties::new());
        let events = g.apply(&tx).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn failed_transaction_rolls_back_everything() {
        let mut g = PropertyGraph::new();
        let (existing, _) = g.add_vertex([sym("Post")], Properties::new());

        let mut tx = Transaction::new();
        let a = tx.create_vertex([sym("Comm")], Properties::new());
        tx.create_edge(a, existing, sym("REPLY"), Properties::new());
        tx.set_vertex_prop(existing, sym("lang"), "en".into());
        // This fails: edge to a non-existent vertex.
        tx.create_edge(existing, VertexId(12345), sym("REPLY"), Properties::new());

        let err = g.apply(&tx).unwrap_err();
        assert_eq!(err, GraphError::VertexNotFound(VertexId(12345)));
        // All earlier effects undone.
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.vertex_prop(existing, sym("lang")), Value::Null);
    }

    #[test]
    fn rollback_restores_deleted_elements() {
        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex([sym("Post")], Properties::from_iter([("k", Value::Int(1))]));
        let (b, _) = g.add_vertex([sym("Comm")], Properties::new());
        let (e, _) = g.add_edge(a, b, sym("REPLY"), Properties::new()).unwrap();

        let mut tx = Transaction::new();
        tx.delete_vertex(a, true); // removes e then a
        tx.delete_edge(e); // fails: already gone
        assert!(g.apply(&tx).is_err());

        assert!(g.has_vertex(a));
        assert!(g.has_edge(e));
        assert_eq!(g.vertex_prop(a, sym("k")), Value::Int(1));
        assert_eq!(g.out_edges(a), &[e]);
    }

    #[test]
    fn failed_transaction_unburns_allocated_ids() {
        let mut g = PropertyGraph::new();
        g.add_vertex([sym("Post")], Properties::new());
        let before = g.id_watermarks();

        let mut tx = Transaction::new();
        tx.create_vertex([sym("Comm")], Properties::new());
        tx.delete_edge(EdgeId(999)); // fails
        assert!(g.apply(&tx).is_err());
        // Replay determinism: the aborted create must not burn an id.
        assert_eq!(g.id_watermarks(), before);

        let mut ok = Transaction::new();
        ok.create_vertex([sym("Comm")], Properties::new());
        let evs = g.apply(&ok).unwrap();
        assert!(matches!(
            evs[0],
            ChangeEvent::VertexAdded { id } if id == VertexId(before.0)
        ));
    }

    #[test]
    fn unapply_reverses_a_committed_event_stream() {
        use crate::stats::rescan_catalog;

        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex(
            [sym("Post")],
            Properties::from_iter([("lang", Value::str("en"))]),
        );
        let (b, _) = g.add_vertex([sym("Comm")], Properties::new());
        let (e, _) = g.add_edge(a, b, sym("REPLY"), Properties::new()).unwrap();
        let watermarks = g.id_watermarks();
        let before = format!("{:?} {:?}", g.id_watermarks(), rescan_catalog(&g));

        // A transaction touching every event shape.
        let mut tx = Transaction::new();
        let c = tx.create_vertex([sym("Post")], Properties::new());
        tx.create_edge(c, b, sym("REPLY"), Properties::new());
        tx.set_vertex_prop(a, sym("lang"), "de".into());
        tx.add_label(a, sym("Hot"));
        tx.remove_label(b, sym("Comm"));
        tx.delete_edge(e);
        let events = g.apply(&tx).unwrap();

        g.unapply(&events, watermarks);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(e));
        assert_eq!(g.vertex_prop(a, sym("lang")), Value::str("en"));
        assert!(!g.vertex(a).unwrap().has_label(sym("Hot")));
        assert!(g.vertex(b).unwrap().has_label(sym("Comm")));
        assert_eq!(
            format!("{:?} {:?}", g.id_watermarks(), rescan_catalog(&g)),
            before,
            "watermarks and catalog must roll back too"
        );

        // And the exact same transaction re-applies with the same ids.
        let events2 = g.apply(&tx).unwrap();
        assert_eq!(format!("{events:?}"), format!("{events2:?}"));
    }

    #[test]
    fn bad_node_ref_is_rejected() {
        let mut g = PropertyGraph::new();
        let mut tx = Transaction::new();
        tx.create_edge(
            NodeRef::New(7),
            NodeRef::New(8),
            sym("REPLY"),
            Properties::new(),
        );
        assert_eq!(g.apply(&tx).unwrap_err(), GraphError::BadNodeRef(7));
    }

    #[test]
    fn label_ops_via_transaction() {
        let mut g = PropertyGraph::new();
        let (v, _) = g.add_vertex([sym("Post")], Properties::new());
        let mut tx = Transaction::new();
        tx.add_label(v, sym("Hot")).remove_label(v, sym("Post"));
        let evs = g.apply(&tx).unwrap();
        assert_eq!(evs.len(), 2);
        assert!(g.vertex(v).unwrap().has_label(sym("Hot")));
        assert!(!g.vertex(v).unwrap().has_label(sym("Post")));
    }

    #[test]
    fn empty_transaction_is_noop() {
        let mut g = PropertyGraph::new();
        let evs = g.apply(&Transaction::new()).unwrap();
        assert!(evs.is_empty());
    }

    /// The event-stream catalog fold must reconstruct mutation-time
    /// payloads even when one transaction's operations interact: props
    /// set at creation then overwritten or cleared, edges created and
    /// destroyed by a later detach-delete in the same transaction, and
    /// property updates to elements that are deleted again.
    #[test]
    fn catalog_fold_handles_intra_tx_interactions() {
        use crate::stats::rescan_catalog;
        use pgq_common::value::Value;

        let mut g = PropertyGraph::new();
        let (a, _) = g.add_vertex(
            [sym("N")],
            Properties::from_iter([("lang", Value::str("en"))]),
        );
        let (b, _) = g.add_vertex([sym("N")], Properties::new());
        let (e, _) = g
            .add_edge(
                a,
                b,
                sym("E"),
                Properties::from_iter([("w", Value::Int(1))]),
            )
            .unwrap();

        let mut tx = Transaction::new();
        // Created with props, then patched, cleared, and extended.
        let c = tx.create_vertex(
            [sym("N")],
            Properties::from_iter([("lang", Value::str("de")), ("score", Value::Int(1))]),
        );
        tx.set_vertex_prop(c, sym("lang"), Value::str("fr"));
        tx.set_vertex_prop(c, sym("score"), Value::Null);
        tx.set_vertex_prop(c, sym("fresh"), Value::Int(9));
        // Pre-existing edge patched, then destroyed by the detach-delete
        // below; a new edge is created and destroyed within the same
        // transaction.
        tx.set_edge_prop(e, sym("w"), Value::Int(5));
        tx.create_edge(
            a,
            b,
            sym("E"),
            Properties::from_iter([("w", Value::Int(7))]),
        );
        tx.create_edge(c, a, sym("E"), Properties::new());
        tx.delete_vertex(b, true);

        let events = g.apply(&tx).unwrap();
        assert!(events.len() >= 9, "expected a multi-event fold path");
        assert_eq!(&*g.catalog(), &rescan_catalog(&g));
    }
}
