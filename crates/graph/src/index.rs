//! Secondary indexes over the property graph.
//!
//! The paper's nullary operators need fast extents: © `get-vertices` reads
//! the label index, ⇑ `get-edges` reads the type index, and the baseline
//! evaluator's expand steps walk the adjacency lists. All indexes are
//! maintained eagerly by the store's mutators.
//!
//! Buckets are dense `Vec`s (so extents hand out slices) paired with a
//! position map, making removal O(1) via swap-remove + backlink update —
//! deletion-heavy update streams used to pay an O(bucket) scan per
//! removal, turning churn on hot labels/types quadratic. Emptied buckets
//! are dropped from the outer maps so long-running churn does not leak
//! index entries.

use std::hash::Hash;

use pgq_common::fxhash::FxHashMap;
use pgq_common::ids::{EdgeId, VertexId};
use pgq_common::intern::Symbol;

/// Small buckets are scanned linearly; beyond this many items a position
/// map is built and maintained. Adjacency buckets are overwhelmingly
/// tiny (vertex degree), where a scan beats map upkeep on every insert;
/// hot label/type extents grow past the threshold and get O(1) removal.
const POS_MAP_THRESHOLD: usize = 16;

/// A dense id bucket with O(1) membership removal at scale.
///
/// `items` is the extent handed out as a slice. For buckets larger than
/// [`POS_MAP_THRESHOLD`], `pos` maps each id to its index in `items`;
/// removal swap-removes and re-points the moved id's backlink. Order
/// within a bucket is not semantically meaningful.
#[derive(Debug, Clone)]
struct PosBucket<T> {
    items: Vec<T>,
    /// Lazily built once the bucket crosses the threshold; `None` for
    /// small buckets.
    pos: Option<FxHashMap<T, u32>>,
}

impl<T> Default for PosBucket<T> {
    fn default() -> Self {
        PosBucket {
            items: Vec::new(),
            pos: None,
        }
    }
}

impl<T: Copy + Eq + Hash> PosBucket<T> {
    fn push(&mut self, x: T) {
        debug_assert!(
            !self.items.contains(&x),
            "duplicate id pushed into index bucket"
        );
        if let Some(pos) = &mut self.pos {
            pos.insert(x, self.items.len() as u32);
        } else if self.items.len() >= POS_MAP_THRESHOLD {
            let mut pos: FxHashMap<T, u32> = self
                .items
                .iter()
                .enumerate()
                .map(|(i, &y)| (y, i as u32))
                .collect();
            pos.insert(x, self.items.len() as u32);
            self.pos = Some(pos);
        }
        self.items.push(x);
    }

    /// Remove `x` if present; returns `true` when the bucket is empty
    /// afterwards (so the caller can drop it from its outer map).
    fn remove(&mut self, x: T) -> bool {
        let found = match &mut self.pos {
            Some(pos) => pos.remove(&x).map(|p| p as usize),
            None => self.items.iter().position(|&y| y == x),
        };
        if let Some(p) = found {
            self.items.swap_remove(p);
            if let (Some(pos), Some(&moved)) = (&mut self.pos, self.items.get(p)) {
                pos.insert(moved, p as u32);
            }
        }
        self.items.is_empty()
    }
}

/// Label, edge-type and adjacency indexes.
#[derive(Default, Debug, Clone)]
pub struct GraphIndexes {
    label: FxHashMap<Symbol, PosBucket<VertexId>>,
    ty: FxHashMap<Symbol, PosBucket<EdgeId>>,
    out: FxHashMap<VertexId, PosBucket<EdgeId>>,
    inc: FxHashMap<VertexId, PosBucket<EdgeId>>,
}

/// Remove `x` from the bucket under `key`, dropping the bucket when it
/// empties.
fn bucket_remove<K: Eq + Hash, T: Copy + Eq + Hash>(
    map: &mut FxHashMap<K, PosBucket<T>>,
    key: K,
    x: T,
) {
    if let Some(bucket) = map.get_mut(&key) {
        if bucket.remove(x) {
            map.remove(&key);
        }
    }
}

impl GraphIndexes {
    /// Register a vertex under `label`.
    pub fn add_label(&mut self, label: Symbol, v: VertexId) {
        self.label.entry(label).or_default().push(v);
    }

    /// Unregister a vertex from `label`.
    pub fn remove_label(&mut self, label: Symbol, v: VertexId) {
        bucket_remove(&mut self.label, label, v);
    }

    /// Register an edge; returns the source's out-degree *before* the
    /// insert (the cardinality catalog's histogram delta, fused here so
    /// the hot path pays one adjacency lookup, not two).
    pub fn add_edge(&mut self, e: EdgeId, src: VertexId, dst: VertexId, ty: Symbol) -> usize {
        self.ty.entry(ty).or_default().push(e);
        let out = self.out.entry(src).or_default();
        let old_out = out.items.len();
        out.push(e);
        self.inc.entry(dst).or_default().push(e);
        old_out
    }

    /// Unregister an edge; returns the source's out-degree *before* the
    /// removal.
    pub fn remove_edge(&mut self, e: EdgeId, src: VertexId, dst: VertexId, ty: Symbol) -> usize {
        bucket_remove(&mut self.ty, ty, e);
        let mut old_out = 0;
        if let Some(bucket) = self.out.get_mut(&src) {
            old_out = bucket.items.len();
            if bucket.remove(e) {
                self.out.remove(&src);
            }
        }
        bucket_remove(&mut self.inc, dst, e);
        old_out
    }

    /// Vertices carrying `label`.
    pub fn with_label(&self, label: Symbol) -> &[VertexId] {
        self.label.get(&label).map_or(&[], |b| b.items.as_slice())
    }

    /// Edges of type `ty`.
    pub fn with_type(&self, ty: Symbol) -> &[EdgeId] {
        self.ty.get(&ty).map_or(&[], |b| b.items.as_slice())
    }

    /// Outgoing edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> &[EdgeId] {
        self.out.get(&v).map_or(&[], |b| b.items.as_slice())
    }

    /// Incoming edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> &[EdgeId] {
        self.inc.get(&v).map_or(&[], |b| b.items.as_slice())
    }

    /// Labels currently indexing at least one vertex.
    pub fn labels(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.label.keys().copied()
    }

    /// Edge types currently indexing at least one edge.
    pub fn types(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.ty.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn label_index_roundtrip() {
        let mut ix = GraphIndexes::default();
        ix.add_label(sym("Post"), VertexId(1));
        ix.add_label(sym("Post"), VertexId(2));
        assert_eq!(ix.with_label(sym("Post")).len(), 2);
        ix.remove_label(sym("Post"), VertexId(1));
        assert_eq!(ix.with_label(sym("Post")), &[VertexId(2)]);
        assert!(ix.with_label(sym("Comm")).is_empty());
    }

    #[test]
    fn edge_indexes_roundtrip() {
        let mut ix = GraphIndexes::default();
        ix.add_edge(EdgeId(5), VertexId(1), VertexId(2), sym("REPLY"));
        assert_eq!(ix.with_type(sym("REPLY")), &[EdgeId(5)]);
        assert_eq!(ix.out_edges(VertexId(1)), &[EdgeId(5)]);
        assert_eq!(ix.in_edges(VertexId(2)), &[EdgeId(5)]);
        ix.remove_edge(EdgeId(5), VertexId(1), VertexId(2), sym("REPLY"));
        assert!(ix.with_type(sym("REPLY")).is_empty());
        assert!(ix.out_edges(VertexId(1)).is_empty());
        assert!(ix.in_edges(VertexId(2)).is_empty());
    }

    #[test]
    fn emptied_buckets_are_dropped() {
        let mut ix = GraphIndexes::default();
        ix.add_label(sym("Post"), VertexId(1));
        ix.add_edge(EdgeId(7), VertexId(1), VertexId(2), sym("REPLY"));
        assert_eq!(ix.labels().count(), 1);
        assert_eq!(ix.types().count(), 1);
        ix.remove_label(sym("Post"), VertexId(1));
        ix.remove_edge(EdgeId(7), VertexId(1), VertexId(2), sym("REPLY"));
        // No lingering empty buckets — churn must not leak index entries.
        assert_eq!(ix.labels().count(), 0);
        assert_eq!(ix.types().count(), 0);
        assert_eq!(ix.out.len(), 0);
        assert_eq!(ix.inc.len(), 0);
        assert_eq!(ix.label.len(), 0);
        assert_eq!(ix.ty.len(), 0);
    }

    #[test]
    fn swap_remove_backlink_stays_consistent() {
        let mut ix = GraphIndexes::default();
        for i in 1..=5 {
            ix.add_label(sym("X"), VertexId(i));
        }
        // Remove from the middle: the last element is swapped in; its
        // backlink must follow so a later removal still works.
        ix.remove_label(sym("X"), VertexId(2));
        ix.remove_label(sym("X"), VertexId(5)); // the swapped-in one
        let mut left = ix.with_label(sym("X")).to_vec();
        left.sort_unstable();
        assert_eq!(left, vec![VertexId(1), VertexId(3), VertexId(4)]);
        // Removing something absent is a no-op.
        ix.remove_label(sym("X"), VertexId(99));
        assert_eq!(ix.with_label(sym("X")).len(), 3);
    }
}
