//! Secondary indexes over the property graph.
//!
//! The paper's nullary operators need fast extents: © `get-vertices` reads
//! the label index, ⇑ `get-edges` reads the type index, and the baseline
//! evaluator's expand steps walk the adjacency lists. All indexes are
//! maintained eagerly by the store's mutators.

use pgq_common::fxhash::FxHashMap;
use pgq_common::ids::{EdgeId, VertexId};
use pgq_common::intern::Symbol;

/// Label, edge-type and adjacency indexes.
#[derive(Default, Debug, Clone)]
pub struct GraphIndexes {
    label: FxHashMap<Symbol, Vec<VertexId>>,
    ty: FxHashMap<Symbol, Vec<EdgeId>>,
    out: FxHashMap<VertexId, Vec<EdgeId>>,
    inc: FxHashMap<VertexId, Vec<EdgeId>>,
}

/// Remove the first occurrence of `x` in `v` (swap-remove; order within an
/// index bucket is not semantically meaningful).
fn remove_one<T: PartialEq + Copy>(v: &mut Vec<T>, x: T) {
    if let Some(pos) = v.iter().position(|&y| y == x) {
        v.swap_remove(pos);
    }
}

impl GraphIndexes {
    /// Register a vertex under `label`.
    pub fn add_label(&mut self, label: Symbol, v: VertexId) {
        self.label.entry(label).or_default().push(v);
    }

    /// Unregister a vertex from `label`.
    pub fn remove_label(&mut self, label: Symbol, v: VertexId) {
        if let Some(bucket) = self.label.get_mut(&label) {
            remove_one(bucket, v);
        }
    }

    /// Register an edge.
    pub fn add_edge(&mut self, e: EdgeId, src: VertexId, dst: VertexId, ty: Symbol) {
        self.ty.entry(ty).or_default().push(e);
        self.out.entry(src).or_default().push(e);
        self.inc.entry(dst).or_default().push(e);
    }

    /// Unregister an edge.
    pub fn remove_edge(&mut self, e: EdgeId, src: VertexId, dst: VertexId, ty: Symbol) {
        if let Some(bucket) = self.ty.get_mut(&ty) {
            remove_one(bucket, e);
        }
        if let Some(bucket) = self.out.get_mut(&src) {
            remove_one(bucket, e);
        }
        if let Some(bucket) = self.inc.get_mut(&dst) {
            remove_one(bucket, e);
        }
    }

    /// Vertices carrying `label`.
    pub fn with_label(&self, label: Symbol) -> &[VertexId] {
        self.label.get(&label).map_or(&[], Vec::as_slice)
    }

    /// Edges of type `ty`.
    pub fn with_type(&self, ty: Symbol) -> &[EdgeId] {
        self.ty.get(&ty).map_or(&[], Vec::as_slice)
    }

    /// Outgoing edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> &[EdgeId] {
        self.out.get(&v).map_or(&[], Vec::as_slice)
    }

    /// Incoming edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> &[EdgeId] {
        self.inc.get(&v).map_or(&[], Vec::as_slice)
    }

    /// Known labels (those that have ever indexed a vertex).
    pub fn labels(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.label.keys().copied()
    }

    /// Known edge types.
    pub fn types(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.ty.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn label_index_roundtrip() {
        let mut ix = GraphIndexes::default();
        ix.add_label(sym("Post"), VertexId(1));
        ix.add_label(sym("Post"), VertexId(2));
        assert_eq!(ix.with_label(sym("Post")).len(), 2);
        ix.remove_label(sym("Post"), VertexId(1));
        assert_eq!(ix.with_label(sym("Post")), &[VertexId(2)]);
        assert!(ix.with_label(sym("Comm")).is_empty());
    }

    #[test]
    fn edge_indexes_roundtrip() {
        let mut ix = GraphIndexes::default();
        ix.add_edge(EdgeId(5), VertexId(1), VertexId(2), sym("REPLY"));
        assert_eq!(ix.with_type(sym("REPLY")), &[EdgeId(5)]);
        assert_eq!(ix.out_edges(VertexId(1)), &[EdgeId(5)]);
        assert_eq!(ix.in_edges(VertexId(2)), &[EdgeId(5)]);
        ix.remove_edge(EdgeId(5), VertexId(1), VertexId(2), sym("REPLY"));
        assert!(ix.with_type(sym("REPLY")).is_empty());
        assert!(ix.out_edges(VertexId(1)).is_empty());
        assert!(ix.in_edges(VertexId(2)).is_empty());
    }
}
