//! Shared error scaffolding.

use std::fmt;

/// Errors raised by value-level operations (type mismatches in arithmetic
/// or comparisons, invalid property access targets, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommonError {
    /// An operation received operands of incompatible types.
    TypeMismatch {
        /// The operation attempted, e.g. `+` or `property access`.
        operation: String,
        /// A rendering of the offending operand types.
        detail: String,
    },
    /// Arithmetic overflow on 64-bit integers.
    ArithmeticOverflow(&'static str),
    /// Division or modulo by zero.
    DivisionByZero,
    /// Index out of bounds on a list.
    IndexOutOfBounds {
        /// The requested index.
        index: i64,
        /// The list length.
        len: usize,
    },
}

impl fmt::Display for CommonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommonError::TypeMismatch { operation, detail } => {
                write!(f, "type mismatch in {operation}: {detail}")
            }
            CommonError::ArithmeticOverflow(op) => write!(f, "integer overflow in {op}"),
            CommonError::DivisionByZero => write!(f, "division by zero"),
            CommonError::IndexOutOfBounds { index, len } => {
                write!(f, "list index {index} out of bounds (len {len})")
            }
        }
    }
}

impl std::error::Error for CommonError {}
