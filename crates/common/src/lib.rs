#![warn(missing_docs)]
//! # pgq-common
//!
//! Foundation types shared by every crate in the pgq workspace:
//!
//! * [`value::Value`] — the openCypher value model (atoms, lists, maps,
//!   nodes, relationships and *atomic* paths per the paper's proposal);
//! * [`ids`] — compact vertex/edge identifiers;
//! * [`tuple::Tuple`] — the row representation flowing through algebra
//!   operators and dataflow nodes;
//! * [`fxhash`] — a fast, deterministic hasher for integer-heavy keys
//!   (implemented locally to avoid an external dependency);
//! * [`intern`] — a global symbol interner for labels, edge types and
//!   property keys;
//! * [`path`] — the alternating vertex/edge path value, stored as an
//!   atomic unit exactly as Section 4 of the paper prescribes;
//! * [`pool`] — a persistent broadcast worker pool for the IVM
//!   scheduler's intra-transaction parallelism (`PGQ_THREADS`).

pub mod dir;
pub mod error;
pub mod fxhash;
pub mod ids;
pub mod intern;
pub mod ordf;
pub mod path;
pub mod pool;
pub mod tuple;
pub mod value;

pub use dir::Direction;
pub use error::CommonError;
pub use fxhash::{FxHashMap, FxHashSet};
pub use ids::{EdgeId, VertexId};
pub use intern::Symbol;
pub use path::PathValue;
pub use tuple::Tuple;
pub use value::Value;
