//! Edge traversal direction, shared by pattern ASTs, algebra operators and
//! the adjacency indexes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Direction of an edge pattern relative to its left endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Direction {
    /// `(a)-[...]->(b)`
    Out,
    /// `(a)<-[...]-(b)`
    In,
    /// `(a)-[...]-(b)` (undirected match: either orientation)
    Both,
}

impl Direction {
    /// The direction seen from the other endpoint.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
            Direction::Both => Direction::Both,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::Out => "->",
            Direction::In => "<-",
            Direction::Both => "--",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_is_involution() {
        for d in [Direction::Out, Direction::In, Direction::Both] {
            assert_eq!(d.reverse().reverse(), d);
        }
    }
}
