//! Compact, copyable identifiers for graph elements.
//!
//! Identifiers are plain `u64` newtypes: the store allocates them
//! monotonically and never reuses them within a graph's lifetime, so an id
//! uniquely names an element across the whole update history — a property
//! the IVM layer relies on when retracting tuples that mention deleted
//! elements.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a vertex in a property graph.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct VertexId(pub u64);

/// Identifier of an edge in a property graph.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct EdgeId(pub u64);

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl VertexId {
    /// Raw numeric id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl EdgeId {
    /// Raw numeric id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(VertexId(3).to_string(), "v3");
        assert_eq!(EdgeId(7).to_string(), "e7");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(10) > EdgeId(9));
    }
}
