//! A small persistent worker pool for intra-transaction parallelism.
//!
//! The IVM scheduler parallelises one delta-propagation pass at a time:
//! a short burst of CPU-bound work fanned across a fixed set of
//! threads, many thousands of times per second. Spawning threads per
//! pass (or per transaction) would dwarf the work being parallelised,
//! so a [`WorkerPool`] keeps its threads alive and parked on a condvar
//! between [`broadcast`](WorkerPool::broadcast) calls; dispatching a
//! pass is one mutex round-trip plus wakeups.
//!
//! The pool is deliberately minimal — it only knows how to run one
//! closure on every worker simultaneously. Work distribution (ready
//! queues, readiness counters) lives with the caller, which is what
//! makes the same pool reusable for differently-shaped passes.
//!
//! Thread count selection: [`threads_from_env`] reads `PGQ_THREADS`
//! once per process; `1` (the default) means strictly serial — callers
//! are expected to skip the pool entirely and run their existing serial
//! path, which keeps single-threaded behaviour byte-identical to a
//! build without the pool.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// The job slot: a lifetime-erased pointer to the broadcast closure.
///
/// Safety: [`WorkerPool::broadcast`] does not return until every worker
/// has finished running the closure, so the pointee outlives every
/// dereference (the same discipline as `std::thread::scope`).
struct JobPtr(*const (dyn Fn(usize) + Sync + 'static));

// Safety: the pointee is `Sync` (bound enforced by `broadcast`), so
// sharing the pointer with worker threads is sound.
unsafe impl Send for JobPtr {}

#[derive(Default)]
struct JobState {
    /// Bumped once per broadcast; workers run each epoch exactly once.
    epoch: u64,
    job: Option<JobPtr>,
    /// Spawned workers still running the current epoch's job.
    running: usize,
    /// First panic payload raised by a worker's job this epoch,
    /// re-raised by `broadcast` once every worker has drained.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<JobState>,
    /// Workers park here between epochs.
    work_cv: Condvar,
    /// The broadcaster parks here until `running` drains to zero.
    done_cv: Condvar,
}

/// A fixed-size pool of persistent worker threads driven by
/// [`broadcast`](WorkerPool::broadcast). See the module docs.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Serialises broadcasts (clones of an engine may share one pool
    /// through an `Arc` and maintain views from different threads).
    broadcast_lock: Mutex<()>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl WorkerPool {
    /// Pool with `threads` total workers. The calling thread is worker
    /// `0` of every broadcast, so `threads - 1` OS threads are spawned;
    /// `threads <= 1` spawns none and broadcasts run inline.
    pub fn new(threads: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(JobState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..threads.max(1))
            .map(|ix| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pgq-worker-{ix}"))
                    .spawn(move || worker_main(&shared, ix))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            broadcast_lock: Mutex::new(()),
        }
    }

    /// Total workers participating in a broadcast (spawned threads plus
    /// the caller).
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Run `job(worker_index)` once on every worker concurrently
    /// (indices `0..threads()`, the caller being `0`) and return when
    /// all of them have finished. Panics propagate to the caller after
    /// every worker has completed, so the pool stays usable; the
    /// original payload is re-raised (the caller's own panic takes
    /// precedence, then the first panicking worker's).
    ///
    /// Concurrent broadcasts from different threads are serialised.
    pub fn broadcast<F: Fn(usize) + Sync>(&self, job: F) {
        if self.handles.is_empty() {
            job(0);
            return;
        }
        let _serial = self.broadcast_lock.lock();
        // Erase the closure's lifetime for the job slot; see `JobPtr`.
        let ptr: *const (dyn Fn(usize) + Sync + '_) = &job;
        // Safety: pointer-only transmute widening the trait-object
        // lifetime; `broadcast` outlives every dereference.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(ptr)
        });
        {
            let mut s = self.shared.state.lock();
            debug_assert_eq!(s.running, 0, "previous broadcast fully drained");
            s.epoch += 1;
            s.job = Some(ptr);
            s.running = self.handles.len();
            s.panic = None;
        }
        self.shared.work_cv.notify_all();
        let caller_result = catch_unwind(AssertUnwindSafe(|| job(0)));
        let worker_panic = {
            let mut s = self.shared.state.lock();
            self.shared.done_cv.wait_while(&mut s, |s| s.running > 0);
            s.job = None;
            s.panic.take()
        };
        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut s = self.shared.state.lock();
            s.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_main(shared: &PoolShared, ix: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut s = shared.state.lock();
            shared
                .work_cv
                .wait_while(&mut s, |s| !s.shutdown && s.epoch == seen_epoch);
            if s.shutdown {
                return;
            }
            seen_epoch = s.epoch;
            JobPtr(s.job.as_ref().expect("epoch implies job").0)
        };
        // Safety: `broadcast` keeps the closure alive until `running`
        // drains to zero, which happens strictly after this call.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(ix) }));
        let mut s = shared.state.lock();
        if let Err(payload) = result {
            if s.panic.is_none() {
                s.panic = Some(payload);
            }
        }
        s.running -= 1;
        if s.running == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Process-wide default worker count: `PGQ_THREADS=<n>` (clamped to at
/// least 1), read once per process. Unset, empty, or unparsable means
/// `1` — the strictly serial engine.
pub fn threads_from_env() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("PGQ_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(1, |n| n.max(1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_every_worker_exactly_once() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let hits = [const { AtomicUsize::new(0) }; 4];
        for round in 1..=10 {
            pool.broadcast(|ix| {
                hits[ix].fetch_add(1, Ordering::Relaxed);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), round);
            }
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        let ran = AtomicUsize::new(0);
        pool.broadcast(|ix| {
            assert_eq!(ix, 0);
            assert_eq!(std::thread::current().id(), caller);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(3);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|ix| {
                if ix == 1 {
                    panic!("worker 1 fails");
                }
            });
        }));
        // The original payload must survive, not a generic pool error.
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"worker 1 fails"));
        // The pool must still work after the panic.
        let total = AtomicUsize::new(0);
        pool.broadcast(|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn shared_pool_serialises_concurrent_broadcasts() {
        let pool = Arc::new(WorkerPool::new(2));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let in_flight = Arc::clone(&in_flight);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        pool.broadcast(|ix| {
                            if ix == 0 {
                                // Only one broadcast may be active.
                                assert_eq!(in_flight.fetch_add(1, Ordering::SeqCst), 0);
                                assert_eq!(in_flight.fetch_sub(1, Ordering::SeqCst), 1);
                            }
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}
