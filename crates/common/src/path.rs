//! Atomic path values.
//!
//! Section 4 of the paper proposes keeping *paths* as the only ordered
//! collection in the data model, updated **atomically**: a maintained view
//! never edits a path in place — the old path is retracted and the new one
//! asserted. [`PathValue`] is therefore immutable after construction and
//! shared via `Arc` inside [`crate::value::Value::Path`].

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use crate::fxhash::FxHasher;
use crate::ids::{EdgeId, VertexId};

/// An alternating sequence `v0 -e0-> v1 -e1-> ... -e(n-1)-> vn`.
///
/// Invariant: `vertices.len() == edges.len() + 1` and `vertices` is
/// non-empty. A zero-length path (single vertex, no edges) is legal and is
/// produced by `[:T*0..]` patterns.
///
/// Paths are hashed constantly on the IVM hot path — as components of
/// join keys, multiplicity-map keys and path-store set members — so the
/// content hash is computed once at construction and cached; `Hash` then
/// costs one `u64` write regardless of path length, and `Eq` rejects
/// unequal paths in O(1) via the hash fast path.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(from = "PathParts", into = "PathParts")]
pub struct PathValue {
    vertices: Vec<VertexId>,
    edges: Vec<EdgeId>,
    /// Cached content hash (function of `vertices` + `edges` only).
    /// Never serialised — see [`PathParts`].
    hash: u64,
}

/// Serialisation surrogate for [`PathValue`]: content only, so the
/// cached hash is recomputed (not trusted) on deserialisation once the
/// real `serde` replaces the offline shim.
#[derive(Clone, Serialize, Deserialize)]
pub struct PathParts {
    /// Path vertices, in order.
    pub vertices: Vec<VertexId>,
    /// Path edges, in order.
    pub edges: Vec<EdgeId>,
}

impl From<PathParts> for PathValue {
    fn from(p: PathParts) -> PathValue {
        PathValue::new(p.vertices, p.edges)
    }
}

impl From<PathValue> for PathParts {
    fn from(p: PathValue) -> PathParts {
        PathParts {
            vertices: p.vertices,
            edges: p.edges,
        }
    }
}

fn content_hash(vertices: &[VertexId], edges: &[EdgeId]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(vertices.len() as u64);
    for v in vertices {
        h.write_u64(v.0);
    }
    for e in edges {
        h.write_u64(e.0);
    }
    h.finish()
}

impl PartialEq for PathValue {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.vertices == other.vertices && self.edges == other.edges
    }
}

impl Eq for PathValue {}

impl Hash for PathValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialOrd for PathValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PathValue {
    fn cmp(&self, other: &Self) -> Ordering {
        // Content order only — the cached hash must not influence it.
        self.vertices
            .cmp(&other.vertices)
            .then_with(|| self.edges.cmp(&other.edges))
    }
}

impl PathValue {
    /// A zero-length path anchored at `v`.
    pub fn single(v: VertexId) -> Self {
        let vertices = vec![v];
        let hash = content_hash(&vertices, &[]);
        PathValue {
            vertices,
            edges: Vec::new(),
            hash,
        }
    }

    /// Build from alternating parts; panics if the alternation invariant
    /// is violated (programming error, not data error).
    pub fn new(vertices: Vec<VertexId>, edges: Vec<EdgeId>) -> Self {
        assert!(
            !vertices.is_empty() && vertices.len() == edges.len() + 1,
            "path must alternate v,e,v,...: {} vertices, {} edges",
            vertices.len(),
            edges.len()
        );
        let hash = content_hash(&vertices, &edges);
        PathValue {
            vertices,
            edges,
            hash,
        }
    }

    /// Number of edges (the path *length* in Cypher terms).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for single-vertex paths.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// First vertex.
    #[inline]
    pub fn source(&self) -> VertexId {
        self.vertices[0]
    }

    /// Last vertex.
    #[inline]
    pub fn target(&self) -> VertexId {
        *self.vertices.last().expect("non-empty by invariant")
    }

    /// All vertices in order.
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// All edges in order.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Does the path traverse `e`?
    #[inline]
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }

    /// Does the path visit `v`?
    #[inline]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// `self` extended by one hop over `e` to `w`. The result is a new
    /// path; `self` is untouched (atomic-path discipline).
    pub fn extend(&self, e: EdgeId, w: VertexId) -> Self {
        let mut vertices = Vec::with_capacity(self.vertices.len() + 1);
        vertices.extend_from_slice(&self.vertices);
        vertices.push(w);
        let mut edges = Vec::with_capacity(self.edges.len() + 1);
        edges.extend_from_slice(&self.edges);
        edges.push(e);
        let hash = content_hash(&vertices, &edges);
        PathValue {
            vertices,
            edges,
            hash,
        }
    }

    /// Concatenate `self` with `other`; `other` must start where `self`
    /// ends. Returns `None` (rather than panicking) on a seam mismatch so
    /// the transitive-closure operator can treat it as a join miss.
    pub fn concat(&self, other: &PathValue) -> Option<Self> {
        if self.target() != other.source() {
            return None;
        }
        let mut vertices = self.vertices.clone();
        vertices.extend_from_slice(&other.vertices[1..]);
        let mut edges = self.edges.clone();
        edges.extend_from_slice(&other.edges);
        let hash = content_hash(&vertices, &edges);
        Some(PathValue {
            vertices,
            edges,
            hash,
        })
    }

    /// Are all traversed edges distinct? Cypher's relationship-isomorphism
    /// rule requires this of every matched path, and it is what keeps path
    /// sets finite on cyclic graphs.
    pub fn edges_distinct(&self) -> bool {
        let mut seen: Vec<EdgeId> = Vec::with_capacity(self.edges.len());
        for &e in &self.edges {
            if seen.contains(&e) {
                return false;
            }
            seen.push(e);
        }
        true
    }
}

impl fmt::Display for PathValue {
    /// Renders like the paper: `[1, 2, 3]` — vertex ids only, "for
    /// conciseness, edges are omitted from paths".
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", v.0)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u64) -> VertexId {
        VertexId(i)
    }
    fn e(i: u64) -> EdgeId {
        EdgeId(i)
    }

    #[test]
    fn single_vertex_path() {
        let p = PathValue::single(v(1));
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert_eq!(p.source(), v(1));
        assert_eq!(p.target(), v(1));
        assert_eq!(p.to_string(), "[1]");
    }

    #[test]
    fn extend_builds_alternation() {
        let p = PathValue::single(v(1))
            .extend(e(10), v(2))
            .extend(e(11), v(3));
        assert_eq!(p.len(), 2);
        assert_eq!(p.vertices(), &[v(1), v(2), v(3)]);
        assert_eq!(p.edges(), &[e(10), e(11)]);
        assert_eq!(p.to_string(), "[1, 2, 3]");
    }

    #[test]
    #[should_panic(expected = "alternate")]
    fn new_rejects_bad_alternation() {
        PathValue::new(vec![v(1), v(2)], vec![]);
    }

    #[test]
    fn concat_matches_seam() {
        let a = PathValue::single(v(1)).extend(e(10), v(2));
        let b = PathValue::single(v(2)).extend(e(11), v(3));
        let c = a.concat(&b).unwrap();
        assert_eq!(c.vertices(), &[v(1), v(2), v(3)]);
        assert_eq!(c.edges(), &[e(10), e(11)]);
    }

    #[test]
    fn concat_rejects_seam_mismatch() {
        let a = PathValue::single(v(1)).extend(e(10), v(2));
        let b = PathValue::single(v(9)).extend(e(11), v(3));
        assert!(a.concat(&b).is_none());
    }

    #[test]
    fn edge_distinctness() {
        let ok = PathValue::single(v(1))
            .extend(e(1), v(2))
            .extend(e(2), v(1));
        assert!(ok.edges_distinct());
        let bad = PathValue::new(vec![v(1), v(2), v(1)], vec![e(1), e(1)]);
        assert!(!bad.edges_distinct());
    }

    #[test]
    fn cached_hash_consistent_with_eq() {
        use std::hash::BuildHasher;
        let h = |p: &PathValue| crate::fxhash::FxBuildHasher::default().hash_one(p);
        let a = PathValue::single(v(1)).extend(e(10), v(2));
        let b = PathValue::single(v(1)).extend(e(10), v(2));
        let c = PathValue::new(vec![v(1), v(2)], vec![e(10)]);
        let joined = PathValue::single(v(1))
            .concat(&PathValue::single(v(1)).extend(e(10), v(2)))
            .unwrap();
        // Same content through four construction routes → equal + same
        // hash.
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, joined);
        assert_eq!(h(&a), h(&b));
        assert_eq!(h(&a), h(&c));
        assert_eq!(h(&a), h(&joined));
        // Different content → unequal (hash almost surely differs; only
        // equality is contractual).
        let d = PathValue::single(v(1)).extend(e(11), v(2));
        assert_ne!(a, d);
        // Ordering ignores the cached hash: by vertices, then edges.
        assert!(a < PathValue::single(v(1)).extend(e(10), v(3)));
        assert!(a.cmp(&d) == std::cmp::Ordering::Less);
    }

    #[test]
    fn contains_queries() {
        let p = PathValue::single(v(1)).extend(e(7), v(2));
        assert!(p.contains_edge(e(7)));
        assert!(!p.contains_edge(e(8)));
        assert!(p.contains_vertex(v(2)));
        assert!(!p.contains_vertex(v(3)));
    }
}
