//! A local implementation of the Fx hash algorithm (as used by rustc).
//!
//! Graph workloads key hash tables almost exclusively by small integers
//! (vertex/edge ids, interned symbols) and short tuples, for which Fx is
//! dramatically faster than SipHash while remaining deterministic across
//! runs — determinism matters because benchmark reports diff run-to-run.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher suitable for in-process hash maps.
///
/// Not HashDoS-resistant; never expose to untrusted key distributions.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        // Mix in the length so "ab" ++ "c" != "a" ++ "bc".
        self.add_to_hash(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` replacement keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` replacement keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        let a = hash_of(&1u64);
        let b = hash_of(&2u64);
        assert_ne!(a, b);
    }

    #[test]
    fn distinguishes_concatenation_boundaries() {
        // Length mixing prevents ("ab","c") colliding with ("a","bc").
        assert_ne!(hash_of(&("ab", "c")), hash_of(&("a", "bc")));
    }

    #[test]
    fn map_basic_usage() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn handles_unaligned_tails() {
        // Exercise the remainder path of `write`.
        for len in 0..=17usize {
            let bytes = vec![0xABu8; len];
            let mut h1 = FxHasher::default();
            h1.write(&bytes);
            let mut h2 = FxHasher::default();
            h2.write(&bytes);
            assert_eq!(h1.finish(), h2.finish(), "len {len}");
        }
    }
}
