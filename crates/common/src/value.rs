//! The openCypher value model.
//!
//! [`Value`] covers the atoms of the paper's domain `D`, graph element
//! references, and the nested collection types (lists, maps, paths) that
//! make the property graph model *nested-relational*. Values are cheap to
//! clone: collections are `Arc`-shared and strings are `Arc<str>`.
//!
//! `Value` is totally ordered and hashable so that it can key operator
//! memories in the dataflow and be sorted by the baseline evaluator. The
//! total order follows the openCypher orderability spec in spirit: values
//! of different kinds order by a fixed type rank, `Null` sorts last.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::error::CommonError;
use crate::ids::{EdgeId, VertexId};
use crate::ordf::OrdF64;
use crate::path::PathValue;

/// A runtime value in a graph relation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// Absent / unknown value (SQL-style three-valued logic applies).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float with total order semantics (see [`OrdF64`]).
    Float(OrdF64),
    /// UTF-8 string.
    Str(Arc<str>),
    /// Reference to a vertex.
    Node(VertexId),
    /// Reference to an edge.
    Rel(EdgeId),
    /// Ordered list of values. In the *maintainable* fragment lists may
    /// appear only as query results/aggregates, never as stored property
    /// values (the paper's bag-only data model restriction).
    List(Arc<Vec<Value>>),
    /// String-keyed map.
    Map(Arc<BTreeMap<String, Value>>),
    /// Atomic path (the one ordered collection the paper retains).
    Path(Arc<PathValue>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Construct a float value.
    pub fn float(f: f64) -> Value {
        Value::Float(OrdF64(f))
    }

    /// Construct a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(items))
    }

    /// Construct a map value.
    pub fn map(entries: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Map(Arc::new(entries.into_iter().collect()))
    }

    /// Construct a path value.
    pub fn path(p: PathValue) -> Value {
        Value::Path(Arc::new(p))
    }

    /// Human-readable type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Node(_) => "node",
            Value::Rel(_) => "relationship",
            Value::List(_) => "list",
            Value::Map(_) => "map",
            Value::Path(_) => "path",
        }
    }

    /// Is this `Null`?
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// View as vertex id, if a node reference.
    pub fn as_node(&self) -> Option<VertexId> {
        match self {
            Value::Node(v) => Some(*v),
            _ => None,
        }
    }

    /// View as edge id, if a relationship reference.
    pub fn as_rel(&self) -> Option<EdgeId> {
        match self {
            Value::Rel(e) => Some(*e),
            _ => None,
        }
    }

    /// View as integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// View as float, coercing integers (Cypher numeric coercion).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(f.get()),
            _ => None,
        }
    }

    /// View as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// View as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View as path.
    pub fn as_path(&self) -> Option<&PathValue> {
        match self {
            Value::Path(p) => Some(p),
            _ => None,
        }
    }

    /// View as list items.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    fn type_rank(&self) -> u8 {
        // openCypher orderability: maps < nodes < relationships < lists <
        // paths < strings < booleans < numbers < null. We follow that
        // ranking so baseline ORDER BY output is spec-plausible.
        match self {
            Value::Map(_) => 0,
            Value::Node(_) => 1,
            Value::Rel(_) => 2,
            Value::List(_) => 3,
            Value::Path(_) => 4,
            Value::Str(_) => 5,
            Value::Bool(_) => 6,
            Value::Int(_) | Value::Float(_) => 7,
            Value::Null => 8,
        }
    }

    /// Total order over all values ("orderability"). Numbers compare by
    /// numeric value across Int/Float; everything else compares within its
    /// type, and across types by a fixed type rank.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.cmp(b),
            (Int(a), Float(b)) => OrdF64(*a as f64).cmp(b),
            (Float(a), Int(b)) => a.cmp(&OrdF64(*b as f64)),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Node(a), Node(b)) => a.cmp(b),
            (Rel(a), Rel(b)) => a.cmp(b),
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.total_cmp(y) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            (Map(a), Map(b)) => {
                let mut ia = a.iter();
                let mut ib = b.iter();
                loop {
                    match (ia.next(), ib.next()) {
                        (None, None) => return Ordering::Equal,
                        (None, Some(_)) => return Ordering::Less,
                        (Some(_), None) => return Ordering::Greater,
                        (Some((ka, va)), Some((kb, vb))) => {
                            match ka.cmp(kb).then_with(|| va.total_cmp(vb)) {
                                Ordering::Equal => continue,
                                ord => return ord,
                            }
                        }
                    }
                }
            }
            (Path(a), Path(b)) => a.cmp(b),
            (Null, Null) => Ordering::Equal,
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    /// Cypher *comparability*: `None` models the `null` outcome (either
    /// operand null, or the operands are incomparable types).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(_), Int(_))
            | (Float(_), Float(_))
            | (Int(_), Float(_))
            | (Float(_), Int(_))
            | (Str(_), Str(_))
            | (Bool(_), Bool(_)) => Some(self.total_cmp(other)),
            _ => None,
        }
    }

    /// Cypher equality with three-valued logic: `None` means `null`.
    pub fn cypher_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            _ => Some(self == other || self.compare(other) == Some(Ordering::Equal)),
        }
    }

    /// `+` — numeric addition, string/list concatenation.
    pub fn add(&self, other: &Value) -> Result<Value, CommonError> {
        use Value::*;
        Ok(match (self, other) {
            (Null, _) | (_, Null) => Null,
            (Int(a), Int(b)) => Int(a
                .checked_add(*b)
                .ok_or(CommonError::ArithmeticOverflow("+"))?),
            (Int(a), Float(b)) => Value::float(*a as f64 + b.get()),
            (Float(a), Int(b)) => Value::float(a.get() + *b as f64),
            (Float(a), Float(b)) => Value::float(a.get() + b.get()),
            (Str(a), Str(b)) => {
                let mut s = String::with_capacity(a.len() + b.len());
                s.push_str(a);
                s.push_str(b);
                Value::str(s)
            }
            (List(a), List(b)) => {
                let mut v = Vec::with_capacity(a.len() + b.len());
                v.extend(a.iter().cloned());
                v.extend(b.iter().cloned());
                Value::list(v)
            }
            (List(a), b) => {
                let mut v = Vec::with_capacity(a.len() + 1);
                v.extend(a.iter().cloned());
                v.push(b.clone());
                Value::list(v)
            }
            _ => {
                return Err(CommonError::TypeMismatch {
                    operation: "+".into(),
                    detail: format!("{} + {}", self.type_name(), other.type_name()),
                })
            }
        })
    }

    /// `-`.
    pub fn sub(&self, other: &Value) -> Result<Value, CommonError> {
        self.numeric_binop(other, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// `*`.
    pub fn mul(&self, other: &Value) -> Result<Value, CommonError> {
        self.numeric_binop(other, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// `/` — integer division for two integers, float otherwise.
    pub fn div(&self, other: &Value) -> Result<Value, CommonError> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Ok(Null),
            (Int(_), Int(0)) => Err(CommonError::DivisionByZero),
            (Int(a), Int(b)) => Ok(Int(a.wrapping_div(*b))),
            _ => {
                let (a, b) = self.both_f64(other, "/")?;
                Ok(Value::float(a / b))
            }
        }
    }

    /// `%`.
    pub fn modulo(&self, other: &Value) -> Result<Value, CommonError> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Ok(Null),
            (Int(_), Int(0)) => Err(CommonError::DivisionByZero),
            (Int(a), Int(b)) => Ok(Int(a.wrapping_rem(*b))),
            _ => {
                let (a, b) = self.both_f64(other, "%")?;
                Ok(Value::float(a % b))
            }
        }
    }

    /// Unary minus.
    pub fn neg(&self) -> Result<Value, CommonError> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(
                i.checked_neg()
                    .ok_or(CommonError::ArithmeticOverflow("unary -"))?,
            )),
            Value::Float(f) => Ok(Value::float(-f.get())),
            _ => Err(CommonError::TypeMismatch {
                operation: "unary -".into(),
                detail: self.type_name().into(),
            }),
        }
    }

    fn numeric_binop(
        &self,
        other: &Value,
        op: &'static str,
        int_op: impl Fn(i64, i64) -> Option<i64>,
        float_op: impl Fn(f64, f64) -> f64,
    ) -> Result<Value, CommonError> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Ok(Null),
            (Int(a), Int(b)) => Ok(Int(
                int_op(*a, *b).ok_or(CommonError::ArithmeticOverflow(op))?
            )),
            _ => {
                let (a, b) = self.both_f64(other, op)?;
                Ok(Value::float(float_op(a, b)))
            }
        }
    }

    fn both_f64(&self, other: &Value, op: &str) -> Result<(f64, f64), CommonError> {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => Ok((a, b)),
            _ => Err(CommonError::TypeMismatch {
                operation: op.into(),
                detail: format!("{} {op} {}", self.type_name(), other.type_name()),
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Node(v) => write!(f, "{v}"),
            Value::Rel(e) => write!(f, "{e}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Path(p) => write!(f, "{p}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}
impl From<VertexId> for Value {
    fn from(v: VertexId) -> Self {
        Value::Node(v)
    }
}
impl From<EdgeId> for Value {
    fn from(e: EdgeId) -> Self {
        Value::Rel(e)
    }
}
impl From<PathValue> for Value {
    fn from(p: PathValue) -> Self {
        Value::path(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::str("en").to_string(), "'en'");
        assert_eq!(Value::list(vec![1.into(), 2.into()]).to_string(), "[1, 2]");
        assert_eq!(
            Value::map([("a".to_string(), Value::Int(1))]).to_string(),
            "{a: 1}"
        );
    }

    #[test]
    fn numeric_coercion_in_comparison() {
        assert_eq!(
            Value::Int(2).compare(&Value::float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(1).compare(&Value::float(1.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_propagates_through_comparison() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).cypher_eq(&Value::Null), None);
    }

    #[test]
    fn incomparable_types_yield_null() {
        assert_eq!(Value::Int(1).compare(&Value::str("a")), None);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).add(&Value::float(0.5)).unwrap(),
            Value::float(2.5)
        );
        assert_eq!(
            Value::str("a").add(&Value::str("b")).unwrap(),
            Value::str("ab")
        );
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(Value::Int(7).modulo(&Value::Int(2)).unwrap(), Value::Int(1));
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert_eq!(Value::Int(3).neg().unwrap(), Value::Int(-3));
    }

    #[test]
    fn arithmetic_null_propagation() {
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
        assert_eq!(Value::Int(1).sub(&Value::Null).unwrap(), Value::Null);
    }

    #[test]
    fn overflow_is_reported() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
        assert!(Value::Int(i64::MIN).neg().is_err());
    }

    #[test]
    fn list_concat() {
        let ab = Value::list(vec![1.into(), 2.into()]);
        let c = Value::list(vec![3.into()]);
        assert_eq!(
            ab.add(&c).unwrap(),
            Value::list(vec![1.into(), 2.into(), 3.into()])
        );
        assert_eq!(
            ab.add(&Value::Int(3)).unwrap(),
            Value::list(vec![1.into(), 2.into(), 3.into()])
        );
    }

    #[test]
    fn total_order_ranks_types_and_sorts_null_last() {
        let mut vals = [
            Value::Null,
            Value::Int(1),
            Value::str("x"),
            Value::Bool(true),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals.last().unwrap(), &Value::Null);
        assert_eq!(vals[0], Value::str("x"));
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(Value::Bool(true).add(&Value::Int(1)).is_err());
        assert!(Value::str("x").neg().is_err());
    }
}
