//! Totally ordered, hashable `f64` wrapper.
//!
//! Tuples flowing through the dataflow must be `Eq + Hash` to key operator
//! memories, and the baseline evaluator needs a total order for `ORDER BY`.
//! IEEE `f64` offers neither, so [`OrdF64`] canonicalises NaN to a single
//! bit pattern and negative zero to positive zero before comparing/hashing.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

/// A total-order, hash-consistent wrapper around `f64`.
///
/// All NaNs compare equal (and greater than every number, mirroring the
/// openCypher "NaN sorts last" rule); `-0.0 == 0.0` and both hash alike.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// Canonical bit pattern: one NaN, no negative zero.
    #[inline]
    fn canonical_bits(self) -> u64 {
        if self.0.is_nan() {
            f64::NAN.to_bits()
        } else if self.0 == 0.0 {
            0.0f64.to_bits()
        } else {
            self.0.to_bits()
        }
    }

    /// Inner float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.0.is_nan(), other.0.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self.0.partial_cmp(&other.0).expect("no NaN here"),
        }
    }
}

impl Hash for OrdF64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.canonical_bits().hash(state);
    }
}

impl fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for OrdF64 {
    fn from(v: f64) -> Self {
        OrdF64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn h(v: OrdF64) -> u64 {
        crate::fxhash::FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn nan_equals_nan() {
        assert_eq!(OrdF64(f64::NAN), OrdF64(f64::NAN));
        assert_eq!(h(OrdF64(f64::NAN)), h(OrdF64(-f64::NAN)));
    }

    #[test]
    fn nan_sorts_last() {
        assert!(OrdF64(f64::NAN) > OrdF64(f64::INFINITY));
        assert!(OrdF64(1.0) < OrdF64(f64::NAN));
    }

    #[test]
    fn zeros_unify() {
        assert_eq!(OrdF64(0.0), OrdF64(-0.0));
        assert_eq!(h(OrdF64(0.0)), h(OrdF64(-0.0)));
    }

    #[test]
    fn regular_ordering() {
        assert!(OrdF64(-1.5) < OrdF64(0.0));
        assert!(OrdF64(2.0) > OrdF64(1.0));
        assert_eq!(OrdF64(3.25), OrdF64(3.25));
    }
}
