//! Global string interner for labels, edge types and property keys.
//!
//! Property graphs name things with a small, heavily repeated vocabulary
//! (`Post`, `REPLY`, `lang`, ...). Interning turns every name into a
//! copyable [`Symbol`] so pattern matching and schema inference compare
//! `u32`s instead of strings. The interner is global and append-only;
//! symbols are stable for the process lifetime.

use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::fxhash::FxHashMap;

/// An interned string. Cheap to copy, O(1) to compare.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl fmt::Debug for Symbol {
    /// Renders the **resolved string**, not the intern id. The id is an
    /// interning-order artefact, different from process to process; every
    /// consumer that derives `Debug` over symbols (most importantly the
    /// plan fingerprint in `pgq_algebra`, which hashes the `Debug`
    /// rendering and keys durable operator-state snapshots) would
    /// otherwise leak process-local identity into output that must be
    /// content-stable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_str(|s| write!(f, "Symbol({s:?})"))
    }
}

#[derive(Default)]
struct Interner {
    map: FxHashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

fn interner() -> &'static RwLock<Interner> {
    use std::sync::OnceLock;
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::default()))
}

impl Symbol {
    /// Intern `s`, returning its symbol. Idempotent.
    pub fn intern(s: &str) -> Symbol {
        {
            let guard = interner().read();
            if let Some(&id) = guard.map.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write();
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
        let id = guard.strings.len() as u32;
        let arc: Arc<str> = Arc::from(s);
        guard.strings.push(arc.clone());
        guard.map.insert(arc, id);
        Symbol(id)
    }

    /// Resolve the symbol back to its string.
    pub fn resolve(self) -> Arc<str> {
        interner().read().strings[self.0 as usize].clone()
    }

    /// Run `f` with the symbol's string without cloning the `Arc`.
    pub fn with_str<R>(self, f: impl FnOnce(&str) -> R) -> R {
        f(&interner().read().strings[self.0 as usize])
    }

    /// Numeric id of the symbol (for dense side tables).
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_str(|s| f.write_str(s))
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Self {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("Post");
        let b = Symbol::intern("Post");
        assert_eq!(a, b);
        assert_eq!(a.resolve().as_ref(), "Post");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(Symbol::intern("Post"), Symbol::intern("Comm"));
    }

    #[test]
    fn display_roundtrip() {
        let s = Symbol::intern("REPLY");
        assert_eq!(s.to_string(), "REPLY");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("concurrent-key")))
            .collect();
        let syms: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
