//! Row representation for graph relations.
//!
//! A [`Tuple`] is a fixed-width sequence of [`Value`]s whose meaning is
//! given by the operator's inferred schema (attribute names live in the
//! algebra layer, not here — the paper's step 3 infers them per query).
//! Tuples are `Eq + Hash` so they can key multiplicity maps in the IVM
//! network.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// An immutable row of values, cheap to clone (`Arc`-backed).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Empty tuple (unit row) — the identity for [`Tuple::concat`].
    pub fn unit() -> Tuple {
        Tuple(Arc::from(Vec::new()))
    }

    /// Build from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple(Arc::from(values))
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Attribute at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// All values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Project the positions in `cols`, in order.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple::new(cols.iter().map(|&c| self.0[c].clone()).collect())
    }

    /// Concatenate two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple::new(v)
    }

    /// Append one value.
    pub fn push(&self, value: Value) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(value);
        Tuple::new(v)
    }

    /// Replace position `i` with `value` (copy-on-write).
    pub fn with(&self, i: usize, value: Value) -> Tuple {
        let mut v = self.0.to_vec();
        v[i] = value;
        Tuple::new(v)
    }

    /// Iterate values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn unit_is_identity_for_concat() {
        let a = t(&[1, 2]);
        assert_eq!(Tuple::unit().concat(&a), a);
        assert_eq!(a.concat(&Tuple::unit()), a);
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let a = t(&[10, 20, 30]);
        assert_eq!(a.project(&[2, 0, 0]), t(&[30, 10, 10]));
    }

    #[test]
    fn push_and_with() {
        let a = t(&[1]);
        assert_eq!(a.push(Value::Int(2)), t(&[1, 2]));
        assert_eq!(t(&[1, 2]).with(0, Value::Int(9)), t(&[9, 2]));
    }

    #[test]
    fn equality_and_hash_by_content() {
        use crate::fxhash::FxHashMap;
        let mut m: FxHashMap<Tuple, i64> = FxHashMap::default();
        m.insert(t(&[1, 2]), 1);
        *m.entry(t(&[1, 2])).or_insert(0) += 1;
        assert_eq!(m[&t(&[1, 2])], 2);
    }

    #[test]
    fn display() {
        assert_eq!(t(&[1, 2]).to_string(), "⟨1, 2⟩");
    }
}
