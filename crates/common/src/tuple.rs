//! Row representation for graph relations.
//!
//! A [`Tuple`] is a fixed-width sequence of [`Value`]s whose meaning is
//! given by the operator's inferred schema (attribute names live in the
//! algebra layer, not here — the paper's step 3 infers them per query).
//! Tuples are `Eq + Hash` so they can key multiplicity maps in the IVM
//! network.
//!
//! # Borrowed keys and scratch buffers
//!
//! The IVM hot path probes join memories once per delta entry and emits
//! one output tuple per match. Materialising a key `Tuple` per probe
//! (`Arc` allocation + value clones) dominates small-delta maintenance
//! cost, so this module provides an allocation-free alternative:
//!
//! * [`KeyRef`] — a borrowed view of a tuple's projection onto a column
//!   set, carrying a precomputed hash. The hash is defined over the
//!   projected *value sequence* (see [`hash_values`]), so it agrees with
//!   the hash of a standalone key tuple holding the same values:
//!   `KeyRef::new(&t, cols).hash() == hash_values(t.project(cols).iter())`.
//!   Index structures can therefore bucket by this `u64` and compare
//!   entries with [`KeyRef::matches_projection`] / [`KeyRef::matches_key`]
//!   without ever building the key tuple.
//! * [`Tuple::project_into`] / [`Tuple::concat_into`] — scratch-buffer
//!   variants of [`Tuple::project`] / [`Tuple::concat`] that fill a
//!   caller-owned `Vec<Value>`, so a loop can reuse one buffer and pay a
//!   single allocation per *output* tuple ([`Tuple::from_slice`]) instead
//!   of two.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::fxhash::FxHasher;
use crate::value::Value;

/// Hash a sequence of values with the workspace Fx hasher, in order,
/// mixing in the element count. This is the *key hash* used by the IVM
/// join memories: hashing a projection of a tuple and hashing the
/// materialised key tuple built from the same values produce the same
/// result.
pub fn hash_values<'a>(values: impl Iterator<Item = &'a Value>) -> u64 {
    let mut h = FxHasher::default();
    let mut n: u64 = 0;
    for v in values {
        v.hash(&mut h);
        n += 1;
    }
    h.write_u64(n);
    h.finish()
}

/// An immutable row of values, cheap to clone (`Arc`-backed).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Empty tuple (unit row) — the identity for [`Tuple::concat`].
    pub fn unit() -> Tuple {
        Tuple(Arc::from(Vec::new()))
    }

    /// Build from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple(Arc::from(values))
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Attribute at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// All values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Build from a borrowed slice (one allocation, values cloned).
    pub fn from_slice(values: &[Value]) -> Tuple {
        Tuple(Arc::from(values))
    }

    /// Project the positions in `cols`, in order.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple::new(cols.iter().map(|&c| self.0[c].clone()).collect())
    }

    /// Scratch-buffer variant of [`Tuple::project`]: clear `buf` and fill
    /// it with the projected values. Pair with [`Tuple::from_slice`] when
    /// an owned tuple is needed; reuse `buf` across loop iterations.
    pub fn project_into(&self, cols: &[usize], buf: &mut Vec<Value>) {
        buf.clear();
        buf.reserve(cols.len());
        buf.extend(cols.iter().map(|&c| self.0[c].clone()));
    }

    /// Concatenate two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple::new(v)
    }

    /// Scratch-buffer variant of [`Tuple::concat`]: clear `buf` and fill
    /// it with `self ++ other`.
    pub fn concat_into(&self, other: &Tuple, buf: &mut Vec<Value>) {
        buf.clear();
        buf.reserve(self.0.len() + other.0.len());
        buf.extend_from_slice(&self.0);
        buf.extend_from_slice(&other.0);
    }

    /// Borrowed key view of this tuple's projection onto `cols`, with the
    /// projection hash precomputed (see [`KeyRef`]).
    pub fn key_ref<'a>(&'a self, cols: &'a [usize]) -> KeyRef<'a> {
        KeyRef::new(self, cols)
    }

    /// Key hash of this tuple's projection onto `cols` — equals
    /// [`hash_values`] over the projected values.
    pub fn hash_projected(&self, cols: &[usize]) -> u64 {
        hash_values(cols.iter().map(|&c| &self.0[c]))
    }

    /// Key hash of the whole tuple — equals [`hash_values`] over all
    /// values, i.e. the hash a projection producing exactly these values
    /// would have. Used to probe key-hashed indexes with a standalone key
    /// tuple.
    pub fn hash_whole(&self) -> u64 {
        hash_values(self.0.iter())
    }

    /// Total order over tuples: lexicographic by [`Value::total_cmp`],
    /// shorter tuples first on a shared prefix. Used for deterministic
    /// (sorted) delta and result orderings.
    pub fn total_cmp(&self, other: &Tuple) -> std::cmp::Ordering {
        self.0
            .iter()
            .zip(other.0.iter())
            .fold(std::cmp::Ordering::Equal, |acc, (x, y)| {
                acc.then_with(|| x.total_cmp(y))
            })
            .then_with(|| self.0.len().cmp(&other.0.len()))
    }

    /// Append one value.
    pub fn push(&self, value: Value) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(value);
        Tuple::new(v)
    }

    /// Replace position `i` with `value` (copy-on-write).
    pub fn with(&self, i: usize, value: Value) -> Tuple {
        let mut v = self.0.to_vec();
        v[i] = value;
        Tuple::new(v)
    }

    /// Iterate values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

/// A borrowed view of a tuple's projection onto a column set, with the
/// key hash precomputed.
///
/// `KeyRef` lets an index keyed by projection hashes probe and compare
/// without materialising a key [`Tuple`]: the hash agrees with
/// [`hash_values`] over the projected values (and hence with
/// [`Tuple::hash_whole`] of the materialised key), and the `matches_*`
/// methods compare value-by-value against either another projection or a
/// standalone key tuple.
#[derive(Clone, Copy, Debug)]
pub struct KeyRef<'a> {
    tuple: &'a Tuple,
    cols: &'a [usize],
    hash: u64,
}

impl<'a> KeyRef<'a> {
    /// Borrow the projection of `tuple` onto `cols`, hashing it once.
    pub fn new(tuple: &'a Tuple, cols: &'a [usize]) -> KeyRef<'a> {
        KeyRef {
            tuple,
            cols,
            hash: tuple.hash_projected(cols),
        }
    }

    /// The precomputed key hash.
    #[inline]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Number of key columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Is the key empty (zero columns)?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Iterate the projected values.
    pub fn values(&self) -> impl Iterator<Item = &'a Value> + '_ {
        self.cols.iter().map(|&c| self.tuple.get(c))
    }

    /// Does `other.project(other_cols)` equal this key?
    pub fn matches_projection(&self, other: &Tuple, other_cols: &[usize]) -> bool {
        self.cols.len() == other_cols.len()
            && self
                .cols
                .iter()
                .zip(other_cols)
                .all(|(&a, &b)| self.tuple.get(a) == other.get(b))
    }

    /// Does the standalone key tuple `key` hold exactly this key's values?
    pub fn matches_key(&self, key: &Tuple) -> bool {
        self.cols.len() == key.arity()
            && self
                .cols
                .iter()
                .zip(key.iter())
                .all(|(&a, v)| self.tuple.get(a) == v)
    }

    /// Materialise the key as an owned [`Tuple`] (the one allocation this
    /// API otherwise avoids — call only when the key must be stored).
    pub fn to_tuple(&self) -> Tuple {
        self.tuple.project(self.cols)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn unit_is_identity_for_concat() {
        let a = t(&[1, 2]);
        assert_eq!(Tuple::unit().concat(&a), a);
        assert_eq!(a.concat(&Tuple::unit()), a);
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let a = t(&[10, 20, 30]);
        assert_eq!(a.project(&[2, 0, 0]), t(&[30, 10, 10]));
    }

    #[test]
    fn push_and_with() {
        let a = t(&[1]);
        assert_eq!(a.push(Value::Int(2)), t(&[1, 2]));
        assert_eq!(t(&[1, 2]).with(0, Value::Int(9)), t(&[9, 2]));
    }

    #[test]
    fn equality_and_hash_by_content() {
        use crate::fxhash::FxHashMap;
        let mut m: FxHashMap<Tuple, i64> = FxHashMap::default();
        m.insert(t(&[1, 2]), 1);
        *m.entry(t(&[1, 2])).or_insert(0) += 1;
        assert_eq!(m[&t(&[1, 2])], 2);
    }

    #[test]
    fn display() {
        assert_eq!(t(&[1, 2]).to_string(), "⟨1, 2⟩");
    }

    #[test]
    fn key_ref_hash_agrees_with_materialised_key() {
        let a = t(&[10, 20, 30]);
        let cols = [2usize, 0];
        let key = a.project(&cols);
        let kr = a.key_ref(&cols);
        assert_eq!(kr.hash(), key.hash_whole());
        assert_eq!(kr.hash(), hash_values(key.iter()));
        assert!(kr.matches_key(&key));
        assert!(!kr.matches_key(&t(&[30, 11])));
        assert_eq!(kr.to_tuple(), key);
    }

    #[test]
    fn key_ref_matches_projection_across_column_sets() {
        let a = t(&[1, 2, 3]);
        let b = t(&[9, 3, 1]);
        // a[(0,2)] = (1,3); b[(2,1)] = (1,3).
        assert!(a.key_ref(&[0, 2]).matches_projection(&b, &[2, 1]));
        assert!(!a.key_ref(&[0, 2]).matches_projection(&b, &[1, 2]));
        assert!(!a.key_ref(&[0]).matches_projection(&b, &[1, 2]));
        assert_eq!(
            a.hash_projected(&[0, 2]),
            b.hash_projected(&[2, 1]),
            "equal projections hash equal"
        );
    }

    #[test]
    fn empty_key_ref_matches_unit() {
        let a = t(&[1]);
        let kr = a.key_ref(&[]);
        assert!(kr.is_empty());
        assert!(kr.matches_key(&Tuple::unit()));
        assert_eq!(kr.hash(), Tuple::unit().hash_whole());
    }

    #[test]
    fn scratch_buffer_variants_match_allocating_ones() {
        let a = t(&[1, 2, 3]);
        let b = t(&[4, 5]);
        let mut buf = Vec::new();
        a.project_into(&[2, 0], &mut buf);
        assert_eq!(Tuple::from_slice(&buf), a.project(&[2, 0]));
        a.concat_into(&b, &mut buf);
        assert_eq!(Tuple::from_slice(&buf), a.concat(&b));
        // Buffer is reusable: a second call clears the previous content.
        a.project_into(&[0], &mut buf);
        assert_eq!(Tuple::from_slice(&buf), a.project(&[0]));
    }

    #[test]
    fn total_cmp_orders_lexicographically() {
        use std::cmp::Ordering;
        assert_eq!(t(&[1, 2]).total_cmp(&t(&[1, 3])), Ordering::Less);
        assert_eq!(t(&[1]).total_cmp(&t(&[1, 0])), Ordering::Less);
        assert_eq!(t(&[2]).total_cmp(&t(&[1, 9])), Ordering::Greater);
        assert_eq!(t(&[1, 2]).total_cmp(&t(&[1, 2])), Ordering::Equal);
    }
}
