//! Property-based tests for the value model: algebraic laws that the
//! IVM engine's correctness silently depends on (hash/eq consistency for
//! memory keys, total-order laws for deterministic output, arithmetic
//! sanity).

use pgq_common::ids::{EdgeId, VertexId};
use pgq_common::path::PathValue;
use pgq_common::value::Value;
use proptest::prelude::*;

fn atom() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::float),
        "[a-z]{0,8}".prop_map(Value::str),
        (0u64..50).prop_map(|i| Value::Node(VertexId(i))),
        (0u64..50).prop_map(|i| Value::Rel(EdgeId(i))),
    ]
}

fn value() -> impl Strategy<Value = Value> {
    atom().prop_recursive(2, 16, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::list),
            proptest::collection::vec(("[a-c]", inner), 0..3)
                .prop_map(|kv| Value::map(kv.into_iter())),
        ]
    })
}

fn hash_of(v: &Value) -> u64 {
    use std::hash::BuildHasher;
    pgq_common::fxhash::FxBuildHasher::default().hash_one(v)
}

proptest! {
    #[test]
    fn eq_implies_same_hash(a in value(), b in value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn total_cmp_is_total_and_antisymmetric(a in value(), b in value()) {
        use std::cmp::Ordering;
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn total_cmp_is_transitive(a in value(), b in value(), c in value()) {
        use std::cmp::Ordering::*;
        let mut vals = [a, b, c];
        vals.sort_by(|x, y| x.total_cmp(y));
        // After sorting, pairwise comparisons must agree with the order.
        prop_assert_ne!(vals[0].total_cmp(&vals[1]), Greater);
        prop_assert_ne!(vals[1].total_cmp(&vals[2]), Greater);
        prop_assert_ne!(vals[0].total_cmp(&vals[2]), Greater);
    }

    #[test]
    fn comparability_is_symmetric(a in atom(), b in atom()) {
        let ab = a.compare(&b);
        let ba = b.compare(&a);
        prop_assert_eq!(ab.map(|o| o.reverse()), ba);
    }

    #[test]
    fn int_addition_matches_i64(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let got = Value::Int(a).add(&Value::Int(b)).unwrap();
        prop_assert_eq!(got, Value::Int(a + b));
    }

    #[test]
    fn add_then_sub_roundtrips(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let sum = Value::Int(a).add(&Value::Int(b)).unwrap();
        let back = sum.sub(&Value::Int(b)).unwrap();
        prop_assert_eq!(back, Value::Int(a));
    }

    #[test]
    fn null_absorbs_arithmetic(v in atom()) {
        // Arithmetic with null is null whenever the op accepts the type.
        if let Ok(r) = v.add(&Value::Null) {
            prop_assert_eq!(r, Value::Null);
        }
        if let Ok(r) = Value::Null.mul(&v) {
            prop_assert_eq!(r, Value::Null);
        }
    }

    #[test]
    fn display_is_deterministic(v in value()) {
        prop_assert_eq!(v.to_string(), v.to_string());
    }
}

proptest! {
    #[test]
    fn path_concat_is_associative(
        edges_a in proptest::collection::vec(0u64..100, 0..4),
        edges_b in proptest::collection::vec(100u64..200, 0..4),
        edges_c in proptest::collection::vec(200u64..300, 0..4),
    ) {
        // Build three chains sharing seam vertices.
        let build = |start: u64, edges: &[u64]| {
            let mut p = PathValue::single(VertexId(start));
            let mut at = start;
            for &e in edges {
                at += 1;
                p = p.extend(EdgeId(e), VertexId(at));
            }
            p
        };
        let a = build(0, &edges_a);
        let b = build(a.target().raw(), &edges_b);
        let c = build(b.target().raw(), &edges_c);
        let left = a.concat(&b).unwrap().concat(&c).unwrap();
        let right = a.concat(&b.concat(&c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn path_extend_preserves_invariants(
        hops in proptest::collection::vec((0u64..1000, 0u64..1000), 0..8)
    ) {
        let mut p = PathValue::single(VertexId(0));
        for (e, v) in hops {
            p = p.extend(EdgeId(e), VertexId(v));
        }
        prop_assert_eq!(p.vertices().len(), p.edges().len() + 1);
        prop_assert_eq!(p.source(), VertexId(0));
    }
}
