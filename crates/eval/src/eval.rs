//! From-scratch (non-incremental) evaluation of FRA plans — the baseline
//! comparator of every benchmark, and the executor for queries outside
//! the maintainable fragment (ORDER BY / SKIP / LIMIT).

use std::cmp::Ordering;

use pgq_algebra::expr::{AggCall, AggFunc, ScalarExpr};
use pgq_algebra::fra::{Fra, PropPush};
use pgq_algebra::CompiledQuery;
use pgq_common::dir::Direction;
use pgq_common::fxhash::FxHashMap;
use pgq_common::tuple::Tuple;
use pgq_common::value::Value;
use pgq_graph::store::PropertyGraph;

use crate::paths::enumerate_paths;

/// A bag of result tuples.
pub type Bag = Vec<(Tuple, i64)>;

/// Evaluate an FRA plan against the current graph.
pub fn evaluate(fra: &Fra, g: &PropertyGraph) -> Bag {
    match fra {
        Fra::Unit => vec![(Tuple::unit(), 1)],
        Fra::ScanVertices {
            labels,
            props,
            carry_map,
            ..
        } => {
            let ids: Vec<_> = if labels.is_empty() {
                g.vertex_ids().collect()
            } else {
                g.vertices_with_label(labels[0]).to_vec()
            };
            let mut out = Vec::new();
            for v in ids {
                let data = g.vertex(v).expect("listed");
                if !labels.iter().all(|&l| data.has_label(l)) {
                    continue;
                }
                let mut vals = vec![Value::Node(v)];
                for p in props {
                    vals.push(data.props.get_or_null(p.prop));
                }
                if *carry_map {
                    vals.push(data.props.to_value_map());
                }
                out.push((Tuple::new(vals), 1));
            }
            out
        }
        Fra::ScanEdges {
            types,
            src_labels,
            dst_labels,
            src_props,
            edge_props,
            dst_props,
            dir,
            carry_maps,
            ..
        } => {
            let ids: Vec<_> = if types.is_empty() {
                g.edge_ids().collect()
            } else {
                types
                    .iter()
                    .flat_map(|&t| g.edges_with_type(t).iter().copied())
                    .collect()
            };
            let mut out = Vec::new();
            for e in ids {
                let data = g.edge(e).expect("listed");
                if !types.is_empty() && !types.contains(&data.ty) {
                    continue;
                }
                let orientations: &[(_, _)] = match dir {
                    Direction::Out => &[(data.src, data.dst)],
                    Direction::In => &[(data.dst, data.src)],
                    Direction::Both => {
                        if data.src == data.dst {
                            &[(data.src, data.dst)]
                        } else {
                            &[(data.src, data.dst), (data.dst, data.src)]
                        }
                    }
                };
                for &(s, d) in orientations {
                    let (Some(sd), Some(dd)) = (g.vertex(s), g.vertex(d)) else {
                        continue;
                    };
                    if !src_labels.iter().all(|&l| sd.has_label(l))
                        || !dst_labels.iter().all(|&l| dd.has_label(l))
                    {
                        continue;
                    }
                    let mut vals = vec![Value::Node(s), Value::Rel(e), Value::Node(d)];
                    for p in src_props {
                        vals.push(sd.props.get_or_null(p.prop));
                    }
                    for p in edge_props {
                        vals.push(data.props.get_or_null(p.prop));
                    }
                    for p in dst_props {
                        vals.push(dd.props.get_or_null(p.prop));
                    }
                    if carry_maps.0 {
                        vals.push(sd.props.to_value_map());
                    }
                    if carry_maps.1 {
                        vals.push(data.props.to_value_map());
                    }
                    if carry_maps.2 {
                        vals.push(dd.props.to_value_map());
                    }
                    out.push((Tuple::new(vals), 1));
                }
            }
            out
        }
        Fra::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let l = evaluate(left, g);
            let r = evaluate(right, g);
            let right_keep: Vec<usize> = (0..right.schema().len())
                .filter(|i| !right_keys.contains(i))
                .collect();
            let mut index: FxHashMap<Tuple, Vec<(Tuple, i64)>> = FxHashMap::default();
            for (t, m) in r {
                index.entry(t.project(right_keys)).or_default().push((t, m));
            }
            let mut out = Vec::new();
            for (lt, lm) in l {
                let key = lt.project(left_keys);
                if let Some(matches) = index.get(&key) {
                    for (rt, rm) in matches {
                        let mut vals: Vec<Value> = lt.values().to_vec();
                        for &i in &right_keep {
                            vals.push(rt.get(i).clone());
                        }
                        out.push((Tuple::new(vals), lm * rm));
                    }
                }
            }
            out
        }
        Fra::VarLengthJoin {
            left,
            src_col,
            spec,
            ..
        } => {
            let l = evaluate(left, g);
            let mut out = Vec::new();
            // Enumerate per distinct source, then fan out to left rows.
            let mut by_src: FxHashMap<Value, Vec<(Tuple, i64)>> = FxHashMap::default();
            for (t, m) in l {
                by_src
                    .entry(t.get(*src_col).clone())
                    .or_default()
                    .push((t, m));
            }
            for (srcv, rows) in by_src {
                let Some(src) = srcv.as_node() else { continue };
                for p in enumerate_paths(g, src, spec) {
                    let dst = p.target();
                    let Some(dd) = g.vertex(dst) else { continue };
                    if !spec.dst_labels.iter().all(|&l| dd.has_label(l)) {
                        continue;
                    }
                    let mut tail: Vec<Value> = vec![Value::Node(dst)];
                    for pr in &spec.dst_props {
                        tail.push(dd.props.get_or_null(pr.prop));
                    }
                    if spec.dst_carry_map {
                        tail.push(dd.props.to_value_map());
                    }
                    tail.push(Value::path(p.clone()));
                    for (t, m) in &rows {
                        let mut vals: Vec<Value> = t.values().to_vec();
                        vals.extend(tail.iter().cloned());
                        out.push((Tuple::new(vals), *m));
                    }
                }
            }
            out
        }
        Fra::SemiJoin {
            left,
            right,
            left_keys,
            right_keys,
            anti,
        } => {
            let l = evaluate(left, g);
            let r = evaluate(right, g);
            let mut support: FxHashMap<Tuple, i64> = FxHashMap::default();
            for (t, m) in r {
                *support.entry(t.project(right_keys)).or_insert(0) += m;
            }
            l.into_iter()
                .filter(|(t, _)| {
                    let positive = support.get(&t.project(left_keys)).copied().unwrap_or(0) > 0;
                    positive != *anti
                })
                .collect()
        }
        Fra::Filter { input, predicate } => evaluate(input, g)
            .into_iter()
            .filter(|(t, _)| predicate.matches(t))
            .collect(),
        Fra::Project { input, items } => evaluate(input, g)
            .into_iter()
            .map(|(t, m)| {
                let vals = items
                    .iter()
                    .map(|(e, _)| e.eval(&t).unwrap_or(Value::Null))
                    .collect::<Vec<_>>();
                (Tuple::new(vals), m)
            })
            .collect(),
        Fra::Distinct { input } => {
            let mut seen: FxHashMap<Tuple, i64> = FxHashMap::default();
            for (t, m) in evaluate(input, g) {
                *seen.entry(t).or_insert(0) += m;
            }
            seen.into_iter()
                .filter(|(_, m)| *m > 0)
                .map(|(t, _)| (t, 1))
                .collect()
        }
        Fra::Aggregate { input, group, aggs } => aggregate_bag(evaluate(input, g), group, aggs),
        Fra::Unwind { input, expr, .. } => {
            let mut out = Vec::new();
            for (t, m) in evaluate(input, g) {
                if let Ok(Value::List(items)) = expr.eval(&t) {
                    for item in items.iter() {
                        out.push((t.push(item.clone()), m));
                    }
                }
            }
            out
        }
        Fra::MultiwayJoin {
            inputs,
            var_of,
            names,
        } => {
            // The baseline recomputes ⨝ⁿ as a left-deep hash join over
            // variable bindings: fold the inputs in order, joining each
            // on whichever of its variables are already bound. Output
            // columns are the bindings in variable order (matching the
            // operator's schema), so results agree with the
            // incremental operator tuple-for-tuple.
            let nvars = names.len();
            let mut bound = vec![false; nvars];
            let mut acc: Vec<(Vec<Value>, i64)> = vec![(vec![Value::Null; nvars], 1)];
            for (i, inp) in inputs.iter().enumerate() {
                let by_col = &var_of[i];
                let first_col = |v: usize| {
                    by_col
                        .iter()
                        .position(|&w| w == v)
                        .expect("var of this input")
                };
                let mut distinct: Vec<usize> = by_col.clone();
                distinct.sort_unstable();
                distinct.dedup();
                let shared: Vec<usize> = distinct.iter().copied().filter(|&v| bound[v]).collect();
                let fresh: Vec<usize> = distinct.iter().copied().filter(|&v| !bound[v]).collect();
                let shared_cols: Vec<usize> = shared.iter().map(|&v| first_col(v)).collect();
                let fresh_cols: Vec<usize> = fresh.iter().map(|&v| first_col(v)).collect();
                let mut index: FxHashMap<Tuple, Vec<(Vec<Value>, i64)>> = FxHashMap::default();
                for (t, m) in evaluate(inp, g) {
                    // A variable mapped to several columns equates them.
                    if by_col
                        .iter()
                        .enumerate()
                        .any(|(c, &v)| t.get(first_col(v)) != t.get(c))
                    {
                        continue;
                    }
                    let vals: Vec<Value> = fresh_cols.iter().map(|&c| t.get(c).clone()).collect();
                    index
                        .entry(t.project(&shared_cols))
                        .or_default()
                        .push((vals, m));
                }
                let mut next = Vec::new();
                for (b, m) in acc {
                    let key: Tuple = shared.iter().map(|&v| b[v].clone()).collect();
                    if let Some(matches) = index.get(&key) {
                        for (vals, mm) in matches {
                            let mut nb = b.clone();
                            for (k, &v) in fresh.iter().enumerate() {
                                nb[v] = vals[k].clone();
                            }
                            next.push((nb, m * mm));
                        }
                    }
                }
                acc = next;
                for &v in &fresh {
                    bound[v] = true;
                }
            }
            acc.into_iter().map(|(b, m)| (Tuple::new(b), m)).collect()
        }
    }
}

fn aggregate_bag(input: Bag, group: &[(ScalarExpr, String)], aggs: &[(AggCall, String)]) -> Bag {
    struct Acc {
        rows: i64,
        values: Vec<Vec<Value>>, // per agg: raw arg values (mult-expanded)
    }
    let mut groups: FxHashMap<Tuple, Acc> = FxHashMap::default();
    for (t, m) in input {
        let key: Tuple = group
            .iter()
            .map(|(e, _)| e.eval(&t).unwrap_or(Value::Null))
            .collect();
        let acc = groups.entry(key).or_insert_with(|| Acc {
            rows: 0,
            values: vec![Vec::new(); aggs.len()],
        });
        acc.rows += m;
        for (i, (call, _)) in aggs.iter().enumerate() {
            let v = call
                .arg
                .as_ref()
                .map(|e| e.eval(&t).unwrap_or(Value::Null))
                .unwrap_or(Value::Null);
            for _ in 0..m.max(0) {
                acc.values[i].push(v.clone());
            }
        }
    }
    if group.is_empty() && groups.is_empty() {
        groups.insert(
            Tuple::unit(),
            Acc {
                rows: 0,
                values: vec![Vec::new(); aggs.len()],
            },
        );
    }
    let mut out = Vec::new();
    for (key, acc) in groups {
        if acc.rows <= 0 && !group.is_empty() {
            continue;
        }
        let mut vals: Vec<Value> = key.values().to_vec();
        for ((call, _), raw) in aggs.iter().zip(acc.values) {
            vals.push(finish_agg(call, acc.rows, raw));
        }
        out.push((Tuple::new(vals), 1));
    }
    out
}

fn finish_agg(call: &AggCall, rows: i64, mut raw: Vec<Value>) -> Value {
    raw.retain(|v| !v.is_null());
    if call.distinct {
        raw.sort_by(Value::total_cmp);
        raw.dedup();
    }
    match call.func {
        AggFunc::CountStar => Value::Int(rows),
        AggFunc::Count => Value::Int(raw.len() as i64),
        AggFunc::Sum => {
            let mut int_sum = 0i64;
            let mut float_sum = 0.0f64;
            let mut floats = false;
            for v in &raw {
                match v {
                    Value::Int(i) => int_sum += i,
                    Value::Float(f) => {
                        float_sum += f.get();
                        floats = true;
                    }
                    _ => {}
                }
            }
            if floats {
                Value::float(int_sum as f64 + float_sum)
            } else {
                Value::Int(int_sum)
            }
        }
        AggFunc::Avg => {
            let nums: Vec<f64> = raw.iter().filter_map(Value::as_f64).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::float(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggFunc::Min => raw
            .iter()
            .min_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null),
        AggFunc::Max => raw
            .iter()
            .max_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null),
        AggFunc::Collect => {
            raw.sort_by(Value::total_cmp);
            Value::list(raw)
        }
    }
}

/// Evaluate a compiled query end-to-end, applying ORDER BY / SKIP /
/// LIMIT — the constructs only the baseline supports (the paper's
/// trade-off).
pub fn evaluate_query(cq: &CompiledQuery, g: &PropertyGraph) -> Vec<Tuple> {
    let bag = evaluate(&cq.fra, g);
    let mut rows: Vec<Tuple> = Vec::new();
    for (t, m) in bag {
        for _ in 0..m.max(0) {
            rows.push(t.clone());
        }
    }
    // Deterministic base order.
    rows.sort_by(tuple_cmp);
    if !cq.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for (expr, asc) in &cq.order_by {
                let va = expr.eval(a).unwrap_or(Value::Null);
                let vb = expr.eval(b).unwrap_or(Value::Null);
                let ord = va.total_cmp(&vb);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }
    let start = cq.skip.unwrap_or(0).min(rows.len());
    let end = match cq.limit {
        Some(l) => (start + l).min(rows.len()),
        None => rows.len(),
    };
    rows[start..end].to_vec()
}

fn tuple_cmp(a: &Tuple, b: &Tuple) -> Ordering {
    a.values()
        .iter()
        .zip(b.values())
        .fold(Ordering::Equal, |acc, (x, y)| {
            acc.then_with(|| x.total_cmp(y))
        })
        .then_with(|| a.arity().cmp(&b.arity()))
}

/// Convenience: evaluate and consolidate into a sorted multiplicity bag
/// (for comparison against `pgq_ivm`-style view results).
pub fn evaluate_consolidated(fra: &Fra, g: &PropertyGraph) -> Bag {
    let mut m: FxHashMap<Tuple, i64> = FxHashMap::default();
    for (t, c) in evaluate(fra, g) {
        *m.entry(t).or_insert(0) += c;
    }
    let mut out: Vec<(Tuple, i64)> = m.into_iter().filter(|(_, c)| *c != 0).collect();
    out.sort_by(|a, b| tuple_cmp(&a.0, &b.0));
    out
}

// Silence an unused-import lint when PropPush is only used in signatures.
#[allow(unused)]
fn _prop_push_used(_: &PropPush) {}
