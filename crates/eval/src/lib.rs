#![warn(missing_docs)]
//! # pgq-eval
//!
//! The non-incremental baseline: from-scratch evaluation of FRA plans
//! against a graph snapshot. Serves three purposes:
//!
//! 1. the **recompute baseline** every benchmark compares IVM against
//!    (the paper's implicit comparator: systems without incremental
//!    views must re-run the query after every update);
//! 2. the **differential-testing oracle** — property tests assert that a
//!    maintained view equals a fresh evaluation after arbitrary update
//!    sequences;
//! 3. the executor for the constructs the paper's fragment deliberately
//!    excludes from IVM (`ORDER BY`, `SKIP`, `LIMIT`).

pub mod eval;
pub mod paths;

pub use eval::{evaluate, evaluate_consolidated, evaluate_query, Bag};
pub use paths::enumerate_paths;
