//! Non-incremental enumeration of edge-distinct variable-length paths
//! (DFS), used by the baseline evaluator's ⋈* implementation.

use pgq_algebra::fra::VarLenSpec;
use pgq_common::dir::Direction;
use pgq_common::ids::{EdgeId, VertexId};
use pgq_common::path::PathValue;
use pgq_graph::store::PropertyGraph;

/// Enumerate every edge-distinct path from `src` whose hops satisfy
/// `spec` (types, direction, literal edge-property filters) and whose
/// length lies within `[spec.min, spec.max]`. Destination label/property
/// constraints are applied by the caller.
pub fn enumerate_paths(g: &PropertyGraph, src: VertexId, spec: &VarLenSpec) -> Vec<PathValue> {
    let mut out = Vec::new();
    if !g.has_vertex(src) {
        return out;
    }
    if spec.min == 0 {
        out.push(PathValue::single(src));
    }
    let mut used: Vec<EdgeId> = Vec::new();
    let mut path = PathValue::single(src);
    dfs(g, src, spec, &mut used, &mut path, &mut out);
    out
}

fn hop_matches(g: &PropertyGraph, e: EdgeId, spec: &VarLenSpec) -> bool {
    let Some(data) = g.edge(e) else { return false };
    if !spec.types.is_empty() && !spec.types.contains(&data.ty) {
        return false;
    }
    spec.edge_prop_filters
        .iter()
        .all(|(k, v)| data.props.get(*k) == Some(v))
}

fn neighbours(g: &PropertyGraph, v: VertexId, spec: &VarLenSpec) -> Vec<(EdgeId, VertexId)> {
    let mut out = Vec::new();
    let consider_out = matches!(spec.dir, Direction::Out | Direction::Both);
    let consider_in = matches!(spec.dir, Direction::In | Direction::Both);
    if consider_out {
        for &e in g.out_edges(v) {
            if hop_matches(g, e, spec) {
                out.push((e, g.edge(e).expect("indexed").dst));
            }
        }
    }
    if consider_in {
        for &e in g.in_edges(v) {
            // Avoid double-reporting self-loops in Both mode.
            let data = g.edge(e).expect("indexed");
            if consider_out && data.src == data.dst {
                continue;
            }
            if hop_matches(g, e, spec) {
                out.push((e, data.src));
            }
        }
    }
    out
}

fn dfs(
    g: &PropertyGraph,
    at: VertexId,
    spec: &VarLenSpec,
    used: &mut Vec<EdgeId>,
    path: &mut PathValue,
    out: &mut Vec<PathValue>,
) {
    if let Some(max) = spec.max {
        if path.len() as u32 >= max {
            return;
        }
    }
    for (e, next) in neighbours(g, at, spec) {
        if used.contains(&e) {
            continue;
        }
        used.push(e);
        let extended = path.extend(e, next);
        if extended.len() as u32 >= spec.min.max(1) {
            out.push(extended.clone());
        }
        let mut ext = extended;
        std::mem::swap(path, &mut ext);
        dfs(g, next, spec, used, path, out);
        std::mem::swap(path, &mut ext);
        used.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_common::intern::Symbol;
    use pgq_graph::props::Properties;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn spec(min: u32, max: Option<u32>) -> VarLenSpec {
        VarLenSpec {
            types: vec![sym("R")],
            dir: Direction::Out,
            dst_labels: vec![],
            dst_props: vec![],
            dst_carry_map: false,
            edge_prop_filters: vec![],
            min,
            max,
        }
    }

    #[test]
    fn chain_enumeration() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([sym("N")], Properties::new()).0;
        let b = g.add_vertex([sym("N")], Properties::new()).0;
        let c = g.add_vertex([sym("N")], Properties::new()).0;
        g.add_edge(a, b, sym("R"), Properties::new()).unwrap();
        g.add_edge(b, c, sym("R"), Properties::new()).unwrap();
        let paths = enumerate_paths(&g, a, &spec(1, None));
        assert_eq!(paths.len(), 2); // a→b, a→b→c
        let paths = enumerate_paths(&g, a, &spec(0, Some(1)));
        assert_eq!(paths.len(), 2); // ε, a→b
    }

    #[test]
    fn cycle_bounded_by_edge_distinctness() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([sym("N")], Properties::new()).0;
        let b = g.add_vertex([sym("N")], Properties::new()).0;
        g.add_edge(a, b, sym("R"), Properties::new()).unwrap();
        g.add_edge(b, a, sym("R"), Properties::new()).unwrap();
        let paths = enumerate_paths(&g, a, &spec(1, None));
        assert_eq!(paths.len(), 2); // a→b, a→b→a
    }

    #[test]
    fn type_filter_respected() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([sym("N")], Properties::new()).0;
        let b = g.add_vertex([sym("N")], Properties::new()).0;
        g.add_edge(a, b, sym("OTHER"), Properties::new()).unwrap();
        assert!(enumerate_paths(&g, a, &spec(1, None)).is_empty());
    }
}
