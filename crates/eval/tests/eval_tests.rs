//! Direct tests of the baseline evaluator against hand-computed answers
//! (the evaluator is the differential oracle elsewhere, so it gets its
//! own ground-truth suite here).

use pgq_algebra::pipeline::{compile_query, compile_query_with, CompileOptions};
use pgq_common::intern::Symbol;
use pgq_common::tuple::Tuple;
use pgq_common::value::Value;
use pgq_eval::{evaluate_consolidated, evaluate_query};
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_parser::parse_query;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

fn compile(q: &str) -> pgq_algebra::CompiledQuery {
    compile_query(&parse_query(q).unwrap()).unwrap()
}

/// Posts with langs and lens, chained comments.
fn fixture() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let posts = [("en", 10), ("en", 20), ("de", 30)];
    for (lang, len) in posts {
        g.add_vertex(
            [s("Post")],
            Properties::from_iter([("lang", Value::str(lang)), ("len", Value::Int(len))]),
        );
    }
    g
}

#[test]
fn scan_with_filter() {
    let g = fixture();
    let cq = compile("MATCH (p:Post) WHERE p.lang = 'en' RETURN p.len");
    let got = evaluate_consolidated(&cq.fra, &g);
    assert_eq!(got.len(), 2);
    let lens: Vec<i64> = got
        .iter()
        .map(|(t, _)| t.get(0).as_int().unwrap())
        .collect();
    assert_eq!(lens, vec![10, 20]);
}

#[test]
fn order_by_asc_desc_skip_limit() {
    let g = fixture();
    let cq = compile("MATCH (p:Post) RETURN p.len AS len ORDER BY len DESC");
    let rows = evaluate_query(&cq, &g);
    let lens: Vec<i64> = rows.iter().map(|t| t.get(0).as_int().unwrap()).collect();
    assert_eq!(lens, vec![30, 20, 10]);

    let cq = compile("MATCH (p:Post) RETURN p.len AS len ORDER BY len SKIP 1 LIMIT 1");
    let rows = evaluate_query(&cq, &g);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get(0), &Value::Int(20));
}

#[test]
fn skip_beyond_end_is_empty() {
    let g = fixture();
    let cq = compile("MATCH (p:Post) RETURN p.len AS len ORDER BY len SKIP 99");
    assert!(evaluate_query(&cq, &g).is_empty());
}

#[test]
fn order_by_nulls_last() {
    let mut g = fixture();
    g.add_vertex([s("Post")], Properties::new()); // no len
    let cq = compile("MATCH (p:Post) RETURN p.len AS len ORDER BY len");
    let rows = evaluate_query(&cq, &g);
    assert_eq!(rows.last().unwrap().get(0), &Value::Null);
}

#[test]
fn aggregates_one_shot() {
    let g = fixture();
    let cq = compile("MATCH (p:Post) RETURN p.lang AS l, count(*) AS c, sum(p.len) AS s");
    let mut got = evaluate_consolidated(&cq.fra, &g);
    got.sort_by(|a, b| a.0.get(0).total_cmp(b.0.get(0)));
    assert_eq!(got.len(), 2);
    let de = &got[0].0;
    assert_eq!(de.get(0), &Value::str("de"));
    assert_eq!(de.get(1), &Value::Int(1));
    assert_eq!(de.get(2), &Value::Int(30));
    let en = &got[1].0;
    assert_eq!(en.get(1), &Value::Int(2));
    assert_eq!(en.get(2), &Value::Int(30));
}

#[test]
fn global_aggregate_on_empty_graph() {
    let g = PropertyGraph::new();
    let cq = compile("MATCH (p:Post) RETURN count(*) AS c");
    let got = evaluate_consolidated(&cq.fra, &g);
    assert_eq!(got, vec![(Tuple::new(vec![Value::Int(0)]), 1)]);
}

#[test]
fn varlength_bag_multiplicity() {
    // Diamond graph: 1→2→4, 1→3→4 ⇒ two 2-hop paths, b.x = 4 twice.
    let mut g = PropertyGraph::new();
    let ids: Vec<_> = (1..=4)
        .map(|x| {
            g.add_vertex([s("D")], Properties::from_iter([("x", Value::Int(x))]))
                .0
        })
        .collect();
    for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
        g.add_edge(ids[a], ids[b], s("R"), Properties::new())
            .unwrap();
    }
    let cq = compile("MATCH (a:D {x: 1})-[:R*2]->(b) RETURN b.x");
    let got = evaluate_consolidated(&cq.fra, &g);
    assert_eq!(got, vec![(Tuple::new(vec![Value::Int(4)]), 2)]);
}

#[test]
fn carry_maps_mode_evaluates_identically() {
    let g = fixture();
    let q = parse_query("MATCH (p:Post) WHERE p.lang = 'en' RETURN p.len").unwrap();
    let plain = compile_query(&q).unwrap();
    let maps = compile_query_with(
        &q,
        CompileOptions {
            schema_mode: pgq_algebra::SchemaMode::CarryMaps,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        evaluate_consolidated(&plain.fra, &g),
        evaluate_consolidated(&maps.fra, &g)
    );
}

#[test]
fn undirected_single_hop() {
    let mut g = PropertyGraph::new();
    let a = g
        .add_vertex([s("N")], Properties::from_iter([("x", Value::Int(1))]))
        .0;
    let b = g
        .add_vertex([s("N")], Properties::from_iter([("x", Value::Int(2))]))
        .0;
    g.add_edge(a, b, s("R"), Properties::new()).unwrap();
    let cq = compile("MATCH (p:N)-[:R]-(q:N) RETURN p.x, q.x");
    let got = evaluate_consolidated(&cq.fra, &g);
    assert_eq!(got.len(), 2, "both orientations");
}

#[test]
fn unwind_projection_chain() {
    let g = fixture();
    let cq = compile("MATCH (p:Post {lang: 'de'}) UNWIND [1, 2, 3] AS x RETURN p.len + x");
    let mut got: Vec<i64> = evaluate_consolidated(&cq.fra, &g)
        .into_iter()
        .map(|(t, _)| t.get(0).as_int().unwrap())
        .collect();
    got.sort_unstable();
    assert_eq!(got, vec![31, 32, 33]);
}
