//! Property-based tests for the front-end: rendering any generated AST
//! and re-parsing it yields the same AST (display/parse adjunction), and
//! the lexer never panics on arbitrary input.

use pgq_common::value::Value;
use pgq_parser::ast::{BinOp, Expr, UnOp};
use pgq_parser::parse_query;
use proptest::prelude::*;

fn literal() -> impl Strategy<Value = Value> {
    // Non-negative ints only: `-1` re-parses as unary negation of `1`,
    // which is semantically equal but structurally different.
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (0i64..1_000_000).prop_map(Value::Int),
        "[a-z ]{0,10}".prop_map(Value::str),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal().prop_map(Expr::Literal),
        "[a-z][a-z0-9]{0,4}"
            .prop_filter("not a keyword", |s| {
                pgq_parser::token::Kw::from_upper(&s.to_ascii_uppercase()).is_none()
            })
            .prop_map(Expr::Variable),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                "[a-z][a-z0-9]{0,4}".prop_filter("not kw", |s| {
                    pgq_parser::token::Kw::from_upper(&s.to_ascii_uppercase()).is_none()
                })
            )
                .prop_map(|(b, k)| Expr::Property(Box::new(b), k)),
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Eq),
                    Just(BinOp::Lt),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::In),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::Binary(op, Box::new(l), Box::new(r))),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Not, Box::new(e))),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Expr::List),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn rendered_expressions_reparse_identically(e in expr()) {
        // Embed the expression in a WHERE clause, the densest context.
        let src = format!("MATCH (zzz) WHERE {e} RETURN zzz");
        let q = parse_query(&src)
            .unwrap_or_else(|err| panic!("{src}: {}", err.render(&src)));
        let pgq_parser::ast::Clause::Match { where_clause: Some(parsed), .. } =
            &q.clauses[0] else { panic!("no WHERE") };
        prop_assert_eq!(parsed, &e, "source: {}", src);
    }

    #[test]
    fn lexer_never_panics(src in "[ -~]{0,64}") {
        let _ = pgq_parser::lexer::lex(&src);
    }

    #[test]
    fn parser_never_panics(src in "[ -~]{0,64}") {
        let _ = parse_query(&src);
    }

    #[test]
    fn full_query_roundtrip(
        label in "[A-Z][a-z]{0,5}".prop_filter("not a keyword", |s| {
            pgq_parser::token::Kw::from_upper(&s.to_ascii_uppercase()).is_none()
        }),
        ty in "[A-Z]{1,5}".prop_filter("not a keyword", |s| {
            pgq_parser::token::Kw::from_upper(s).is_none()
        }),
        key in "[a-z]{1,5}".prop_filter("not a keyword", |s| {
            pgq_parser::token::Kw::from_upper(&s.to_ascii_uppercase()).is_none()
        }),
        lit in -100i64..100,
        dir_out in any::<bool>(),
        varlen in any::<bool>(),
    ) {
        let arrow = match (dir_out, varlen) {
            (true, false) => format!("-[:{ty}]->"),
            (false, false) => format!("<-[:{ty}]-"),
            (true, true) => format!("-[:{ty}*]->"),
            (false, true) => format!("<-[:{ty}*]-"),
        };
        let src = format!(
            "MATCH (a:{label}){arrow}(b) WHERE a.{key} = {lit} RETURN a, b.{key}"
        );
        let q1 = parse_query(&src).unwrap();
        let rendered = q1.to_string();
        let q2 = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of {rendered:?}: {e}"));
        prop_assert_eq!(q1, q2);
    }
}
