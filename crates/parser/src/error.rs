//! Parse errors with source positions.

use std::fmt;

/// A lexing or parsing failure, carrying the byte offset into the query
/// text and a human-oriented message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset in the source where the problem was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Construct an error at `offset`.
    pub fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            message: message.into(),
        }
    }

    /// Render with a caret pointing into the original source.
    pub fn render(&self, source: &str) -> String {
        let upto = &source[..self.offset.min(source.len())];
        let line_no = upto.matches('\n').count() + 1;
        let line_start = upto.rfind('\n').map_or(0, |i| i + 1);
        let col = self.offset.saturating_sub(line_start) + 1;
        let line = source[line_start..].lines().next().unwrap_or("");
        format!(
            "parse error at line {line_no}, column {col}: {msg}\n  {line}\n  {caret:>col$}",
            msg = self.message,
            caret = "^",
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_column() {
        let src = "MATCH (n)\nRETURN @";
        let err = ParseError::new(17, "unexpected character `@`");
        let rendered = err.render(src);
        assert!(rendered.contains("line 2, column 8"));
        assert!(rendered.contains("RETURN @"));
    }
}
