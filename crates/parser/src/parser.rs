//! Recursive-descent / Pratt parser for the openCypher fragment.

use pgq_common::dir::Direction;
use pgq_common::value::Value;

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Kw, Spanned, Tok};

/// Parse a complete query.
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parse a `;`-separated script into individual queries. Empty statements
/// (stray semicolons, trailing newline) are skipped.
pub fn parse_script(src: &str) -> Result<Vec<Query>, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat(&Tok::Semicolon) {}
        if p.peek() == &Tok::Eof {
            break;
        }
        out.push(p.query()?);
        if p.peek() != &Tok::Eof && !p.eat(&Tok::Semicolon) {
            return Err(p.err(format!(
                "expected `;` between statements, found {}",
                p.peek()
            )));
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        self.tokens.get(self.pos + 1).map_or(&Tok::Eof, |s| &s.tok)
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        self.eat(&Tok::Keyword(kw))
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> Result<(), ParseError> {
        self.expect(&Tok::Keyword(kw))
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.offset(), message)
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        self.eat(&Tok::Semicolon);
        if self.peek() == &Tok::Eof {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing {}", self.peek())))
        }
    }

    /// Identifier, also admitting a few non-structural keywords so that
    /// `count`, `order` etc. remain usable as property keys.
    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            Tok::Keyword(Kw::Count) => {
                self.bump();
                Ok("count".into())
            }
            other => Err(self.err(format!("expected {what}, found {other}"))),
        }
    }

    // ---- query & clauses -------------------------------------------------

    fn query(&mut self) -> Result<Query, ParseError> {
        let mut clauses = Vec::new();
        loop {
            match self.peek() {
                Tok::Keyword(Kw::Match) => {
                    self.bump();
                    clauses.push(self.match_clause(false)?);
                }
                Tok::Keyword(Kw::Optional) => {
                    self.bump();
                    self.expect_kw(Kw::Match)?;
                    clauses.push(self.match_clause(true)?);
                }
                Tok::Keyword(Kw::Unwind) => {
                    self.bump();
                    let expr = self.expr()?;
                    self.expect_kw(Kw::As)?;
                    let alias = self.ident("variable after AS")?;
                    clauses.push(Clause::Unwind { expr, alias });
                }
                Tok::Keyword(Kw::With) => {
                    self.bump();
                    let body = self.return_body()?;
                    let where_clause = if self.eat_kw(Kw::Where) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    clauses.push(Clause::With { body, where_clause });
                }
                Tok::Keyword(Kw::Create) => {
                    self.bump();
                    clauses.push(Clause::Create(self.pattern()?));
                }
                Tok::Keyword(Kw::Merge) => {
                    return Err(self.err("MERGE is not supported (outside the paper's fragment)"));
                }
                Tok::Keyword(Kw::Detach) => {
                    self.bump();
                    self.expect_kw(Kw::Delete)?;
                    clauses.push(self.delete_clause(true)?);
                }
                Tok::Keyword(Kw::Delete) => {
                    self.bump();
                    clauses.push(self.delete_clause(false)?);
                }
                Tok::Keyword(Kw::Set) => {
                    self.bump();
                    clauses.push(Clause::Set(self.set_items()?));
                }
                Tok::Keyword(Kw::Remove) => {
                    self.bump();
                    clauses.push(Clause::Remove(self.remove_items()?));
                }
                Tok::Keyword(Kw::Return) => {
                    self.bump();
                    clauses.push(Clause::Return(self.return_body()?));
                }
                _ => break,
            }
        }
        if clauses.is_empty() {
            return Err(self.err("expected a clause (MATCH, CREATE, RETURN, ...)"));
        }
        Ok(Query { clauses })
    }

    fn match_clause(&mut self, optional: bool) -> Result<Clause, ParseError> {
        let pattern = self.pattern()?;
        let where_clause = if self.eat_kw(Kw::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Clause::Match {
            optional,
            pattern,
            where_clause,
        })
    }

    fn delete_clause(&mut self, detach: bool) -> Result<Clause, ParseError> {
        let mut exprs = vec![self.expr()?];
        while self.eat(&Tok::Comma) {
            exprs.push(self.expr()?);
        }
        Ok(Clause::Delete { detach, exprs })
    }

    fn set_items(&mut self) -> Result<Vec<SetItem>, ParseError> {
        let mut items = Vec::new();
        loop {
            let variable = self.ident("variable in SET")?;
            if self.eat(&Tok::Dot) {
                let key = self.ident("property key")?;
                self.expect(&Tok::Eq)?;
                let value = self.expr()?;
                items.push(SetItem::Property {
                    variable,
                    key,
                    value,
                });
            } else if self.peek() == &Tok::Colon {
                let mut labels = Vec::new();
                while self.eat(&Tok::Colon) {
                    labels.push(self.ident("label")?);
                }
                items.push(SetItem::Labels { variable, labels });
            } else {
                return Err(self.err("expected `.key = value` or `:Label` in SET"));
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn remove_items(&mut self) -> Result<Vec<RemoveItem>, ParseError> {
        let mut items = Vec::new();
        loop {
            let variable = self.ident("variable in REMOVE")?;
            if self.eat(&Tok::Dot) {
                let key = self.ident("property key")?;
                items.push(RemoveItem::Property { variable, key });
            } else if self.peek() == &Tok::Colon {
                let mut labels = Vec::new();
                while self.eat(&Tok::Colon) {
                    labels.push(self.ident("label")?);
                }
                items.push(RemoveItem::Labels { variable, labels });
            } else {
                return Err(self.err("expected `.key` or `:Label` in REMOVE"));
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn return_body(&mut self) -> Result<ReturnClause, ParseError> {
        let distinct = self.eat_kw(Kw::Distinct);
        if self.peek() == &Tok::Star {
            return Err(self.err("RETURN * is not supported; list the variables explicitly"));
        }
        let mut items = vec![self.return_item()?];
        while self.eat(&Tok::Comma) {
            items.push(self.return_item()?);
        }
        let mut order_by = Vec::new();
        if self.eat_kw(Kw::Order) {
            self.expect_kw(Kw::By)?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_kw(Kw::Desc) {
                    false
                } else {
                    self.eat_kw(Kw::Asc);
                    true
                };
                order_by.push((e, asc));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let skip = if self.eat_kw(Kw::Skip) {
            Some(self.expr()?)
        } else {
            None
        };
        let limit = if self.eat_kw(Kw::Limit) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(ReturnClause {
            distinct,
            items,
            order_by,
            skip,
            limit,
        })
    }

    fn return_item(&mut self) -> Result<ReturnItem, ParseError> {
        let expr = self.expr()?;
        let alias = if self.eat_kw(Kw::As) {
            Some(self.ident("alias after AS")?)
        } else {
            None
        };
        Ok(ReturnItem { expr, alias })
    }

    // ---- patterns ----------------------------------------------------------

    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        let mut paths = vec![self.path_pattern()?];
        while self.eat(&Tok::Comma) {
            paths.push(self.path_pattern()?);
        }
        Ok(Pattern { paths })
    }

    fn path_pattern(&mut self) -> Result<PathPattern, ParseError> {
        // `t = (...)` — a path variable.
        let variable = if matches!(self.peek(), Tok::Ident(_)) && self.peek2() == &Tok::Eq {
            let v = self.ident("path variable")?;
            self.expect(&Tok::Eq)?;
            Some(v)
        } else {
            None
        };
        let start = self.node_pattern()?;
        let mut steps = Vec::new();
        while matches!(self.peek(), Tok::Dash | Tok::ArrowLeft) {
            let rel = self.rel_pattern()?;
            let node = self.node_pattern()?;
            steps.push((rel, node));
        }
        Ok(PathPattern {
            variable,
            start,
            steps,
        })
    }

    fn node_pattern(&mut self) -> Result<NodePattern, ParseError> {
        self.expect(&Tok::LParen)?;
        let variable = match self.peek() {
            Tok::Ident(_) => Some(self.ident("node variable")?),
            _ => None,
        };
        let mut labels = Vec::new();
        while self.eat(&Tok::Colon) {
            labels.push(self.ident("label")?);
        }
        let props = if self.peek() == &Tok::LBrace {
            self.property_map()?
        } else {
            Vec::new()
        };
        self.expect(&Tok::RParen)?;
        Ok(NodePattern {
            variable,
            labels,
            props,
        })
    }

    fn rel_pattern(&mut self) -> Result<RelPattern, ParseError> {
        // Left half: `-` or `<-`.
        let left_in = match self.bump() {
            Tok::Dash => false,
            Tok::ArrowLeft => true,
            other => return Err(self.err(format!("expected relationship pattern, found {other}"))),
        };

        let mut rel = RelPattern::default();
        if self.eat(&Tok::LBracket) {
            if matches!(self.peek(), Tok::Ident(_)) {
                rel.variable = Some(self.ident("relationship variable")?);
            }
            if self.eat(&Tok::Colon) {
                rel.types.push(self.ident("relationship type")?);
                while self.eat(&Tok::Pipe) {
                    self.eat(&Tok::Colon);
                    rel.types.push(self.ident("relationship type")?);
                }
            }
            if self.eat(&Tok::Star) {
                rel.range = Some(self.range_spec()?);
            }
            if self.peek() == &Tok::LBrace {
                rel.props = self.property_map()?;
            }
            self.expect(&Tok::RBracket)?;
        }

        // Right half: `->` or `-`.
        let right_out = match self.bump() {
            Tok::ArrowRight => true,
            Tok::Dash => false,
            other => {
                return Err(self.err(format!(
                    "expected `-` or `->` to close relationship pattern, found {other}"
                )))
            }
        };

        rel.direction = match (left_in, right_out) {
            (false, true) => Direction::Out,
            (true, false) => Direction::In,
            (false, false) => Direction::Both,
            (true, true) => {
                return Err(self.err("relationship cannot point both ways (`<-[..]->`)"))
            }
        };
        Ok(rel)
    }

    fn range_spec(&mut self) -> Result<RangeSpec, ParseError> {
        // After `*`: [min] [`..` [max]]
        let mut spec = RangeSpec::DEFAULT;
        let mut saw_min = false;
        if let Tok::Int(n) = self.peek() {
            let n = *n;
            if n < 0 {
                return Err(self.err("variable-length bound must be non-negative"));
            }
            self.bump();
            spec.min = n as u32;
            spec.max = Some(n as u32); // `*3` = exactly three hops
            saw_min = true;
        }
        if self.eat(&Tok::DotDot) {
            if !saw_min {
                spec.min = 1;
            }
            spec.max = None;
            if let Tok::Int(n) = self.peek() {
                let n = *n;
                if n < 0 {
                    return Err(self.err("variable-length bound must be non-negative"));
                }
                self.bump();
                spec.max = Some(n as u32);
            }
            if let Some(max) = spec.max {
                if max < spec.min {
                    return Err(
                        self.err(format!("empty variable-length range *{}..{max}", spec.min))
                    );
                }
            }
        }
        Ok(spec)
    }

    fn property_map(&mut self) -> Result<Vec<(String, Expr)>, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut props = Vec::new();
        if self.peek() != &Tok::RBrace {
            loop {
                let key = self.ident("property key")?;
                self.expect(&Tok::Colon)?;
                let value = self.expr()?;
                props.push((key, value));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(props)
    }

    // ---- expressions (Pratt) ----------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.xor_expr()?;
        while self.eat_kw(Kw::Or) {
            let rhs = self.xor_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn xor_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(Kw::Xor) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Xor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw(Kw::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw(Kw::Not) {
            let inner = self.not_expr()?;
            Ok(Expr::Unary(UnOp::Not, Box::new(inner)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Eq => BinOp::Eq,
                Tok::Neq => BinOp::Neq,
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                Tok::Keyword(Kw::In) => BinOp::In,
                Tok::Keyword(Kw::Starts) => {
                    self.bump();
                    self.expect_kw(Kw::With)?;
                    let rhs = self.additive()?;
                    lhs = Expr::Binary(BinOp::StartsWith, Box::new(lhs), Box::new(rhs));
                    continue;
                }
                Tok::Keyword(Kw::Ends) => {
                    self.bump();
                    self.expect_kw(Kw::With)?;
                    let rhs = self.additive()?;
                    lhs = Expr::Binary(BinOp::EndsWith, Box::new(lhs), Box::new(rhs));
                    continue;
                }
                Tok::Keyword(Kw::Contains) => {
                    self.bump();
                    let rhs = self.additive()?;
                    lhs = Expr::Binary(BinOp::Contains, Box::new(lhs), Box::new(rhs));
                    continue;
                }
                Tok::Keyword(Kw::Is) => {
                    self.bump();
                    let negated = self.eat_kw(Kw::Not);
                    self.expect_kw(Kw::Null)?;
                    lhs = Expr::IsNull {
                        expr: Box::new(lhs),
                        negated,
                    };
                    continue;
                }
                _ => break,
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Dash => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.power()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.power()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn power(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.unary()?;
        if self.eat(&Tok::Caret) {
            // Right-associative.
            let rhs = self.power()?;
            Ok(Expr::Binary(BinOp::Pow, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Dash => {
                self.bump();
                let inner = self.unary()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(inner)))
            }
            Tok::Plus => {
                self.bump();
                self.unary()
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.atom()?;
        loop {
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    let key = self.ident("property key")?;
                    e = Expr::Property(Box::new(e), key);
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                Tok::Colon if matches!(e, Expr::Variable(_)) => {
                    // Label predicate `n:Label`.
                    let mut labels = Vec::new();
                    while self.eat(&Tok::Colon) {
                        labels.push(self.ident("label")?);
                    }
                    e = Expr::HasLabel(Box::new(e), labels);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(n)))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(Expr::Literal(Value::float(x)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::str(s)))
            }
            Tok::Keyword(Kw::True) => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Tok::Keyword(Kw::False) => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            Tok::Keyword(Kw::Null) => {
                self.bump();
                Ok(Expr::Literal(Value::Null))
            }
            Tok::Keyword(Kw::Count) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                if self.eat(&Tok::Star) {
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::CountStar)
                } else {
                    let distinct = self.eat_kw(Kw::Distinct);
                    let arg = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Function {
                        name: "count".into(),
                        distinct,
                        args: vec![arg],
                    })
                }
            }
            Tok::Keyword(Kw::Exists) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                // `exists((a)-[:R]->(b))` takes a pattern; `exists(n.p)`
                // takes an expression. A nested `(` that is a node
                // pattern (empty, identifier, `:` or `{` inside)
                // disambiguates.
                if self.peek() == &Tok::LParen {
                    // Backtracking attempt: parse as a pattern; if that
                    // fails, fall back to a parenthesised expression.
                    let saved = self.pos;
                    match self.path_pattern().and_then(|p| {
                        self.expect(&Tok::RParen)?;
                        Ok(p)
                    }) {
                        Ok(pattern) => return Ok(Expr::PatternPredicate(Box::new(pattern))),
                        Err(_) => self.pos = saved,
                    }
                    let arg = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Function {
                        name: "exists".into(),
                        distinct: false,
                        args: vec![arg],
                    })
                } else {
                    let arg = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Function {
                        name: "exists".into(),
                        distinct: false,
                        args: vec![arg],
                    })
                }
            }
            Tok::Dollar => {
                self.bump();
                let name = self.ident("parameter name")?;
                Ok(Expr::Parameter(name))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if self.peek() != &Tok::RBracket {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket)?;
                Ok(Expr::List(items))
            }
            Tok::LBrace => {
                let entries = self.property_map()?;
                Ok(Expr::Map(entries))
            }
            Tok::Ident(name) => {
                if self.peek2() == &Tok::LParen {
                    self.bump();
                    self.bump(); // `(`
                    let distinct = self.eat_kw(Kw::Distinct);
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Function {
                        name: name.to_ascii_lowercase(),
                        distinct,
                        args,
                    })
                } else {
                    self.bump();
                    Ok(Expr::Variable(name))
                }
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Query {
        parse_query(src).unwrap_or_else(|e| panic!("{}", e.render(src)))
    }

    #[test]
    fn parses_running_example() {
        let q = parse(
            "MATCH t = (p:Post)-[:REPLY*]->(c:Comm)\n\
             WHERE p.lang = c.lang\n\
             RETURN p, t",
        );
        assert_eq!(q.clauses.len(), 2);
        let Clause::Match {
            optional,
            pattern,
            where_clause,
        } = &q.clauses[0]
        else {
            panic!("expected MATCH");
        };
        assert!(!optional);
        assert!(where_clause.is_some());
        let path = &pattern.paths[0];
        assert_eq!(path.variable.as_deref(), Some("t"));
        assert_eq!(path.start.labels, vec!["Post"]);
        let (rel, node) = &path.steps[0];
        assert_eq!(rel.types, vec!["REPLY"]);
        assert_eq!(rel.range, Some(RangeSpec { min: 1, max: None }));
        assert_eq!(rel.direction, Direction::Out);
        assert_eq!(node.labels, vec!["Comm"]);
        let ret = q.return_clause().unwrap();
        assert_eq!(ret.items.len(), 2);
    }

    #[test]
    fn range_specs() {
        let cases = [
            ("*", RangeSpec { min: 1, max: None }),
            (
                "*3",
                RangeSpec {
                    min: 3,
                    max: Some(3),
                },
            ),
            (
                "*1..4",
                RangeSpec {
                    min: 1,
                    max: Some(4),
                },
            ),
            (
                "*..4",
                RangeSpec {
                    min: 1,
                    max: Some(4),
                },
            ),
            ("*2..", RangeSpec { min: 2, max: None }),
            ("*0..", RangeSpec { min: 0, max: None }),
        ];
        for (spec, want) in cases {
            let q = parse(&format!("MATCH (a)-[:R{spec}]->(b) RETURN a"));
            let Clause::Match { pattern, .. } = &q.clauses[0] else {
                panic!()
            };
            assert_eq!(pattern.paths[0].steps[0].0.range, Some(want), "{spec}");
        }
    }

    #[test]
    fn empty_range_is_rejected() {
        assert!(parse_query("MATCH (a)-[:R*3..1]->(b) RETURN a").is_err());
    }

    #[test]
    fn directions() {
        for (src, want) in [
            ("MATCH (a)-[:R]->(b) RETURN a", Direction::Out),
            ("MATCH (a)<-[:R]-(b) RETURN a", Direction::In),
            ("MATCH (a)-[:R]-(b) RETURN a", Direction::Both),
        ] {
            let q = parse(src);
            let Clause::Match { pattern, .. } = &q.clauses[0] else {
                panic!()
            };
            assert_eq!(pattern.paths[0].steps[0].0.direction, want, "{src}");
        }
        assert!(parse_query("MATCH (a)<-[:R]->(b) RETURN a").is_err());
    }

    #[test]
    fn bracketless_relationships() {
        let q = parse("MATCH (a)-->(b)<--(c) RETURN a");
        let Clause::Match { pattern, .. } = &q.clauses[0] else {
            panic!()
        };
        assert_eq!(pattern.paths[0].steps.len(), 2);
        assert_eq!(pattern.paths[0].steps[0].0.direction, Direction::Out);
        assert_eq!(pattern.paths[0].steps[1].0.direction, Direction::In);
    }

    #[test]
    fn multiple_types_and_props() {
        let q = parse("MATCH (a)-[e:KNOWS|LIKES {since: 2010}]->(b) RETURN e");
        let Clause::Match { pattern, .. } = &q.clauses[0] else {
            panic!()
        };
        let rel = &pattern.paths[0].steps[0].0;
        assert_eq!(rel.types, vec!["KNOWS", "LIKES"]);
        assert_eq!(rel.variable.as_deref(), Some("e"));
        assert_eq!(rel.props.len(), 1);
    }

    #[test]
    fn expression_precedence() {
        let q = parse("MATCH (n) WHERE n.a + n.b * 2 = 7 AND NOT n.c RETURN n");
        let Clause::Match {
            where_clause: Some(w),
            ..
        } = &q.clauses[0]
        else {
            panic!()
        };
        // Top node must be AND.
        let Expr::Binary(BinOp::And, l, _) = w else {
            panic!("want AND at top, got {w:?}")
        };
        // Left of AND is the equality.
        let Expr::Binary(BinOp::Eq, add, _) = l.as_ref() else {
            panic!()
        };
        let Expr::Binary(BinOp::Add, _, mul) = add.as_ref() else {
            panic!()
        };
        assert!(matches!(mul.as_ref(), Expr::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn power_is_right_associative() {
        let q = parse("MATCH (n) WHERE n.x = 2 ^ 3 ^ 2 RETURN n");
        let Clause::Match {
            where_clause: Some(w),
            ..
        } = &q.clauses[0]
        else {
            panic!()
        };
        let Expr::Binary(BinOp::Eq, _, pow) = w else {
            panic!()
        };
        let Expr::Binary(BinOp::Pow, _, right) = pow.as_ref() else {
            panic!()
        };
        assert!(matches!(right.as_ref(), Expr::Binary(BinOp::Pow, _, _)));
    }

    #[test]
    fn string_predicates_and_in() {
        parse("MATCH (n) WHERE n.name STARTS WITH 'A' AND n.name ENDS WITH 'z' RETURN n");
        parse("MATCH (n) WHERE n.name CONTAINS 'bo' RETURN n");
        parse("MATCH (n) WHERE n.lang IN ['en', 'de'] RETURN n");
    }

    #[test]
    fn is_null_predicates() {
        let q = parse("MATCH (n) WHERE n.x IS NOT NULL RETURN n");
        let Clause::Match {
            where_clause: Some(w),
            ..
        } = &q.clauses[0]
        else {
            panic!()
        };
        assert!(matches!(w, Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn label_predicate_in_where() {
        let q = parse("MATCH (n) WHERE n:Post:Hot RETURN n");
        let Clause::Match {
            where_clause: Some(w),
            ..
        } = &q.clauses[0]
        else {
            panic!()
        };
        let Expr::HasLabel(_, labels) = w else {
            panic!()
        };
        assert_eq!(labels, &vec!["Post".to_string(), "Hot".to_string()]);
    }

    #[test]
    fn aggregates_and_functions() {
        let q = parse("MATCH (n:Post) RETURN count(*) AS c, count(DISTINCT n.lang), size(n.tags)");
        let ret = q.return_clause().unwrap();
        assert_eq!(ret.items[0].expr, Expr::CountStar);
        assert_eq!(ret.items[0].alias.as_deref(), Some("c"));
        let Expr::Function { name, distinct, .. } = &ret.items[1].expr else {
            panic!()
        };
        assert_eq!(name, "count");
        assert!(distinct);
    }

    #[test]
    fn order_skip_limit_parsed() {
        let q = parse("MATCH (n:Post) RETURN n ORDER BY n.len DESC, n.id SKIP 2 LIMIT 3");
        let ret = q.return_clause().unwrap();
        assert_eq!(ret.order_by.len(), 2);
        assert!(!ret.order_by[0].1);
        assert!(ret.order_by[1].1);
        assert!(ret.skip.is_some());
        assert!(ret.limit.is_some());
    }

    #[test]
    fn update_clauses() {
        let q = parse("CREATE (p:Post {lang: 'en'})-[:REPLY]->(c:Comm)");
        assert!(q.is_update());
        let q = parse("MATCH (n:Post) DETACH DELETE n");
        let Clause::Delete { detach, exprs } = &q.clauses[1] else {
            panic!()
        };
        assert!(detach);
        assert_eq!(exprs.len(), 1);
        let q = parse("MATCH (n:Post) SET n.lang = 'de', n:Hot");
        let Clause::Set(items) = &q.clauses[1] else {
            panic!()
        };
        assert_eq!(items.len(), 2);
        let q = parse("MATCH (n:Post) REMOVE n.lang, n:Hot");
        let Clause::Remove(items) = &q.clauses[1] else {
            panic!()
        };
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn unwind_clause() {
        let q = parse("MATCH t = (a)-[:R*]->(b) UNWIND nodes(t) AS n RETURN n");
        let Clause::Unwind { alias, .. } = &q.clauses[1] else {
            panic!()
        };
        assert_eq!(alias, "n");
    }

    #[test]
    fn with_and_optional_match_parse() {
        parse("MATCH (a) WITH a AS x RETURN x");
        parse("MATCH (a) OPTIONAL MATCH (a)-[:R]->(b) RETURN a, b");
    }

    #[test]
    fn merge_is_rejected_with_clear_error() {
        let err = parse_query("MERGE (n:Post) RETURN n").unwrap_err();
        assert!(err.message.contains("MERGE"));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse_query("MATCH (n) RETURN n n").is_err());
    }

    #[test]
    fn multiple_paths_in_match() {
        let q = parse("MATCH (a:Post), (b:Comm) RETURN a, b");
        let Clause::Match { pattern, .. } = &q.clauses[0] else {
            panic!()
        };
        assert_eq!(pattern.paths.len(), 2);
    }

    #[test]
    fn anonymous_nodes_and_rels() {
        let q = parse("MATCH (:Post)-[]->() RETURN 1");
        let Clause::Match { pattern, .. } = &q.clauses[0] else {
            panic!()
        };
        let p = &pattern.paths[0];
        assert!(p.start.variable.is_none());
        assert!(p.steps[0].1.variable.is_none());
    }

    #[test]
    fn parameters_parse() {
        let q = parse("MATCH (n) WHERE n.lang = $lang RETURN n");
        let Clause::Match {
            where_clause: Some(w),
            ..
        } = &q.clauses[0]
        else {
            panic!()
        };
        let Expr::Binary(BinOp::Eq, _, r) = w else {
            panic!()
        };
        assert_eq!(r.as_ref(), &Expr::Parameter("lang".into()));
    }
}
