//! Hand-written lexer for the openCypher fragment.

use crate::error::ParseError;
use crate::token::{Kw, Spanned, Tok};

/// Tokenise `src` into a vector ending with [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment.
                let mut j = i + 2;
                loop {
                    if j + 1 >= bytes.len() {
                        return Err(ParseError::new(start, "unterminated block comment"));
                    }
                    if bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        i = j + 2;
                        break;
                    }
                    j += 1;
                }
            }
            '(' => push1(&mut out, Tok::LParen, &mut i),
            ')' => push1(&mut out, Tok::RParen, &mut i),
            '[' => push1(&mut out, Tok::LBracket, &mut i),
            ']' => push1(&mut out, Tok::RBracket, &mut i),
            '{' => push1(&mut out, Tok::LBrace, &mut i),
            '}' => push1(&mut out, Tok::RBrace, &mut i),
            ':' => push1(&mut out, Tok::Colon, &mut i),
            ',' => push1(&mut out, Tok::Comma, &mut i),
            ';' => push1(&mut out, Tok::Semicolon, &mut i),
            '|' => push1(&mut out, Tok::Pipe, &mut i),
            '+' => push1(&mut out, Tok::Plus, &mut i),
            '*' => push1(&mut out, Tok::Star, &mut i),
            '/' => push1(&mut out, Tok::Slash, &mut i),
            '%' => push1(&mut out, Tok::Percent, &mut i),
            '^' => push1(&mut out, Tok::Caret, &mut i),
            '=' => push1(&mut out, Tok::Eq, &mut i),
            '$' => push1(&mut out, Tok::Dollar, &mut i),
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Spanned {
                        tok: Tok::ArrowRight,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push1(&mut out, Tok::Dash, &mut i);
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'-') => {
                    out.push(Spanned {
                        tok: Tok::ArrowLeft,
                        offset: start,
                    });
                    i += 2;
                }
                Some(&b'=') => {
                    out.push(Spanned {
                        tok: Tok::Le,
                        offset: start,
                    });
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Spanned {
                        tok: Tok::Neq,
                        offset: start,
                    });
                    i += 2;
                }
                _ => push1(&mut out, Tok::Lt, &mut i),
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        tok: Tok::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push1(&mut out, Tok::Gt, &mut i);
                }
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    out.push(Spanned {
                        tok: Tok::DotDot,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                    // `.5` style float.
                    let (tok, next) = lex_number(src, i)?;
                    out.push(Spanned { tok, offset: start });
                    i = next;
                } else {
                    push1(&mut out, Tok::Dot, &mut i);
                }
            }
            '\'' | '"' => {
                let (s, next) = lex_string(src, i)?;
                out.push(Spanned {
                    tok: Tok::Str(s),
                    offset: start,
                });
                i = next;
            }
            '`' => {
                // Backtick-quoted identifier.
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'`' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError::new(start, "unterminated backtick identifier"));
                }
                out.push(Spanned {
                    tok: Tok::Ident(src[i + 1..j].to_string()),
                    offset: start,
                });
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(src, i)?;
                out.push(Spanned { tok, offset: start });
                i = next;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len() {
                    let c2 = src[j..].chars().next().expect("in range");
                    if c2.is_alphanumeric() || c2 == '_' {
                        j += c2.len_utf8();
                    } else {
                        break;
                    }
                }
                let word = &src[i..j];
                let upper = word.to_ascii_uppercase();
                let tok = match Kw::from_upper(&upper) {
                    Some(k) => Tok::Keyword(k),
                    None => Tok::Ident(word.to_string()),
                };
                out.push(Spanned { tok, offset: start });
                i = j;
            }
            other => {
                return Err(ParseError::new(
                    start,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        offset: src.len(),
    });
    Ok(out)
}

fn push1(out: &mut Vec<Spanned>, tok: Tok, i: &mut usize) {
    out.push(Spanned { tok, offset: *i });
    *i += 1;
}

fn lex_string(src: &str, start: usize) -> Result<(String, usize), ParseError> {
    let quote = src.as_bytes()[start] as char;
    let mut out = String::new();
    let mut chars = src[start + 1..].char_indices();
    while let Some((off, c)) = chars.next() {
        let abs = start + 1 + off;
        match c {
            '\\' => match chars.next() {
                Some((_, esc)) => out.push(match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    '\\' => '\\',
                    '\'' => '\'',
                    '"' => '"',
                    other => {
                        return Err(ParseError::new(
                            abs,
                            format!("unknown escape sequence \\{other}"),
                        ))
                    }
                }),
                None => return Err(ParseError::new(abs, "unterminated string")),
            },
            c if c == quote => return Ok((out, abs + c.len_utf8())),
            c => out.push(c),
        }
    }
    Err(ParseError::new(start, "unterminated string"))
}

fn lex_number(src: &str, start: usize) -> Result<(Tok, usize), ParseError> {
    let bytes = src.as_bytes();
    let mut i = start;
    let mut is_float = false;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    // Fractional part — but `1..3` must lex as Int DotDot Int.
    // A fractional part requires digits after the dot (openCypher floats
    // are `D+.D+`); a bare trailing dot stays a separate token so that
    // `1.prop` lexes as Int, Dot, Ident.
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &src[start..i];
    if is_float {
        text.parse::<f64>()
            .map(|f| (Tok::Float(f), i))
            .map_err(|_| ParseError::new(start, format!("invalid float literal {text:?}")))
    } else {
        text.parse::<i64>()
            .map(|n| (Tok::Int(n), i))
            .map_err(|_| ParseError::new(start, format!("integer literal {text:?} out of range")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_running_example() {
        let ts = toks("MATCH t = (p:Post)-[:REPLY*]->(c:Comm)");
        assert_eq!(ts[0], Tok::Keyword(Kw::Match));
        assert!(ts.contains(&Tok::Ident("t".into())));
        assert!(ts.contains(&Tok::ArrowRight));
        assert!(ts.contains(&Tok::Star));
        assert!(ts.contains(&Tok::Ident("REPLY".into())));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(toks("match")[0], Tok::Keyword(Kw::Match));
        assert_eq!(toks("MaTcH")[0], Tok::Keyword(Kw::Match));
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(toks("42"), vec![Tok::Int(42), Tok::Eof]);
        assert_eq!(toks("4.5"), vec![Tok::Float(4.5), Tok::Eof]);
        assert_eq!(
            toks("1..3"),
            vec![Tok::Int(1), Tok::DotDot, Tok::Int(3), Tok::Eof]
        );
        assert_eq!(toks("1e3"), vec![Tok::Float(1000.0), Tok::Eof]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#"'it\'s' "two\n""#),
            vec![Tok::Str("it's".into()), Tok::Str("two\n".into()), Tok::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 // comment\n 2 /* block */ 3"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Int(3), Tok::Eof]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= <> ="),
            vec![
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Neq,
                Tok::Eq,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn arrows_vs_dashes() {
        assert_eq!(
            toks("-[]-> <-[]-"),
            vec![
                Tok::Dash,
                Tok::LBracket,
                Tok::RBracket,
                Tok::ArrowRight,
                Tok::ArrowLeft,
                Tok::LBracket,
                Tok::RBracket,
                Tok::Dash,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn backtick_identifiers() {
        assert_eq!(
            toks("`weird name`"),
            vec![Tok::Ident("weird name".into()), Tok::Eof]
        );
    }

    #[test]
    fn bad_character_is_reported_with_offset() {
        let err = lex("MATCH @").unwrap_err();
        assert_eq!(err.offset, 6);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'abc").is_err());
    }
}
