//! Rendering the AST back to Cypher text (used by EXPLAIN output and by
//! [`crate::ast::ReturnItem::name`] for implicit column names).

use std::fmt;

use crate::ast::*;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Variable(name) => write!(f, "{name}"),
            Expr::Property(base, key) => write!(f, "{base}.{key}"),
            Expr::Binary(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "(NOT {e})"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Function {
                name,
                distinct,
                args,
            } => {
                write!(f, "{name}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::CountStar => write!(f, "count(*)"),
            Expr::List(items) => {
                write!(f, "[")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Expr::Map(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Expr::Index(b, i) => write!(f, "{b}[{i}]"),
            Expr::HasLabel(b, labels) => {
                write!(f, "{b}")?;
                for l in labels {
                    write!(f, ":{l}")?;
                }
                Ok(())
            }
            Expr::IsNull { expr, negated } => {
                // Parenthesised: `a = b IS NULL` would otherwise re-parse
                // as `(a = b) IS NULL`.
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Parameter(name) => write!(f, "${name}"),
            Expr::PatternPredicate(p) => write!(f, "exists({p})"),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "^",
            BinOp::Eq => "=",
            BinOp::Neq => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Xor => "XOR",
            BinOp::In => "IN",
            BinOp::StartsWith => "STARTS WITH",
            BinOp::EndsWith => "ENDS WITH",
            BinOp::Contains => "CONTAINS",
        })
    }
}

impl fmt::Display for NodePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        if let Some(v) = &self.variable {
            write!(f, "{v}")?;
        }
        for l in &self.labels {
            write!(f, ":{l}")?;
        }
        if !self.props.is_empty() {
            if self.variable.is_some() || !self.labels.is_empty() {
                write!(f, " ")?;
            }
            write!(f, "{{")?;
            for (i, (k, v)) in self.props.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k}: {v}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for RelPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use pgq_common::dir::Direction;
        if self.direction == Direction::In {
            write!(f, "<-")?;
        } else {
            write!(f, "-")?;
        }
        let has_body = self.variable.is_some()
            || !self.types.is_empty()
            || self.range.is_some()
            || !self.props.is_empty();
        if has_body {
            write!(f, "[")?;
            if let Some(v) = &self.variable {
                write!(f, "{v}")?;
            }
            for (i, t) in self.types.iter().enumerate() {
                write!(f, "{}{t}", if i == 0 { ":" } else { "|" })?;
            }
            if let Some(r) = &self.range {
                write!(f, "*")?;
                match (r.min, r.max) {
                    (1, None) => {}
                    (min, Some(max)) if min == max => write!(f, "{min}")?,
                    (min, None) => write!(f, "{min}..")?,
                    (min, Some(max)) => write!(f, "{min}..{max}")?,
                }
            }
            if !self.props.is_empty() {
                write!(f, " {{")?;
                for (i, (k, v)) in self.props.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")?;
            }
            write!(f, "]")?;
        }
        if self.direction == Direction::Out {
            write!(f, "->")
        } else {
            write!(f, "-")
        }
    }
}

impl fmt::Display for PathPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = &self.variable {
            write!(f, "{v} = ")?;
        }
        write!(f, "{}", self.start)?;
        for (rel, node) in &self.steps {
            write!(f, "{rel}{node}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.paths.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for ReturnClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", item.expr)?;
            if let Some(a) = &item.alias {
                write!(f, " AS {a}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, (e, asc)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}{}", if *asc { "" } else { " DESC" })?;
            }
        }
        if let Some(s) = &self.skip {
            write!(f, " SKIP {s}")?;
        }
        if let Some(l) = &self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clause::Match {
                optional,
                pattern,
                where_clause,
            } => {
                if *optional {
                    write!(f, "OPTIONAL ")?;
                }
                write!(f, "MATCH {pattern}")?;
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Clause::Unwind { expr, alias } => write!(f, "UNWIND {expr} AS {alias}"),
            Clause::With { body, where_clause } => {
                write!(f, "WITH {body}")?;
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Clause::Create(p) => write!(f, "CREATE {p}"),
            Clause::Delete { detach, exprs } => {
                if *detach {
                    write!(f, "DETACH ")?;
                }
                write!(f, "DELETE ")?;
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            Clause::Set(items) => {
                write!(f, "SET ")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match item {
                        SetItem::Property {
                            variable,
                            key,
                            value,
                        } => write!(f, "{variable}.{key} = {value}")?,
                        SetItem::Labels { variable, labels } => {
                            write!(f, "{variable}")?;
                            for l in labels {
                                write!(f, ":{l}")?;
                            }
                        }
                    }
                }
                Ok(())
            }
            Clause::Remove(items) => {
                write!(f, "REMOVE ")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match item {
                        RemoveItem::Property { variable, key } => write!(f, "{variable}.{key}")?,
                        RemoveItem::Labels { variable, labels } => {
                            write!(f, "{variable}")?;
                            for l in labels {
                                write!(f, ":{l}")?;
                            }
                        }
                    }
                }
                Ok(())
            }
            Clause::Return(r) => write!(f, "RETURN {r}"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_query;

    fn roundtrip(src: &str) {
        let q1 = parse_query(src).unwrap();
        let rendered = q1.to_string();
        let q2 = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of {rendered:?} failed: {e}"));
        assert_eq!(q1, q2, "render/re-parse mismatch for {src:?}");
    }

    #[test]
    fn render_reparse_fixpoint() {
        for src in [
            "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
            "MATCH (a)-[e:KNOWS|LIKES*2..4 {w: 1}]->(b:Person {name: 'Ann'}) RETURN e",
            "MATCH (n) WHERE n.x + 2 * n.y >= 7 AND NOT n:Hot RETURN n.x AS x ORDER BY x DESC SKIP 1 LIMIT 2",
            "CREATE (p:Post {lang: 'en'})-[:REPLY]->(c:Comm)",
            "MATCH (n:Post) SET n.lang = 'de', n:Hot",
            "MATCH (n:Post) REMOVE n.lang, n:Hot",
            "MATCH (n:Post) DETACH DELETE n",
            "MATCH t = (a)-[:R*0..]->(b) UNWIND nodes(t) AS n RETURN DISTINCT n",
            "MATCH (n) WHERE n.s STARTS WITH 'a' OR n.s IS NOT NULL RETURN count(*)",
        ] {
            roundtrip(src);
        }
    }
}
