#![warn(missing_docs)]
//! # pgq-parser
//!
//! An openCypher front-end for the maintainable fragment studied by the
//! paper, built from scratch (the openCypher project publishes a grammar
//! and TCK, but no Rust implementation existed for this fragment).
//!
//! The surface covers:
//!
//! * `MATCH` with full node/relationship patterns: labels, types, inline
//!   property maps, direction, variable-length (`*`, `*2`, `*1..3`)
//!   relationships, and named paths (`MATCH t = (a)-[:R*]->(b)`);
//! * `WHERE` with comparison/boolean/arithmetic/string operators, label
//!   predicates, `IN`, `IS [NOT] NULL` and function calls;
//! * `RETURN` (with `DISTINCT`, aliases, `ORDER BY`, `SKIP`, `LIMIT` —
//!   parsed so the engine can *reject* the non-maintainable ones with a
//!   precise error, and so the baseline evaluator can run them);
//! * `UNWIND` (the paper's path-unwinding feature);
//! * update clauses `CREATE`, `DELETE`/`DETACH DELETE`, `SET`, `REMOVE`;
//! * `WITH` and `OPTIONAL MATCH` are parsed and rejected downstream,
//!   mirroring the paper's explicit limitation list.
//!
//! Entry point: [`parse_query`].

pub mod ast;
pub mod display;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::*;
pub use error::ParseError;
pub use parser::{parse_query, parse_script};
