//! Token vocabulary of the openCypher fragment.

use std::fmt;

/// Reserved words (case-insensitive in source, normalised at lexing).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Kw {
    Match,
    Optional,
    Where,
    Return,
    Distinct,
    Order,
    By,
    Skip,
    Limit,
    Asc,
    Desc,
    Create,
    Merge,
    Delete,
    Detach,
    Set,
    Remove,
    Unwind,
    With,
    As,
    And,
    Or,
    Xor,
    Not,
    In,
    Starts,
    Ends,
    Contains,
    Is,
    Null,
    True,
    False,
    Count,
    Exists,
}

impl Kw {
    /// Keyword lookup from an identifier (already uppercased).
    pub fn from_upper(s: &str) -> Option<Kw> {
        Some(match s {
            "MATCH" => Kw::Match,
            "OPTIONAL" => Kw::Optional,
            "WHERE" => Kw::Where,
            "RETURN" => Kw::Return,
            "DISTINCT" => Kw::Distinct,
            "ORDER" => Kw::Order,
            "BY" => Kw::By,
            "SKIP" => Kw::Skip,
            "LIMIT" => Kw::Limit,
            "ASC" | "ASCENDING" => Kw::Asc,
            "DESC" | "DESCENDING" => Kw::Desc,
            "CREATE" => Kw::Create,
            "MERGE" => Kw::Merge,
            "DELETE" => Kw::Delete,
            "DETACH" => Kw::Detach,
            "SET" => Kw::Set,
            "REMOVE" => Kw::Remove,
            "UNWIND" => Kw::Unwind,
            "WITH" => Kw::With,
            "AS" => Kw::As,
            "AND" => Kw::And,
            "OR" => Kw::Or,
            "XOR" => Kw::Xor,
            "NOT" => Kw::Not,
            "IN" => Kw::In,
            "STARTS" => Kw::Starts,
            "ENDS" => Kw::Ends,
            "CONTAINS" => Kw::Contains,
            "IS" => Kw::Is,
            "NULL" => Kw::Null,
            "TRUE" => Kw::True,
            "FALSE" => Kw::False,
            "COUNT" => Kw::Count,
            "EXISTS" => Kw::Exists,
            _ => return None,
        })
    }
}

/// A lexed token.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Identifier (variable, label, type, property key, function name).
    Ident(String),
    /// Reserved word.
    Keyword(Kw),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `;`
    Semicolon,
    /// `|`
    Pipe,
    /// `-`
    Dash,
    /// `+`
    Plus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^`
    Caret,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `->`
    ArrowRight,
    /// `<-`
    ArrowLeft,
    /// `$`
    Dollar,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Keyword(k) => write!(f, "keyword {k:?}"),
            Tok::Int(i) => write!(f, "integer {i}"),
            Tok::Float(x) => write!(f, "float {x}"),
            Tok::Str(s) => write!(f, "string '{s}'"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::DotDot => write!(f, "`..`"),
            Tok::Semicolon => write!(f, "`;`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Dash => write!(f, "`-`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::Caret => write!(f, "`^`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Neq => write!(f, "`<>`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::ArrowRight => write!(f, "`->`"),
            Tok::ArrowLeft => write!(f, "`<-`"),
            Tok::Dollar => write!(f, "`$`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source offset (byte position).
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Byte offset of the token start in the source string.
    pub offset: usize,
}
