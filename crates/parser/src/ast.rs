//! Abstract syntax tree for the openCypher fragment.

use pgq_common::dir::Direction;
use pgq_common::value::Value;

/// A full query: a sequence of clauses in source order.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// Clauses in source order.
    pub clauses: Vec<Clause>,
}

impl Query {
    /// The `RETURN` clause, if present.
    pub fn return_clause(&self) -> Option<&ReturnClause> {
        self.clauses.iter().find_map(|c| match c {
            Clause::Return(r) => Some(r),
            _ => None,
        })
    }

    /// Does the query contain any update clause?
    pub fn is_update(&self) -> bool {
        self.clauses.iter().any(|c| {
            matches!(
                c,
                Clause::Create(_) | Clause::Delete { .. } | Clause::Set(_) | Clause::Remove(_)
            )
        })
    }
}

/// One top-level clause.
#[derive(Clone, Debug, PartialEq)]
pub enum Clause {
    /// `MATCH` / `OPTIONAL MATCH` with an optional `WHERE`.
    Match {
        /// `OPTIONAL MATCH`? (parsed, rejected by the compiler — the paper
        /// lists OPTIONAL MATCH as future work).
        optional: bool,
        /// The graph pattern.
        pattern: Pattern,
        /// Attached `WHERE` predicate.
        where_clause: Option<Expr>,
    },
    /// `UNWIND expr AS var` — the paper's path-unwinding feature.
    Unwind {
        /// The list/path expression to unwind.
        expr: Expr,
        /// The introduced variable.
        alias: String,
    },
    /// `WITH` projection: re-shapes the bindings mid-query (implemented
    /// as an extension — the paper lists WITH as future work). Only the
    /// projected names remain in scope afterwards.
    With {
        /// The projection body (DISTINCT, items; ORDER BY/SKIP/LIMIT are
        /// rejected downstream).
        body: ReturnClause,
        /// Optional `WHERE` filtering the projected rows (the HAVING
        /// pattern when combined with aggregation).
        where_clause: Option<Expr>,
    },
    /// `CREATE pattern`.
    Create(Pattern),
    /// `DELETE` / `DETACH DELETE`.
    Delete {
        /// Detach (cascade incident edges)?
        detach: bool,
        /// Expressions naming the elements to delete.
        exprs: Vec<Expr>,
    },
    /// `SET` items.
    Set(Vec<SetItem>),
    /// `REMOVE` items.
    Remove(Vec<RemoveItem>),
    /// `RETURN`.
    Return(ReturnClause),
}

/// A comma-separated set of path patterns, e.g. `(a)-[:R]->(b), (c)`.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Pattern {
    /// The constituent path patterns.
    pub paths: Vec<PathPattern>,
}

/// One linear path pattern, optionally named: `t = (a)-[:R*]->(b)`.
#[derive(Clone, Debug, PartialEq)]
pub struct PathPattern {
    /// Path variable (`t` in the running example).
    pub variable: Option<String>,
    /// First node.
    pub start: NodePattern,
    /// Alternating (relationship, node) steps.
    pub steps: Vec<(RelPattern, NodePattern)>,
}

/// A node pattern `(v:Label {key: expr})`.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct NodePattern {
    /// Variable binding, if named.
    pub variable: Option<String>,
    /// Required labels (conjunctive).
    pub labels: Vec<String>,
    /// Inline property constraints.
    pub props: Vec<(String, Expr)>,
}

/// Variable-length bounds of a relationship pattern (`*`, `*2`, `*1..3`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeSpec {
    /// Minimum number of hops.
    pub min: u32,
    /// Maximum number of hops; `None` = unbounded.
    pub max: Option<u32>,
}

impl RangeSpec {
    /// The openCypher default for a bare `*`: one or more hops.
    pub const DEFAULT: RangeSpec = RangeSpec { min: 1, max: None };
}

/// A relationship pattern `-[e:TYPE*1..3 {key: expr}]->`.
#[derive(Clone, Debug, PartialEq)]
pub struct RelPattern {
    /// Variable binding, if named.
    pub variable: Option<String>,
    /// Allowed edge types (disjunctive, `:A|B`); empty = any type.
    pub types: Vec<String>,
    /// Traversal direction relative to the left node.
    pub direction: Direction,
    /// Inline property constraints.
    pub props: Vec<(String, Expr)>,
    /// Variable-length bounds; `None` = single hop.
    pub range: Option<RangeSpec>,
}

impl Default for RelPattern {
    fn default() -> Self {
        RelPattern {
            variable: None,
            types: Vec::new(),
            direction: Direction::Both,
            props: Vec::new(),
            range: None,
        }
    }
}

/// `RETURN` / `WITH` body.
#[derive(Clone, Debug, PartialEq)]
pub struct ReturnClause {
    /// `DISTINCT`?
    pub distinct: bool,
    /// Projected items.
    pub items: Vec<ReturnItem>,
    /// `ORDER BY` keys with ascending flags (parsed; not maintainable).
    pub order_by: Vec<(Expr, bool)>,
    /// `SKIP` expression.
    pub skip: Option<Expr>,
    /// `LIMIT` expression.
    pub limit: Option<Expr>,
}

/// One projected item, `expr [AS alias]`.
#[derive(Clone, Debug, PartialEq)]
pub struct ReturnItem {
    /// The projected expression.
    pub expr: Expr,
    /// Explicit alias.
    pub alias: Option<String>,
}

impl ReturnItem {
    /// The output column name: the alias if given, otherwise the
    /// expression's source text rendering.
    pub fn name(&self) -> String {
        self.alias.clone().unwrap_or_else(|| self.expr.to_string())
    }
}

/// One `SET` item.
#[derive(Clone, Debug, PartialEq)]
pub enum SetItem {
    /// `SET v.key = expr`.
    Property {
        /// Target variable.
        variable: String,
        /// Property key.
        key: String,
        /// New value.
        value: Expr,
    },
    /// `SET v:Label1:Label2`.
    Labels {
        /// Target variable.
        variable: String,
        /// Labels to attach.
        labels: Vec<String>,
    },
}

/// One `REMOVE` item.
#[derive(Clone, Debug, PartialEq)]
pub enum RemoveItem {
    /// `REMOVE v.key`.
    Property {
        /// Target variable.
        variable: String,
        /// Property key.
        key: String,
    },
    /// `REMOVE v:Label1:Label2`.
    Labels {
        /// Target variable.
        variable: String,
        /// Labels to detach.
        labels: Vec<String>,
    },
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Xor,
    In,
    StartsWith,
    EndsWith,
    Contains,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Not,
    Neg,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Variable reference.
    Variable(String),
    /// Property access `base.key`.
    Property(Box<Expr>, String),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Function call `name(args)`; `distinct` applies inside aggregates.
    Function {
        /// Lower-cased function name.
        name: String,
        /// `DISTINCT` flag (aggregates only).
        distinct: bool,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `count(*)`.
    CountStar,
    /// List literal.
    List(Vec<Expr>),
    /// Map literal.
    Map(Vec<(String, Expr)>),
    /// Subscript `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Label predicate `n:Label1:Label2`.
    HasLabel(Box<Expr>, Vec<String>),
    /// `expr IS NULL` (`negated` = `IS NOT NULL`).
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// Parameter `$name` (parsed; rejected by the engine, which does not
    /// implement parameterised views).
    Parameter(String),
    /// `exists((a)-[:R]->(b))` — true iff the pattern has at least one
    /// match. With `NOT` in front this is the negative condition the
    /// Train Benchmark's validation queries use (an *extension* beyond
    /// the paper's fragment, compiled to an incremental anti-/semijoin).
    PatternPredicate(Box<PathPattern>),
}

impl Expr {
    /// Variable at the root of a property access chain, if the expression
    /// is exactly `var.key`.
    pub fn as_var_property(&self) -> Option<(&str, &str)> {
        match self {
            Expr::Property(base, key) => match base.as_ref() {
                Expr::Variable(v) => Some((v.as_str(), key.as_str())),
                _ => None,
            },
            _ => None,
        }
    }

    /// All free variable names referenced by this expression.
    pub fn free_variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Variable(v) => out.push(v.clone()),
            Expr::Property(b, _) => b.collect_vars(out),
            Expr::Binary(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Expr::Unary(_, e) => e.collect_vars(out),
            Expr::Function { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expr::List(items) => {
                for i in items {
                    i.collect_vars(out);
                }
            }
            Expr::Map(entries) => {
                for (_, v) in entries {
                    v.collect_vars(out);
                }
            }
            Expr::Index(b, i) => {
                b.collect_vars(out);
                i.collect_vars(out);
            }
            Expr::HasLabel(b, _) => b.collect_vars(out),
            Expr::IsNull { expr, .. } => expr.collect_vars(out),
            Expr::PatternPredicate(p) => {
                // Only *pattern variables* are free here; property-map
                // expressions inside subpatterns must be literals.
                if let Some(v) = &p.start.variable {
                    out.push(v.clone());
                }
                for (r, n) in &p.steps {
                    if let Some(v) = &r.variable {
                        out.push(v.clone());
                    }
                    if let Some(v) = &n.variable {
                        out.push(v.clone());
                    }
                }
            }
            Expr::Literal(_) | Expr::CountStar | Expr::Parameter(_) => {}
        }
    }

    /// Is this expression an aggregate call (`count`, `sum`, ...)?
    pub fn is_aggregate(&self) -> bool {
        match self {
            Expr::CountStar => true,
            Expr::Function { name, .. } => {
                matches!(
                    name.as_str(),
                    "count" | "sum" | "min" | "max" | "avg" | "collect"
                )
            }
            _ => false,
        }
    }

    /// Does any aggregate call appear anywhere inside?
    pub fn contains_aggregate(&self) -> bool {
        if self.is_aggregate() {
            return true;
        }
        match self {
            Expr::Property(b, _) => b.contains_aggregate(),
            Expr::Binary(_, l, r) => l.contains_aggregate() || r.contains_aggregate(),
            Expr::Unary(_, e) => e.contains_aggregate(),
            Expr::Function { args, .. } => args.iter().any(Expr::contains_aggregate),
            Expr::List(items) => items.iter().any(Expr::contains_aggregate),
            Expr::Map(entries) => entries.iter().any(|(_, v)| v.contains_aggregate()),
            Expr::Index(b, i) => b.contains_aggregate() || i.contains_aggregate(),
            Expr::HasLabel(b, _) => b.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_property_recognition() {
        let e = Expr::Property(Box::new(Expr::Variable("p".into())), "lang".into());
        assert_eq!(e.as_var_property(), Some(("p", "lang")));
        let nested = Expr::Property(Box::new(e), "x".into());
        assert_eq!(nested.as_var_property(), None);
    }

    #[test]
    fn free_variables_deduplicated() {
        let e = Expr::Binary(
            BinOp::Eq,
            Box::new(Expr::Property(
                Box::new(Expr::Variable("p".into())),
                "lang".into(),
            )),
            Box::new(Expr::Property(
                Box::new(Expr::Variable("c".into())),
                "lang".into(),
            )),
        );
        assert_eq!(e.free_variables(), vec!["c".to_string(), "p".to_string()]);
    }

    #[test]
    fn aggregate_detection() {
        let count = Expr::Function {
            name: "count".into(),
            distinct: false,
            args: vec![Expr::Variable("x".into())],
        };
        assert!(count.is_aggregate());
        let wrapped = Expr::Binary(
            BinOp::Add,
            Box::new(count),
            Box::new(Expr::Literal(Value::Int(1))),
        );
        assert!(!wrapped.is_aggregate());
        assert!(wrapped.contains_aggregate());
    }
}
