//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a tiny std-backed subset of the `parking_lot` API surface the
//! codebase actually uses (`RwLock` / `Mutex` with non-poisoning guards).
//! Swap this path dependency for the real crate when a registry is
//! available; call sites need no changes.

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock that, like `parking_lot::RwLock`, never poisons:
/// guards are returned directly rather than wrapped in `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
