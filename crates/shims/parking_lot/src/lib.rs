//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a tiny std-backed subset of the `parking_lot` API surface the
//! codebase actually uses (`RwLock` / `Mutex` / `Condvar` with
//! non-poisoning guard types). Swap this path dependency for the real
//! crate when a registry is available; call sites need no changes.
//!
//! # Send/Sync and poisoning
//!
//! The lock types are thin newtypes over their `std::sync` counterparts,
//! so they inherit std's auto traits exactly: `Mutex<T>`/`RwLock<T>` are
//! `Send`/`Sync` iff `T: Send` (plus `T: Sync` for `RwLock` readers),
//! and the guards are `!Send` (they must unlock on the locking thread)
//! but `Sync` where the protected data is. Like real `parking_lot` —
//! and unlike raw std — a panic while holding a lock never poisons it:
//! every acquisition recovers the inner guard from a `PoisonError`, so
//! the engine's worker pool can propagate a panic without wedging every
//! later transaction. The multi-thread smoke tests in this crate pin
//! both properties down under real contention.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::RwLockWriteGuard as StdWriteGuard;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard as StdReadGuard};

/// A reader-writer lock that, like `parking_lot::RwLock`, never poisons:
/// guards are returned directly rather than wrapped in `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Exclusive guard for [`Mutex`].
///
/// The inner std guard sits in an `Option` only so [`Condvar::wait`] can
/// move it out by value (std's wait signature) and put it back; it is
/// `Some` whenever user code can observe the guard.
pub struct MutexGuard<'a, T: ?Sized>(Option<StdMutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A condition variable with `parking_lot`'s by-reference wait API
/// (std's `Condvar::wait` consumes and returns the guard; this wrapper
/// swaps it through the [`MutexGuard`]'s internal `Option`).
#[derive(Debug, Default)]
pub struct Condvar(StdCondvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(StdCondvar::new())
    }

    /// Blocks until notified, releasing `guard`'s mutex while parked and
    /// re-acquiring it (poison-recovering) before returning. Spurious
    /// wakeups are possible, as with any condvar.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard holds the lock");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Waits until `condition` returns `false` (re-checked after every
    /// wakeup).
    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) {
        while condition(&mut **guard) {
            self.wait(guard);
        }
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    /// Compile-time Send/Sync surface (the properties the IVM worker
    /// pool relies on).
    #[allow(dead_code)]
    fn auto_trait_surface() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mutex<Vec<u64>>>();
        assert_send_sync::<RwLock<Vec<u64>>>();
        assert_send_sync::<Condvar>();
    }

    #[test]
    fn mutex_counts_correctly_under_contention() {
        let m = Arc::new(Mutex::new(0u64));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_readers_see_writer_updates() {
        let l = Arc::new(RwLock::new(vec![0u64; 4]));
        let writer = {
            let l = Arc::clone(&l);
            thread::spawn(move || {
                for i in 1..=100u64 {
                    let mut w = l.write();
                    for slot in w.iter_mut() {
                        *slot = i;
                    }
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..200 {
                        let r = l.read();
                        // A reader must never observe a torn update.
                        assert!(r.iter().all(|&v| v == r[0]));
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for t in readers {
            t.join().unwrap();
        }
        assert_eq!(*l.read(), vec![100u64; 4]);
    }

    #[test]
    fn condvar_ping_pong() {
        let state = Arc::new((Mutex::new(0u32), Condvar::new()));
        let peer = {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                let (m, cv) = &*state;
                for _ in 0..50 {
                    let mut g = m.lock();
                    cv.wait_while(&mut g, |v| *v % 2 == 0);
                    *g += 1;
                    cv.notify_one();
                }
            })
        };
        let (m, cv) = &*state;
        for _ in 0..50 {
            let mut g = m.lock();
            *g += 1;
            cv.notify_one();
            cv.wait_while(&mut g, |v| *v % 2 == 1);
        }
        peer.join().unwrap();
        assert_eq!(*m.lock(), 100);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(7u64));
        let l = Arc::new(RwLock::new(7u64));
        {
            let m = Arc::clone(&m);
            let l = Arc::clone(&l);
            let t = thread::spawn(move || {
                let _g = m.lock();
                let _w = l.write();
                panic!("die while holding both locks");
            });
            assert!(t.join().is_err());
        }
        // Both locks stay usable from other threads afterwards.
        assert_eq!(*m.lock(), 7);
        *m.lock() += 1;
        assert_eq!(*l.read(), 7);
        *l.write() += 1;
        assert_eq!(*m.lock(), 8);
        assert_eq!(*l.write(), 8);
    }
}
