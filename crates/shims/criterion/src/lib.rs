//! Offline shim for `criterion`.
//!
//! crates.io is unreachable from the build environment, so this crate
//! implements the benchmark-harness subset the `pgq_bench` suites use:
//! `Criterion::benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter` / `iter_batched`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Unlike the first cut (wall-clock means only), the shim now reports
//! robust statistics: per-sample timings are collected (with automatic
//! iteration batching for sub-microsecond routines, so one sample is
//! never smaller than the timer's useful resolution) and summarised as
//! **median**, **MAD** (median absolute deviation), mean and min. Two
//! environment variables integrate it with CI and the perf-trajectory
//! tooling:
//!
//! * `PGQ_BENCH_QUICK=1` — smoke mode: overrides sample count and
//!   measurement budget downwards so a full `cargo bench` sweep finishes
//!   in seconds (used by the CI `bench-smoke` job).
//! * `PGQ_BENCH_JSON=<path>` — append one JSON line per benchmark
//!   (`suite`, `bench`, `median_ns`, `mad_ns`, `mean_ns`, `min_ns`,
//!   `samples`, `ops_per_s`) so runs can be diffed and recorded in
//!   `BENCH.json`.
//!
//! Swap the path dependency for the real crate when a registry is
//! available.

use std::fmt::Display;
use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// One sample must take at least this long, or iterations are batched
/// (timer granularity on Linux is tens of ns; 10 µs keeps quantisation
/// error under ~0.5%).
const MIN_SAMPLE_TIME: Duration = Duration::from_micros(10);

/// Is smoke mode (`PGQ_BENCH_QUICK=1`) active?
fn quick_mode() -> bool {
    std::env::var("PGQ_BENCH_QUICK").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// How much setup output to batch per measurement; accepted for API
/// compatibility (the shim always runs setup once per iteration).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchSize {
    /// Few iterations per batch — large inputs.
    #[default]
    LargeInput,
    /// Many iterations per batch — small inputs.
    SmallInput,
    /// One iteration per batch.
    PerIteration,
}

/// Identifier for a parameterised benchmark, mirroring `BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { text: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { text: name }
    }
}

/// Robust summary of one benchmark's samples.
#[derive(Clone, Copy, Debug)]
pub struct SampleStats {
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Median absolute deviation around the median, nanoseconds.
    pub mad_ns: f64,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds.
    pub min_ns: f64,
    /// Number of samples.
    pub samples: usize,
}

impl SampleStats {
    /// Summarise raw per-iteration samples (empty → all-zero stats).
    pub fn from_samples(mut samples: Vec<f64>) -> SampleStats {
        if samples.is_empty() {
            return SampleStats {
                median_ns: 0.0,
                mad_ns: 0.0,
                mean_ns: 0.0,
                min_ns: 0.0,
                samples: 0,
            };
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let median = median_of(&mut samples);
        let mut deviations: Vec<f64> = samples.iter().map(|s| (s - median).abs()).collect();
        let mad = median_of(&mut deviations);
        SampleStats {
            median_ns: median,
            mad_ns: mad,
            mean_ns: mean,
            min_ns: min,
            samples: n,
        }
    }

    /// Iterations per second at the median.
    pub fn ops_per_s(&self) -> f64 {
        if self.median_ns > 0.0 {
            1e9 / self.median_ns
        } else {
            0.0
        }
    }
}

/// Median of a mutable slice (sorted in place; even length averages the
/// two central elements).
fn median_of(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = xs.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Minimal JSON string escaping for benchmark labels.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Append one JSONL record to `PGQ_BENCH_JSON` if the variable is set.
fn report_json(suite: &str, bench: &str, stats: &SampleStats) {
    let Ok(path) = std::env::var("PGQ_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"suite\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.1},\"mad_ns\":{:.1},\
         \"mean_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{},\"ops_per_s\":{:.3}}}\n",
        json_escape(suite),
        json_escape(bench),
        stats.median_ns,
        stats.mad_ns,
        stats.mean_ns,
        stats.min_ns,
        stats.samples,
        stats.ops_per_s(),
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion shim: cannot append to {path}: {e}");
    }
}

/// Top-level harness state, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(150),
            measurement_time: Duration::from_millis(800),
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, |b| f(b));
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to record per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks `f` with no per-iteration input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        // Smoke mode: clamp the budgets so a full sweep stays fast.
        let (sample_size, warm_up, measurement) = if quick_mode() {
            (
                self.sample_size.min(5),
                self.warm_up_time.min(Duration::from_millis(30)),
                self.measurement_time.min(Duration::from_millis(120)),
            )
        } else {
            (self.sample_size, self.warm_up_time, self.measurement_time)
        };
        let mut bencher = Bencher {
            warm_up_time: warm_up,
            measurement_time: measurement,
            sample_size,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(stats) => {
                println!(
                    "bench {label:<48} {:>12.1} ns/iter (median, MAD {:.1}, mean {:.1}, n={})",
                    stats.median_ns, stats.mad_ns, stats.mean_ns, stats.samples
                );
                report_json(&self.name, &id.to_string(), &stats);
            }
            None => println!("bench {label:<48} (no measurement recorded)"),
        }
        self
    }

    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (The shim reports eagerly, so this is a no-op.)
    pub fn finish(self) {}
}

/// Per-benchmark measurement driver handed to benchmark closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    report: Option<SampleStats>,
}

impl Bencher {
    /// Times repeated calls of `routine`, batching iterations per sample
    /// when a single call is too fast to time accurately.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and calibrate the batch size in one pass.
        let warm_up_end = Instant::now() + self.warm_up_time;
        let mut calls = 0u64;
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            calls += 1;
            if Instant::now() >= warm_up_end {
                break;
            }
        }
        let per_call = warm_start
            .elapsed()
            .checked_div(calls as u32)
            .unwrap_or_default();
        let batch = if per_call >= MIN_SAMPLE_TIME {
            1
        } else {
            let per_call_ns = per_call.as_nanos().max(1);
            (MIN_SAMPLE_TIME.as_nanos() / per_call_ns).clamp(1, 1_000_000) as u32
        };
        self.sample(|| {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            (start.elapsed(), batch as u64)
        });
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement, and — matching real criterion's
    /// `iter_batched` semantics — so is dropping the routine's output
    /// (benchmarks returning a whole engine would otherwise be charged
    /// its deallocation). (No batching: each sample is one routine
    /// invocation over a fresh input.)
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            let input = setup();
            black_box(routine(input));
        }
        self.sample(|| {
            let input = setup();
            let start = Instant::now();
            let output = routine(input);
            let elapsed = start.elapsed();
            drop(black_box(output));
            (elapsed, 1)
        });
    }

    /// Collect at least `sample_size` samples, then keep sampling until
    /// the measurement budget is spent — so slow routines still get their
    /// minimum samples and fast ones use the whole budget.
    fn sample<F: FnMut() -> (Duration, u64)>(&mut self, mut timed_once: F) {
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size * 2);
        let deadline = Instant::now() + self.measurement_time;
        while samples.len() < self.sample_size || Instant::now() < deadline {
            let (elapsed, iters) = timed_once();
            samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        self.report = Some(SampleStats::from_samples(samples));
    }
}

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_median_mad_odd() {
        let s = SampleStats::from_samples(vec![1.0, 9.0, 5.0]);
        assert_eq!(s.median_ns, 5.0);
        assert_eq!(s.mad_ns, 4.0);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.samples, 3);
        assert!((s.mean_ns - 5.0).abs() < 1e-9);
    }

    #[test]
    fn stats_median_even_averages() {
        let s = SampleStats::from_samples(vec![1.0, 2.0, 3.0, 10.0]);
        assert_eq!(s.median_ns, 2.5);
        assert_eq!(s.samples, 4);
    }

    #[test]
    fn stats_median_robust_to_outlier() {
        // One 100× outlier should barely move the median while the mean
        // explodes — the reason the reporter quotes medians.
        let mut base = vec![10.0; 99];
        base.push(1000.0);
        let s = SampleStats::from_samples(base);
        assert_eq!(s.median_ns, 10.0);
        assert!(s.mean_ns > 19.0);
        assert_eq!(s.mad_ns, 0.0);
    }

    #[test]
    fn stats_empty_is_zero() {
        let s = SampleStats::from_samples(vec![]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.ops_per_s(), 0.0);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\u0009here");
    }
}
