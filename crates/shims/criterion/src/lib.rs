//! Offline shim for `criterion`.
//!
//! crates.io is unreachable from the build environment, so this crate
//! implements the benchmark-harness subset the `pgq_bench` suites use:
//! `Criterion::benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter` / `iter_batched`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! It measures wall-clock means over `sample_size` samples and prints one
//! line per benchmark — no statistics, plots, or regression reports. Swap
//! the path dependency for the real crate when a registry is available.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How much setup output to batch per measurement; accepted for API
/// compatibility (the shim always runs setup once per iteration).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchSize {
    /// Few iterations per batch — large inputs.
    #[default]
    LargeInput,
    /// Many iterations per batch — small inputs.
    SmallInput,
    /// One iteration per batch.
    PerIteration,
}

/// Identifier for a parameterised benchmark, mirroring `BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { text: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { text: name }
    }
}

/// Top-level harness state, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, |b| f(b));
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to record per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks `f` with no per-iteration input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(mean) => println!("bench {label:<48} {:>12.1} ns/iter", mean),
            None => println!("bench {label:<48} (no measurement recorded)"),
        }
        self
    }

    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (The shim reports eagerly, so this is a no-op.)
    pub fn finish(self) {}
}

/// Per-benchmark measurement driver handed to benchmark closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    report: Option<f64>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.run(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }

    fn run<F: FnMut() -> Duration>(&mut self, mut timed_once: F) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            timed_once();
        }
        // Collect at least `sample_size` samples, then keep sampling until
        // the measurement budget is spent — so slow routines still get their
        // minimum samples and fast ones use the whole budget.
        let mut total = Duration::ZERO;
        let mut samples = 0usize;
        let deadline = Instant::now() + self.measurement_time;
        while samples < self.sample_size || Instant::now() < deadline {
            total += timed_once();
            samples += 1;
        }
        self.report = Some(total.as_nanos() as f64 / samples as f64);
    }
}

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
