//! Offline shim for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements a
//! small, deterministic property-testing engine exposing the subset of the
//! proptest API this workspace's test suites use:
//!
//! - `proptest! { #![proptest_config(..)] #[test] fn f(x in strategy) {..} }`
//! - `Strategy` with `prop_map`, `prop_filter`, `prop_recursive`, `boxed`
//! - `Just`, `any::<T>()`, integer ranges, regex-lite string literals,
//!   tuples, `collection::vec`, `prop_oneof!`
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//!
//! Differences from the real crate: cases are generated from a fixed seed
//! (fully reproducible runs, overridable via `PROPTEST_SHIM_SEED`), and
//! failing cases get **naive minimization** rather than proptest's full
//! shrink tree: each strategy can propose smaller variants of a failing
//! value ([`Strategy::shrink_value`] — integers halve toward their
//! minimum, vectors drop elements and shrink their items, tuples shrink
//! per coordinate; `prop_map`ped strategies are opaque and propose
//! nothing), and the harness greedily re-checks candidates until no
//! proposal fails (budgeted, see [`SHRINK_BUDGET`]). Both the original
//! and the minimized failing inputs are echoed (`Debug`-formatted, one
//! per line), so a property failure is diagnosable without re-running.
//! Reproduce by re-running with the same seed, which regenerates the
//! identical case sequence deterministically. Swap the path dependency
//! for the real crate when a registry is available.

use std::ops::Range;
use std::sync::Arc;

/// Deterministic RNG (xoshiro256**-style) used to drive generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Runtime configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Total `prop_filter` rejections allowed across one property run
    /// before the harness gives up (real proptest's global reject budget).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

thread_local! {
    /// Remaining filter-rejection budget for the property currently running
    /// on this thread; refilled by [`run_property`] from the active config.
    static REJECT_BUDGET: std::cell::Cell<u64> = const { std::cell::Cell::new(65_536) };
}

/// Error raised by `prop_assert!`-style macros; carries the failure message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// `Result` alias used by generated property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Total failing-candidate re-checks allowed while minimizing one
/// failing case (keeps pathological shrink loops bounded).
pub const SHRINK_BUDGET: u32 = 512;

/// A generator of values of type `Self::Value`.
///
/// Generation is a deterministic function of the RNG stream; shrinking
/// is naive and local (see [`Strategy::shrink_value`]).
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Propose strictly "smaller" variants of a failing value, most
    /// aggressive first. The harness re-checks each candidate and
    /// greedily adopts any that still fails. The default proposes
    /// nothing (correct for opaque strategies like `prop_map`).
    fn shrink_value(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects samples for which `f` returns false; regenerates instead.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Builds recursive values: `self` generates leaves, `branch` wraps an
    /// inner strategy into one more level of structure. `depth` bounds the
    /// nesting; the other two knobs are accepted for API compatibility.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _size: u32,
        _items: u32,
        branch: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let branch = Arc::new(move |inner: BoxedStrategy<Self::Value>| branch(inner).boxed());
        Recursive {
            base: self.boxed(),
            branch,
            depth,
        }
    }

    /// Type-erases the strategy into a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Clonable, type-erased strategy handle, mirroring `BoxedStrategy`.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }

    fn shrink_value(&self, value: &T) -> Vec<T> {
        self.0.shrink_value(value)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn shrink_value(&self, value: &S::Value) -> Vec<S::Value> {
        let mut out = self.inner.shrink_value(value);
        out.retain(|v| (self.f)(v));
        out
    }

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Regenerate on rejection, drawing down the run-wide budget so a
        // too-strict filter fails loudly instead of spinning forever.
        loop {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
            let exhausted = REJECT_BUDGET.with(|budget| {
                let left = budget.get();
                budget.set(left.saturating_sub(1));
                left == 0
            });
            if exhausted {
                panic!(
                    "proptest shim: filter `{}` exhausted the global reject \
                     budget (raise ProptestConfig::max_global_rejects)",
                    self.reason
                );
            }
        }
    }
}

/// Strategy produced by [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    branch: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T: 'static> Recursive<T> {
    fn at_depth(&self, depth: u32) -> BoxedStrategy<T> {
        if depth == 0 {
            self.base.clone()
        } else {
            // Mix leaves back in at every level so sizes vary, then wrap.
            let inner = OneOf {
                options: vec![self.base.clone(), self.at_depth(depth - 1)],
            };
            (self.branch)(inner.boxed())
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let depth = rng.below(u64::from(self.depth) + 1) as u32;
        self.at_depth(depth).generate(rng)
    }
}

/// Uniform choice between boxed strategies; backs `prop_oneof!`.
pub struct OneOf<T> {
    /// The alternatives to choose between.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds a uniform choice over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.options.len() as u64) as usize;
        self.options[ix].generate(rng)
    }
}

/// Strategy that always produces a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical strategy, mirroring `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Smaller variants of a failing value (see
    /// [`Strategy::shrink_value`]); defaults to none.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// Canonical strategy for `T`, as returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the canonical strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink_value(&self, value: &T) -> Vec<T> {
        value.shrink()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }

    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

// Bias towards small magnitudes half the time: edge-heavy structures
// (indices, ids, counts near zero) get exercised far more often than with
// fully uniform 64-bit draws. Signed types negate half of the small draws
// so values like -1 show up routinely, not with ~2^-57 probability.
/// Halving-toward-zero integer shrink shared by every int width: `0`
/// first (most aggressive), then the halfway point, then a decrement
/// for small magnitudes so off-by-one minima are reachable.
macro_rules! int_shrink {
    () => {
        fn shrink(&self) -> Vec<Self> {
            let v = *self;
            let mut out = Vec::new();
            if v != 0 {
                out.push(0);
                let half = v / 2;
                if half != 0 && half != v {
                    out.push(half);
                }
                #[allow(unused_comparisons)]
                if v > 0 && v <= 16 {
                    out.push(v - 1);
                }
            }
            out.retain(|c| *c != v);
            out.dedup();
            out
        }
    };
}

macro_rules! impl_arbitrary_int {
    (unsigned: $($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                let raw = rng.next_u64();
                if raw & 1 == 0 {
                    ((raw >> 1) % 64) as $ty
                } else {
                    (rng.next_u64() as u128 | ((rng.next_u64() as u128) << 64)) as $ty
                }
            }

            int_shrink!();
        }
    )*};
    (signed: $($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                let raw = rng.next_u64();
                if raw & 1 == 0 {
                    let small = ((raw >> 2) % 64) as $ty;
                    if raw & 2 == 0 {
                        small
                    } else {
                        small.wrapping_neg()
                    }
                } else {
                    (rng.next_u64() as u128 | ((rng.next_u64() as u128) << 64)) as $ty
                }
            }

            int_shrink!();
        }
    )*};
}

impl_arbitrary_int!(unsigned: u8, u16, u32, u64, u128, usize);
impl_arbitrary_int!(signed: i8, i16, i32, i64, i128, isize);

impl Arbitrary for f64 {
    fn shrink(&self) -> Vec<Self> {
        let v = *self;
        if v != 0.0 && v.is_finite() {
            vec![0.0, v / 2.0]
        } else {
            Vec::new()
        }
    }

    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite-only but wide-ranging: sign * mantissa * 2^exp with
        // exponents spanning subnormal-adjacent to huge. The suites that
        // need NaN/inf handling test those deliberately, not via `any`.
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = (rng.below(129) as i32) - 64;
        sign * mantissa * (2f64).powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + rng.below(95) as u8) as char
    }
}

macro_rules! impl_strategy_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }

            /// Shrink toward the range's lower bound: bound, halfway,
            /// decrement.
            fn shrink_value(&self, value: &$ty) -> Vec<$ty> {
                let v = *value;
                let mut out = Vec::new();
                if v > self.start {
                    out.push(self.start);
                    let half = (self.start as i128 + (v as i128 - self.start as i128) / 2) as $ty;
                    if half != self.start && half != v {
                        out.push(half);
                    }
                    let dec = (v as i128 - 1) as $ty;
                    if dec != self.start && dec != half && dec != v {
                        out.push(dec);
                    }
                }
                out
            }
        }
    )*};
}

impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` literals act as regex-lite string strategies.
///
/// Supported syntax: literal characters, `[a-z0-9_]`-style classes (ranges
/// and singletons, including a literal space), and `{n}` / `{m,n}` / `*` /
/// `+` / `?` quantifiers. This covers every pattern in the workspace's
/// suites; unsupported syntax panics loudly rather than mis-generating.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // 1. one atom: a char class or a literal character
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in {pattern:?}");
                i = close + 1;
                set
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling escape in {pattern:?}");
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '.' | '^' | '$'),
                    "unsupported regex syntax {c:?} in {pattern:?} (shim supports classes + quantifiers)",
                );
                i += 1;
                vec![c]
            }
        };
        // 2. optional quantifier
        let (lo, hi) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse::<usize>().expect("bad {m,n}"),
                            n.trim().parse::<usize>().expect("bad {m,n}"),
                        ),
                        None => {
                            let n = body.trim().parse::<usize>().expect("bad {n}");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        // 3. emit
        let count = if lo == hi {
            lo
        } else {
            lo + rng.below((hi - lo + 1) as u64) as usize
        };
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

/// The empty strategy tuple (zero-argument properties).
impl Strategy for () {
    type Value = ();

    fn generate(&self, _rng: &mut TestRng) {}
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            /// Shrink one coordinate at a time, keeping the rest fixed.
            fn shrink_value(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for c in self.$idx.shrink_value(&value.$idx) {
                        let mut t = value.clone();
                        t.$idx = c;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )+};
}

impl_strategy_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }

        /// Shrink structurally first (front half, back half, then
        /// single-element removals), respecting the minimum length;
        /// then shrink each element in place by its own strategy's
        /// first proposal.
        fn shrink_value(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.len.start;
            let len = value.len();
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            if len > min {
                let half = (len / 2).max(min);
                if half < len {
                    out.push(value[..half].to_vec());
                    out.push(value[len - half..].to_vec());
                }
                for i in (0..len).rev() {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
            for (i, e) in value.iter().enumerate() {
                if let Some(c) = self.element.shrink_value(e).into_iter().next() {
                    let mut v = value.clone();
                    v[i] = c;
                    out.push(v);
                }
            }
            out
        }
    }
}

/// Runs one property: `cases` iterations of generate + check.
///
/// Called by the `proptest!` macro expansion; not part of the public
/// proptest API surface.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // Deterministic per-property seed, overridable for exploration.
    let base = std::env::var("PROPTEST_SHIM_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC0FF_EE00_D15E_A5E5);
    let name_hash: u64 = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    });
    let mut rng = TestRng::seed_from_u64(base ^ name_hash);
    REJECT_BUDGET.with(|budget| budget.set(u64::from(config.max_global_rejects)));
    for case_ix in 0..config.cases {
        if let Err(TestCaseError(msg)) = case(&mut rng) {
            panic!("property `{name}` failed at case {case_ix}: {msg}");
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult, TestRng,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests; see crate docs for the subset.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Renders a caught panic payload for inclusion in a property-failure
/// report. Implementation detail of [`proptest!`].
#[doc(hidden)]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}

/// Identity on a closure, pinning its argument type to the value it
/// will be called with (closure bodies that destructure an inferred
/// tuple otherwise hit E0282). Implementation detail of [`proptest!`].
#[doc(hidden)]
pub fn bind_closure<V, R, F: Fn(&V) -> R>(_witness: &V, f: F) -> F {
    f
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(stringify!($name), &config, |__rng| {
                    // Generate per argument (same RNG order as always),
                    // then pack: minimization operates on the packed
                    // tuple through the tuple strategy, which shrinks
                    // one coordinate at a time.
                    $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)*
                    let mut __vals = ($($arg,)*);
                    let __strats = ($(($strategy),)*);
                    // One re-runnable check over borrowed inputs:
                    // prop_assert failures and panics both count as
                    // failing, so shrink candidates are judged exactly
                    // like the original case.
                    let __check = $crate::bind_closure(&__vals, |__vals| -> $crate::TestCaseResult {
                        let ($($arg,)*) = ::std::clone::Clone::clone(__vals);
                        match ::std::panic::catch_unwind(
                            ::std::panic::AssertUnwindSafe(move || -> $crate::TestCaseResult {
                                $body
                                Ok(())
                            }),
                        ) {
                            Ok(r) => r,
                            Err(payload) => Err($crate::TestCaseError(
                                $crate::panic_message(payload.as_ref()),
                            )),
                        }
                    });
                    let __first_err = match __check(&__vals) {
                        Ok(()) => return Ok(()),
                        Err(e) => e,
                    };
                    let __render = $crate::bind_closure(&__vals, |__vals| {
                        let ($($arg,)*) = __vals;
                        let mut __s = ::std::string::String::new();
                        $(
                            __s.push_str(concat!("  ", stringify!($arg), " = "));
                            __s.push_str(&format!("{:?}\n", $arg));
                        )*
                        __s
                    });
                    let __original = __render(&__vals);
                    // Naive minimization: greedily adopt any
                    // strategy-proposed smaller tuple that still fails,
                    // restarting proposals from the adopted value;
                    // bounded by SHRINK_BUDGET re-checks in total.
                    let mut __last_err = __first_err;
                    let mut __attempts: u32 = 0;
                    'shrink: loop {
                        let __cands =
                            $crate::Strategy::shrink_value(&__strats, &__vals);
                        for __cand in __cands {
                            if __attempts >= $crate::SHRINK_BUDGET {
                                break 'shrink;
                            }
                            __attempts += 1;
                            match __check(&__cand) {
                                Err(__e) => {
                                    // Still failing: keep the smaller
                                    // value, re-propose from it.
                                    __last_err = __e;
                                    __vals = __cand;
                                    continue 'shrink;
                                }
                                Ok(()) => {}
                            }
                        }
                        break 'shrink;
                    }
                    Err($crate::TestCaseError(format!(
                        "{}\nminimized failing inputs ({} shrink attempts):\n{}\
                         original failing inputs:\n{}",
                        __last_err.0, __attempts, __render(&__vals), __original
                    )))
                });
            }
        )*
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: `{:?}`\n{}",
            l,
            format!($($fmt)*)
        );
    }};
}

/// Uniform choice between strategy arms, mirroring `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod shrink_tests {
    use crate as proptest;
    use crate::prelude::*;

    #[test]
    fn int_shrink_halves_toward_zero() {
        assert_eq!(64u64.shrink(), vec![0, 32]);
        assert_eq!(3u64.shrink(), vec![0, 1, 2]);
        assert!(0u64.shrink().is_empty());
        assert_eq!((-40i64).shrink(), vec![0, -20]);
    }

    #[test]
    fn range_shrinks_toward_lower_bound() {
        let s = 10usize..100;
        let c = Strategy::shrink_value(&s, &50);
        assert_eq!(c, vec![10, 30, 49]);
        assert!(Strategy::shrink_value(&s, &10).is_empty());
    }

    #[test]
    fn vec_shrink_pops_and_respects_min_len() {
        let s = crate::collection::vec(0u64..10, 2..6);
        let v = vec![5u64, 6, 7, 8];
        let cands = Strategy::shrink_value(&s, &v);
        // Halves first, then single removals, then element shrinks.
        assert!(cands.contains(&vec![5, 6]));
        assert!(cands.contains(&vec![7, 8]));
        assert!(cands.contains(&vec![5, 6, 7]));
        assert!(cands.iter().all(|c| c.len() >= 2));
        // Minimum-length inputs only shrink elements, never length.
        let cands = Strategy::shrink_value(&s, &vec![5u64, 6]);
        assert!(cands.iter().all(|c| c.len() == 2));
    }

    // A property that fails whenever the vector has >= 3 elements; the
    // harness must minimize to exactly 3 before reporting.
    proptest! {
        #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]
        #[test]
        #[should_panic(expected = "minimized failing inputs")]
        fn failing_vec_property_is_minimized(
            xs in proptest::collection::vec(0u64..100, 0..20),
        ) {
            prop_assert!(xs.len() < 3, "too long: {}", xs.len());
        }
    }

    // Integer failure threshold: anything >= 17 fails, so the harness
    // must walk the value down to 17 exactly (via halving + decrement).
    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]
        #[test]
        #[should_panic(expected = "n = 17")]
        fn failing_int_property_minimizes_to_threshold(n in 0usize..1000) {
            prop_assert!(n < 17);
        }
    }

    // Passing properties must stay silent and never enter the shrink
    // path.
    proptest! {
        #[test]
        fn passing_property_is_untouched(a in 0u64..100, b in 0u64..100) {
            prop_assert!(a < 100 && b < 100);
        }
    }
}
