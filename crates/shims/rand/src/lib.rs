//! Offline shim for the `rand` crate (0.9-style API).
//!
//! crates.io is unreachable from the build environment, so this vendors the
//! small slice of `rand` the workloads use: `SmallRng::seed_from_u64`,
//! `Rng::random_range` / `random_bool`, and `seq::IndexedRandom::choose`.
//! The generator is xoshiro256**, seeded via SplitMix64 — deterministic per
//! seed, which is exactly what the workload generators want. Swap the path
//! dependency for the real crate when a registry is available.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open `lo..hi`).
    ///
    /// Panics when the range is empty, like the real crate.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of RNGs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the real SmallRng does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Uniformly choosing elements from indexable sequences.
    pub trait IndexedRandom {
        /// The element type handed back by [`IndexedRandom::choose`].
        type Output;

        /// Returns a uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}
