//! Offline shim for the `serde` facade.
//!
//! Provides the `Serialize`/`Deserialize` names (marker traits plus no-op
//! derive macros) so types can keep their derives while the build
//! environment has no registry access. See `serde_derive`'s crate docs for
//! the swap-back story.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
