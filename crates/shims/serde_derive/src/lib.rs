//! Offline shim for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatibility marker today — nothing serializes values yet and
//! crates.io is unreachable from the build environment. These derives
//! therefore expand to nothing; replacing the `serde` path dependency with
//! the real crate re-enables full codegen without touching call sites.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`. Accepts (and ignores)
/// `#[serde(...)]` helper attributes so types can carry the annotations
/// the real derive will honour after the swap.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`. Accepts (and ignores)
/// `#[serde(...)]` helper attributes so types can carry the annotations
/// the real derive will honour after the swap.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
