//! Pretty-printers for all three pipeline stages.
//!
//! The single-line GRA/NRA renderings mirror the paper's notation (©, ↑,
//! ⇑, ⋈*, µ, σ, π) and are pinned by the golden tests of experiments
//! E2–E4. The FRA rendering is a multi-line EXPLAIN-style tree with
//! column names substituted into expressions.

use std::fmt;

use pgq_common::intern::Symbol;

use crate::expr::{AggFunc, ScalarExpr};
use crate::fra::Fra;
use crate::gra::{Gra, PathMode, VarLen};
use crate::nra::{GetEdges, Nra};

fn labels_str(labels: &[Symbol]) -> String {
    labels
        .iter()
        .map(|l| format!(":{l}"))
        .collect::<Vec<_>>()
        .join("")
}

fn range_str(range: &VarLen) -> String {
    match (range.min, range.max) {
        (1, None) => "*".to_string(),
        (min, None) => format!("*{min}.."),
        (min, Some(max)) if min == max => format!("*{min}"),
        (min, Some(max)) => format!("*{min}..{max}"),
    }
}

fn types_str(types: &[Symbol]) -> String {
    if types.is_empty() {
        String::new()
    } else {
        format!(
            ":{}",
            types
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join("|")
        )
    }
}

fn edge_pattern(
    src: &str,
    src_labels: &[Symbol],
    types: &[Symbol],
    range: Option<&VarLen>,
    dst: &str,
    dst_labels: &[Symbol],
    dir: pgq_common::dir::Direction,
) -> String {
    use pgq_common::dir::Direction;
    let body = format!(
        "[{}{}]",
        types_str(types),
        range.map(range_str).unwrap_or_default()
    );
    let (l, r) = match dir {
        Direction::Out => ("-", "->"),
        Direction::In => ("<-", "-"),
        Direction::Both => ("-", "-"),
    };
    format!(
        "({src}{}){l}{body}{r}({dst}{})",
        labels_str(src_labels),
        labels_str(dst_labels)
    )
}

impl fmt::Display for Gra {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gra::Unit => write!(f, "1"),
            Gra::GetVertices { var, labels } => {
                write!(f, "©({var}{})", labels_str(labels))
            }
            Gra::Expand {
                input,
                src,
                dst,
                types,
                src_labels,
                dst_labels,
                dir,
                range,
                path,
                ..
            } => {
                let arrow = edge_pattern(
                    src,
                    src_labels,
                    types,
                    range.as_ref(),
                    dst,
                    dst_labels,
                    *dir,
                );
                let path_note = match path {
                    PathMode::None => String::new(),
                    PathMode::Append(t) => format!(", {t}≪"),
                    PathMode::Emit(t) => format!(", path={t}"),
                    PathMode::Concat { into, .. } => format!(", {into}≪"),
                };
                write!(f, "↑[{arrow}{path_note}] ({input})")
            }
            Gra::PathStart { input, node, path } => {
                write!(f, "ι[{path} = ⟨{node}⟩] ({input})")
            }
            Gra::Join { left, right } => write!(f, "({left} ⋈ {right})"),
            Gra::SemiJoin { left, right, anti } => {
                write!(f, "({left} {} {right})", if *anti { "▷" } else { "⋉" })
            }
            Gra::Select { input, predicate } => write!(f, "σ[{predicate}] ({input})"),
            Gra::Project { input, items } => {
                write!(f, "π[")?;
                for (i, (e, name)) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if &e.to_string() == name {
                        write!(f, "{name}")?;
                    } else {
                        write!(f, "{e}→{name}")?;
                    }
                }
                write!(f, "] ({input})")
            }
            Gra::Distinct { input } => write!(f, "δ({input})"),
            Gra::Aggregate { input, group, aggs } => {
                write!(f, "γ[")?;
                for (i, (e, _)) in group.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "; ")?;
                for (i, (e, _)) in aggs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "] ({input})")
            }
            Gra::Unwind { input, expr, alias } => {
                write!(f, "ω[{expr} AS {alias}] ({input})")
            }
        }
    }
}

impl GetEdges {
    fn render(&self, range: Option<&VarLen>) -> String {
        format!(
            "⇑[{}]",
            edge_pattern(
                &self.src,
                &self.src_labels,
                &self.types,
                range,
                &self.dst,
                &self.dst_labels,
                self.dir,
            )
        )
    }
}

impl fmt::Display for Nra {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Nra::Unit => write!(f, "1"),
            Nra::GetVertices { var, labels } => {
                write!(f, "©({var}{})", labels_str(labels))
            }
            Nra::GetEdges(ge) => write!(f, "{}", ge.render(None)),
            Nra::SemiJoin { left, right, anti } => {
                write!(f, "({left} {} {right})", if *anti { "▷" } else { "⋉" })
            }
            Nra::NaturalJoin {
                left,
                right,
                path_append,
            } => match path_append {
                None => write!(f, "({left} ⋈ {right})"),
                Some((t, _, _)) => write!(f, "({left} ⋈[{t}≪] {right})"),
            },
            Nra::TransitiveJoin {
                left,
                edges,
                range,
                path_col,
                concat_into,
                ..
            } => {
                let path_note = match concat_into {
                    Some(t) => format!("{t}≪"),
                    None => format!("path={path_col}"),
                };
                write!(f, "({left} ⋈*[{path_note}] {})", edges.render(Some(range)))
            }
            Nra::PathStart { input, node, path } => {
                write!(f, "ι[{path} = ⟨{node}⟩] ({input})")
            }
            Nra::Unnest {
                input, var, prop, ..
            } => write!(f, "µ[{var}.{prop}] ({input})"),
            Nra::Select { input, predicate } => write!(f, "σ[{predicate}] ({input})"),
            Nra::Project { input, items } => {
                write!(f, "π[")?;
                for (i, (e, name)) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if &e.to_string() == name {
                        write!(f, "{name}")?;
                    } else {
                        write!(f, "{e}→{name}")?;
                    }
                }
                write!(f, "] ({input})")
            }
            Nra::Distinct { input } => write!(f, "δ({input})"),
            Nra::Aggregate { input, group, aggs } => {
                write!(f, "γ[")?;
                for (i, (e, _)) in group.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "; ")?;
                for (i, (e, _)) in aggs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "] ({input})")
            }
            Nra::Unwind { input, expr, alias } => {
                write!(f, "ω[{expr} AS {alias}] ({input})")
            }
        }
    }
}

/// Render a scalar expression substituting column names from `schema`.
pub fn render_expr(e: &ScalarExpr, schema: &[String]) -> String {
    match e {
        ScalarExpr::Col(i) => schema.get(*i).cloned().unwrap_or_else(|| format!("#{i}")),
        ScalarExpr::Lit(v) => v.to_string(),
        ScalarExpr::Binary(op, l, r) => format!(
            "({} {op} {})",
            render_expr(l, schema),
            render_expr(r, schema)
        ),
        ScalarExpr::Unary(pgq_parser::ast::UnOp::Not, x) => {
            format!("(NOT {})", render_expr(x, schema))
        }
        ScalarExpr::Unary(pgq_parser::ast::UnOp::Neg, x) => {
            format!("(-{})", render_expr(x, schema))
        }
        ScalarExpr::Func { name, args } => format!(
            "{name}({})",
            args.iter()
                .map(|a| render_expr(a, schema))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        ScalarExpr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            render_expr(expr, schema),
            if *negated { "NOT " } else { "" }
        ),
        ScalarExpr::List(items) => format!(
            "[{}]",
            items
                .iter()
                .map(|a| render_expr(a, schema))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        ScalarExpr::Map(entries) => format!(
            "{{{}}}",
            entries
                .iter()
                .map(|(k, v)| format!("{k}: {}", render_expr(v, schema)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        ScalarExpr::Index(b, i) => {
            format!("{}[{}]", render_expr(b, schema), render_expr(i, schema))
        }
        ScalarExpr::PathSingle(n) => format!("⟨{}⟩", render_expr(n, schema)),
        ScalarExpr::PathExtend(p, e2, n) => format!(
            "{}·{}·{}",
            render_expr(p, schema),
            render_expr(e2, schema),
            render_expr(n, schema)
        ),
        ScalarExpr::PathConcat(a, b) => {
            format!("{}++{}", render_expr(a, schema), render_expr(b, schema))
        }
    }
}

fn props_str(props: &[crate::fra::PropPush]) -> String {
    if props.is_empty() {
        return String::new();
    }
    format!(
        " {{{}}}",
        props
            .iter()
            .map(|p| format!("{}→{}", p.prop, p.col))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

impl Fra {
    /// Multi-line EXPLAIN rendering with resolved column names.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            Fra::Unit => {
                let _ = writeln!(out, "{pad}Unit");
            }
            Fra::ScanVertices {
                var,
                labels,
                props,
                carry_map,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}©({var}{}{}{})",
                    labels_str(labels),
                    props_str(props),
                    if *carry_map { " +map" } else { "" }
                );
            }
            Fra::ScanEdges {
                src,
                edge,
                dst,
                types,
                src_labels,
                dst_labels,
                src_props,
                edge_props,
                dst_props,
                dir,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}⇑[({src}{}{}){}[{edge}{}{}]{}({dst}{}{})]",
                    labels_str(src_labels),
                    props_str(src_props),
                    if *dir == pgq_common::dir::Direction::In {
                        "<-"
                    } else {
                        "-"
                    },
                    types_str(types),
                    props_str(edge_props),
                    if *dir == pgq_common::dir::Direction::Out {
                        "->"
                    } else {
                        "-"
                    },
                    labels_str(dst_labels),
                    props_str(dst_props),
                );
            }
            Fra::HashJoin {
                left,
                right,
                left_keys,
                ..
            } => {
                let ls = left.schema();
                let keys = left_keys
                    .iter()
                    .map(|&i| ls[i].clone())
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "{pad}⋈[{keys}]");
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Fra::SemiJoin {
                left,
                right,
                left_keys,
                anti,
                ..
            } => {
                let ls = left.schema();
                let keys = left_keys
                    .iter()
                    .map(|&i| ls[i].clone())
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "{pad}{}[{keys}]", if *anti { "▷" } else { "⋉" });
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Fra::VarLengthJoin {
                left,
                src_col,
                spec,
                dst,
                path,
            } => {
                let ls = left.schema();
                let _ = writeln!(
                    out,
                    "{pad}⋈*{}..{}[{} →{} ({}{}{}), path={path}]",
                    spec.min,
                    spec.max.map(|m| m.to_string()).unwrap_or_default(),
                    ls.get(*src_col).cloned().unwrap_or_default(),
                    types_str(&spec.types),
                    dst,
                    labels_str(&spec.dst_labels),
                    props_str(&spec.dst_props),
                );
                left.explain_into(out, depth + 1);
            }
            Fra::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}σ[{}]", render_expr(predicate, &input.schema()));
                input.explain_into(out, depth + 1);
            }
            Fra::Project { input, items } => {
                let schema = input.schema();
                let rendered = items
                    .iter()
                    .map(|(e, n)| {
                        let es = render_expr(e, &schema);
                        if &es == n {
                            es
                        } else {
                            format!("{es}→{n}")
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "{pad}π[{rendered}]");
                input.explain_into(out, depth + 1);
            }
            Fra::Distinct { input } => {
                let _ = writeln!(out, "{pad}δ");
                input.explain_into(out, depth + 1);
            }
            Fra::Aggregate { input, group, aggs } => {
                let schema = input.schema();
                let g = group
                    .iter()
                    .map(|(e, n)| format!("{}→{n}", render_expr(e, &schema)))
                    .collect::<Vec<_>>()
                    .join(", ");
                let a = aggs
                    .iter()
                    .map(|(call, n)| {
                        let arg = call
                            .arg
                            .as_ref()
                            .map(|e| render_expr(e, &schema))
                            .unwrap_or_else(|| "*".into());
                        let func = match call.func {
                            AggFunc::Count | AggFunc::CountStar => "count",
                            AggFunc::Sum => "sum",
                            AggFunc::Min => "min",
                            AggFunc::Max => "max",
                            AggFunc::Avg => "avg",
                            AggFunc::Collect => "collect",
                        };
                        format!(
                            "{func}({}{arg})→{n}",
                            if call.distinct { "DISTINCT " } else { "" }
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "{pad}γ[{g}; {a}]");
                input.explain_into(out, depth + 1);
            }
            Fra::Unwind { input, expr, alias } => {
                let _ = writeln!(
                    out,
                    "{pad}ω[{} AS {alias}]",
                    render_expr(expr, &input.schema())
                );
                input.explain_into(out, depth + 1);
            }
            Fra::MultiwayJoin {
                inputs,
                var_of,
                names,
            } => {
                // Per input, show its columns mapped onto the global
                // variables (the binding order is the variable order).
                let binds = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        var_of[i]
                            .iter()
                            .map(|&v| names.get(v).cloned().unwrap_or_else(|| format!("_v{v}")))
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .collect::<Vec<_>>()
                    .join("; ");
                let _ = writeln!(out, "{pad}⨝ⁿ[order: {}; rels: {binds}]", names.join(" → "));
                for i in inputs {
                    i.explain_into(out, depth + 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::pipeline::compile_query;
    use pgq_parser::parse_query;

    const RUNNING_EXAMPLE: &str =
        "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t";

    #[test]
    fn gra_rendering_of_running_example() {
        let cq = compile_query(&parse_query(RUNNING_EXAMPLE).unwrap()).unwrap();
        let s = cq.gra.to_string();
        assert!(s.contains("©(p:Post)"), "{s}");
        assert!(s.contains("↑["), "{s}");
        assert!(s.contains(":REPLY*"), "{s}");
        assert!(s.starts_with("π[p, t]"), "{s}");
    }

    #[test]
    fn nra_rendering_contains_transitive_join_and_unnest() {
        let cq = compile_query(&parse_query(RUNNING_EXAMPLE).unwrap()).unwrap();
        let s = cq.nra.to_string();
        assert!(s.contains("⋈*"), "{s}");
        assert!(s.contains("⇑["), "{s}");
        assert!(s.contains("µ[p.lang]"), "{s}");
        assert!(s.contains("µ[c.lang]"), "{s}");
    }

    #[test]
    fn fra_explain_shows_pushed_props() {
        let cq = compile_query(&parse_query(RUNNING_EXAMPLE).unwrap()).unwrap();
        let s = cq.fra.explain();
        assert!(s.contains("lang→p.lang"), "{s}");
        assert!(s.contains("lang→c.lang"), "{s}");
        assert!(!s.contains('µ'), "no unnest may remain in FRA:\n{s}");
    }
}
