#![warn(missing_docs)]
//! # pgq-algebra
//!
//! The paper's primary contribution: a compiler from openCypher queries to
//! an incrementally maintainable flat relational algebra, in three stages:
//!
//! 1. [`compile`] — openCypher AST → **GRA** (graph relational algebra
//!    with © get-vertices and ↑ expand-out operators);
//! 2. [`to_nra`] — GRA → **NRA** (expands become joins with the ⇑
//!    get-edges operator, transitive expands become transitive joins ⋈*,
//!    property accesses become explicit µ unnests);
//! 3. [`flatten`] — NRA → **FRA** (query-driven schema inference pushes
//!    the µ-unnested attributes down into the base scans; every operator
//!    becomes flat, positional and graph-independent).
//!
//! [`pipeline::compile_query`] runs all three stages and reports the
//! maintainability verdict (ORDER BY / SKIP / LIMIT mark a query as
//! evaluable-but-not-maintainable, exactly the fragment boundary the
//! paper proposes).
//!
//! Two further modules serve the shared dataflow network that executes
//! FRA incrementally: [`canon`] rewrites plans into an alpha-renamed,
//! commutatively sorted normal form (so `MATCH (a:Post)` and
//! `MATCH (p:Post)` become the *same* subplan), and [`fingerprint`]
//! hashes canonical subplans into the hash-consing key under which the
//! network shares operator nodes across views.

pub mod canon;
pub mod compile;
pub mod error;
pub mod expr;
pub mod fingerprint;
pub mod flatten;
pub mod fra;
pub mod gra;
pub mod nra;
pub mod opt;
pub mod pipeline;
pub mod plan;
pub mod pretty;
pub mod to_nra;

pub use canon::{canonicalize, CanonPlan};
pub use error::AlgebraError;
pub use expr::{AggCall, AggFunc, ScalarExpr};
pub use fingerprint::Fingerprint;
pub use flatten::SchemaMode;
pub use fra::Fra;
pub use gra::{Gra, VarKind};
pub use nra::Nra;
pub use pipeline::{
    compile_bindings, compile_query, compile_query_with, CompileOptions, CompiledQuery,
};
pub use plan::{plan, PlanStats, Planned};
