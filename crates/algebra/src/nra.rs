//! Nested relational algebra (NRA) — the paper's step-2 representation.
//!
//! The key rewrite from GRA (Section 4, step 2 of the paper): expand
//! operators are **not incrementally maintainable**, so each ↑ becomes a
//! natural join with the nullary ⇑ *get-edges* operator, and each
//! transitive ↑* becomes a *transitive join* `⋈*`. Property accesses are
//! made explicit with the attribute-unnest operator µ (`µ c.lang→cL`),
//! which the next stage will push down into the base operators.

use pgq_common::dir::Direction;
use pgq_common::intern::Symbol;
use pgq_parser::ast::Expr;

pub use crate::gra::VarLen;

/// The ⇑ get-edges base relation: triples `(src, edge, dst)`.
#[derive(Clone, Debug, PartialEq)]
pub struct GetEdges {
    /// Source variable.
    pub src: String,
    /// Edge variable.
    pub edge: String,
    /// Target variable.
    pub dst: String,
    /// Admissible edge types (disjunctive; empty = any).
    pub types: Vec<Symbol>,
    /// Labels required on the source (shown as `(p:Post)` in the paper's
    /// ⇑ notation; semantically redundant under the natural join but kept
    /// for display fidelity and for transitive-join source checks).
    pub src_labels: Vec<Symbol>,
    /// Labels required on the target.
    pub dst_labels: Vec<Symbol>,
    /// Orientation.
    pub dir: Direction,
    /// Edge-property equality constraints enforced inside variable-length
    /// traversal (literal-only; general predicates stay in σ).
    pub edge_prop_filters: Vec<(Symbol, pgq_common::value::Value)>,
}

/// An NRA operator tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Nra {
    /// Single empty tuple.
    Unit,
    /// © get-vertices.
    GetVertices {
        /// Bound variable.
        var: String,
        /// Required labels.
        labels: Vec<Symbol>,
    },
    /// ⇑ get-edges.
    GetEdges(GetEdges),
    /// ⋉ / ▷ semijoin / antijoin on shared variable names.
    SemiJoin {
        /// Left input (passed through unchanged).
        left: Box<Nra>,
        /// Existence-tested subplan.
        right: Box<Nra>,
        /// Antijoin?
        anti: bool,
    },
    /// Natural join on shared variable names.
    NaturalJoin {
        /// Left input.
        left: Box<Nra>,
        /// Right input.
        right: Box<Nra>,
        /// When this join implements a single-hop path step of a named
        /// path: `(path, edge, dst)` — after the join, `path` is rebound
        /// to `path ++ edge ++ dst`.
        path_append: Option<(String, String, String)>,
    },
    /// ⋈* transitive join: reachability (with materialised paths) from
    /// `src` over the `edges` base relation.
    TransitiveJoin {
        /// Left input (must bind `src`).
        left: Box<Nra>,
        /// The ⇑ operand.
        edges: GetEdges,
        /// Source variable in the left input.
        src: String,
        /// Bounds.
        range: VarLen,
        /// Output path column (hidden `_p*` name when the query did not
        /// name the path — still needed for bag multiplicity).
        path_col: String,
        /// When the traversal continues a named path: rebind that path to
        /// `concat(path, path_col)` and drop `path_col`.
        concat_into: Option<String>,
        /// Bind this name to `relationships(path)` (Cypher's list-valued
        /// variable on a variable-length relationship).
        rel_alias: Option<String>,
    },
    /// Initialise a named path column.
    PathStart {
        /// Input relation.
        input: Box<Nra>,
        /// Anchor node variable.
        node: String,
        /// Path variable.
        path: String,
    },
    /// µ attribute unnest: make property `var.prop` available as column
    /// `col`.
    Unnest {
        /// Input relation.
        input: Box<Nra>,
        /// Element variable.
        var: String,
        /// Property key.
        prop: Symbol,
        /// Output column name.
        col: String,
    },
    /// σ selection (predicate references variables and unnested columns).
    Select {
        /// Input relation.
        input: Box<Nra>,
        /// Predicate.
        predicate: Expr,
    },
    /// π projection.
    Project {
        /// Input relation.
        input: Box<Nra>,
        /// `(expression, output name)` pairs.
        items: Vec<(Expr, String)>,
    },
    /// δ duplicate elimination.
    Distinct {
        /// Input relation.
        input: Box<Nra>,
    },
    /// γ aggregation.
    Aggregate {
        /// Input relation.
        input: Box<Nra>,
        /// Grouping expressions.
        group: Vec<(Expr, String)>,
        /// Aggregate expressions.
        aggs: Vec<(Expr, String)>,
    },
    /// ω unwind.
    Unwind {
        /// Input relation.
        input: Box<Nra>,
        /// List expression.
        expr: Expr,
        /// Introduced variable.
        alias: String,
    },
}

impl Nra {
    /// Column names bound by this subtree, in schema order.
    pub fn bound_vars(&self) -> Vec<String> {
        match self {
            Nra::Unit => vec![],
            Nra::GetVertices { var, .. } => vec![var.clone()],
            Nra::GetEdges(ge) => vec![ge.src.clone(), ge.edge.clone(), ge.dst.clone()],
            Nra::NaturalJoin { left, right, .. } => {
                let mut v = left.bound_vars();
                for r in right.bound_vars() {
                    if !v.contains(&r) {
                        v.push(r);
                    }
                }
                v
            }
            Nra::TransitiveJoin {
                left,
                edges,
                path_col,
                concat_into,
                rel_alias,
                ..
            } => {
                let mut v = left.bound_vars();
                if !v.contains(&edges.dst) {
                    v.push(edges.dst.clone());
                }
                if concat_into.is_none() {
                    v.push(path_col.clone());
                }
                if let Some(a) = rel_alias {
                    v.push(a.clone());
                }
                v
            }
            Nra::PathStart { input, path, .. } => {
                let mut v = input.bound_vars();
                v.push(path.clone());
                v
            }
            Nra::Unnest { input, col, .. } => {
                let mut v = input.bound_vars();
                v.push(col.clone());
                v
            }
            Nra::SemiJoin { left, .. } => left.bound_vars(),
            Nra::Select { input, .. } | Nra::Distinct { input } => input.bound_vars(),
            Nra::Project { items, .. } => items.iter().map(|(_, n)| n.clone()).collect(),
            Nra::Aggregate { group, aggs, .. } => group
                .iter()
                .map(|(_, n)| n.clone())
                .chain(aggs.iter().map(|(_, n)| n.clone()))
                .collect(),
            Nra::Unwind { input, alias, .. } => {
                let mut v = input.bound_vars();
                v.push(alias.clone());
                v
            }
        }
    }
}
