//! Step 3 of the paper's workflow: flatten NRA to FRA with **query-driven
//! schema inference**.
//!
//! Property graphs have no a-priori schema, so the schema of every nested
//! base relation is inferred from the query itself: the µ unnest operators
//! introduced in step 2 are collected and *pushed down* into the © / ⇑
//! base operators (`©(p:Post{lang→pL})` in the paper's notation). After
//! this pass every operator is flat and positional, and every expression
//! references columns only.
//!
//! The module also implements the **no-push-down ablation**
//! ([`SchemaMode::CarryMaps`]): base scans carry the whole property map as
//! one nested column and property access happens above, which is what a
//! naive flattening without schema inference would do. Experiment E10
//! measures the difference.

use std::collections::{HashMap, HashSet};

use pgq_common::intern::Symbol;
use pgq_parser::ast::Expr;

use crate::error::AlgebraError;
use crate::expr::{AggCall, AggFunc, ScalarExpr};
use crate::fra::{map_col, Fra, PropPush, VarLenSpec};
use crate::gra::VarKind;
use crate::nra::Nra;

/// How base relations obtain the properties the query needs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchemaMode {
    /// The paper's approach: infer the minimal schema and push property
    /// attributes down into the © / ⇑ scans.
    #[default]
    Inferred,
    /// Ablation: carry whole property maps as nested columns and extract
    /// above (no schema inference).
    CarryMaps,
}

/// Flatten `nra` into an executable FRA tree.
pub fn flatten(
    nra: &Nra,
    kinds: &HashMap<String, VarKind>,
    mode: SchemaMode,
) -> Result<Fra, AlgebraError> {
    let mut wanted: HashMap<String, Vec<(Symbol, String)>> = HashMap::new();
    collect_wanted(nra, &mut wanted);
    let mut cx = Cx {
        kinds,
        wanted,
        satisfied: HashSet::new(),
        mode,
        fresh: 0,
    };
    cx.build(nra)
}

fn collect_wanted(nra: &Nra, wanted: &mut HashMap<String, Vec<(Symbol, String)>>) {
    match nra {
        Nra::Unnest {
            input,
            var,
            prop,
            col,
        } => {
            let entry = wanted.entry(var.clone()).or_default();
            if !entry.iter().any(|(_, c)| c == col) {
                entry.push((*prop, col.clone()));
            }
            collect_wanted(input, wanted);
        }
        Nra::NaturalJoin { left, right, .. } => {
            collect_wanted(left, wanted);
            collect_wanted(right, wanted);
        }
        Nra::SemiJoin { left, .. } => collect_wanted(left, wanted),
        Nra::TransitiveJoin { left, .. } => collect_wanted(left, wanted),
        Nra::PathStart { input, .. }
        | Nra::Select { input, .. }
        | Nra::Project { input, .. }
        | Nra::Distinct { input }
        | Nra::Aggregate { input, .. }
        | Nra::Unwind { input, .. } => collect_wanted(input, wanted),
        Nra::Unit | Nra::GetVertices { .. } | Nra::GetEdges(_) => {}
    }
}

struct Cx<'a> {
    kinds: &'a HashMap<String, VarKind>,
    wanted: HashMap<String, Vec<(Symbol, String)>>,
    satisfied: HashSet<String>,
    mode: SchemaMode,
    fresh: usize,
}

fn pos(schema: &[String], name: &str) -> Result<usize, AlgebraError> {
    schema
        .iter()
        .position(|c| c == name)
        .ok_or_else(|| AlgebraError::UnknownVariable(name.to_string()))
}

/// Identity projection items over `schema`.
fn identity(schema: &[String]) -> Vec<(ScalarExpr, String)> {
    schema
        .iter()
        .enumerate()
        .map(|(i, n)| (ScalarExpr::Col(i), n.clone()))
        .collect()
}

impl Cx<'_> {
    fn take_props(&mut self, var: &str) -> Vec<PropPush> {
        if self.mode == SchemaMode::CarryMaps || self.satisfied.contains(var) {
            return Vec::new();
        }
        match self.wanted.get(var) {
            Some(props) if !props.is_empty() => {
                self.satisfied.insert(var.to_string());
                props
                    .iter()
                    .map(|(prop, col)| PropPush {
                        prop: *prop,
                        col: col.clone(),
                    })
                    .collect()
            }
            _ => Vec::new(),
        }
    }

    fn take_map(&mut self, var: &str) -> bool {
        if self.mode != SchemaMode::CarryMaps || self.satisfied.contains(var) {
            return false;
        }
        if self.wanted.get(var).is_some_and(|w| !w.is_empty()) {
            self.satisfied.insert(var.to_string());
            true
        } else {
            false
        }
    }

    fn build(&mut self, nra: &Nra) -> Result<Fra, AlgebraError> {
        Ok(match nra {
            Nra::Unit => Fra::Unit,
            Nra::GetVertices { var, labels } => {
                let props = self.take_props(var);
                let carry_map = self.take_map(var);
                Fra::ScanVertices {
                    var: var.clone(),
                    labels: labels.clone(),
                    props,
                    carry_map,
                }
            }
            Nra::GetEdges(ge) => {
                let src_props = self.take_props(&ge.src);
                let edge_props = self.take_props(&ge.edge);
                let dst_props = self.take_props(&ge.dst);
                let carry_maps = (
                    self.take_map(&ge.src),
                    self.take_map(&ge.edge),
                    self.take_map(&ge.dst),
                );
                let scan = Fra::ScanEdges {
                    src: ge.src.clone(),
                    edge: ge.edge.clone(),
                    dst: ge.dst.clone(),
                    types: ge.types.clone(),
                    src_labels: ge.src_labels.clone(),
                    dst_labels: ge.dst_labels.clone(),
                    src_props,
                    edge_props,
                    dst_props,
                    dir: ge.dir,
                    carry_maps,
                };
                // Edge-property equality filters on single hops are
                // normally σ conjuncts; filters attached to the ⇑ itself
                // (from variable-length patterns lowered to single scans)
                // become a Filter here.
                if ge.edge_prop_filters.is_empty() {
                    scan
                } else {
                    let schema = scan.schema();
                    let mut preds: Vec<ScalarExpr> = Vec::new();
                    for (prop, value) in &ge.edge_prop_filters {
                        // The filter needs the property as a column.
                        let col = crate::to_nra::prop_col(&ge.edge, &prop.resolve());
                        let idx = pos(&schema, &col)?;
                        preds.push(ScalarExpr::Binary(
                            pgq_parser::ast::BinOp::Eq,
                            Box::new(ScalarExpr::Col(idx)),
                            Box::new(ScalarExpr::Lit(value.clone())),
                        ));
                    }
                    let predicate = preds
                        .into_iter()
                        .reduce(|a, b| {
                            ScalarExpr::Binary(
                                pgq_parser::ast::BinOp::And,
                                Box::new(a),
                                Box::new(b),
                            )
                        })
                        .expect("non-empty");
                    Fra::Filter {
                        input: Box::new(scan),
                        predicate,
                    }
                }
            }
            Nra::SemiJoin { left, right, anti } => {
                let l = self.build(left)?;
                let ls = l.schema();
                // Fresh context: the existential branch resolves its own
                // attribute accesses against its own scans.
                let mut wanted = HashMap::new();
                collect_wanted(right, &mut wanted);
                let mut sub = Cx {
                    kinds: self.kinds,
                    wanted,
                    satisfied: HashSet::new(),
                    mode: self.mode,
                    fresh: self.fresh + 1000,
                };
                let r = sub.build(right)?;
                let rs = r.schema();
                let mut left_keys = Vec::new();
                let mut right_keys = Vec::new();
                for (ri, name) in rs.iter().enumerate() {
                    if let Some(li) = ls.iter().position(|c| c == name) {
                        left_keys.push(li);
                        right_keys.push(ri);
                    }
                }
                Fra::SemiJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    left_keys,
                    right_keys,
                    anti: *anti,
                }
            }
            Nra::NaturalJoin {
                left,
                right,
                path_append,
            } => {
                let l = self.build(left)?;
                let r = self.build(right)?;
                let ls = l.schema();
                let rs = r.schema();
                let mut left_keys = Vec::new();
                let mut right_keys = Vec::new();
                for (ri, name) in rs.iter().enumerate() {
                    if let Some(li) = ls.iter().position(|c| c == name) {
                        left_keys.push(li);
                        right_keys.push(ri);
                    }
                }
                let join = Fra::HashJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    left_keys,
                    right_keys,
                };
                match path_append {
                    None => join,
                    Some((path, edge, dst)) => {
                        let schema = join.schema();
                        let pi = pos(&schema, path)?;
                        let ei = pos(&schema, edge)?;
                        let di = pos(&schema, dst)?;
                        let mut items = identity(&schema);
                        items[pi].0 = ScalarExpr::PathExtend(
                            Box::new(ScalarExpr::Col(pi)),
                            Box::new(ScalarExpr::Col(ei)),
                            Box::new(ScalarExpr::Col(di)),
                        );
                        Fra::Project {
                            input: Box::new(join),
                            items,
                        }
                    }
                }
            }
            Nra::TransitiveJoin {
                left,
                edges: ge,
                src,
                range,
                path_col,
                concat_into,
                rel_alias,
            } => {
                let l = self.build(left)?;
                let ls = l.schema();
                let src_col = pos(&ls, src)?;
                let prebound = ls.iter().any(|c| c == &ge.dst);
                let dst_out = if prebound {
                    self.fresh += 1;
                    format!("__dst{}", self.fresh)
                } else {
                    ge.dst.clone()
                };
                let dst_props = self.take_props(&ge.dst);
                let dst_carry_map = self.take_map(&ge.dst);
                let spec = VarLenSpec {
                    types: ge.types.clone(),
                    dir: ge.dir,
                    dst_labels: ge.dst_labels.clone(),
                    dst_props,
                    dst_carry_map,
                    edge_prop_filters: ge.edge_prop_filters.clone(),
                    min: range.min,
                    max: range.max,
                };
                let mut cur = Fra::VarLengthJoin {
                    left: Box::new(l),
                    src_col,
                    spec,
                    dst: dst_out.clone(),
                    path: path_col.clone(),
                };
                if prebound {
                    let schema = cur.schema();
                    let new_i = pos(&schema, &dst_out)?;
                    let old_i = pos(&schema, &ge.dst)?;
                    cur = Fra::Filter {
                        input: Box::new(cur),
                        predicate: ScalarExpr::Binary(
                            pgq_parser::ast::BinOp::Eq,
                            Box::new(ScalarExpr::Col(new_i)),
                            Box::new(ScalarExpr::Col(old_i)),
                        ),
                    };
                    let items = identity(&schema)
                        .into_iter()
                        .filter(|(_, n)| n != &dst_out)
                        .collect();
                    cur = Fra::Project {
                        input: Box::new(cur),
                        items,
                    };
                }
                if let Some(alias) = rel_alias {
                    let schema = cur.schema();
                    let pi = pos(&schema, path_col)?;
                    let mut items = identity(&schema);
                    items.push((
                        ScalarExpr::Func {
                            name: "relationships".into(),
                            args: vec![ScalarExpr::Col(pi)],
                        },
                        alias.clone(),
                    ));
                    cur = Fra::Project {
                        input: Box::new(cur),
                        items,
                    };
                }
                if let Some(into) = concat_into {
                    let schema = cur.schema();
                    let ti = pos(&schema, into)?;
                    let pi = pos(&schema, path_col)?;
                    let mut items = identity(&schema);
                    items[ti].0 = ScalarExpr::PathConcat(
                        Box::new(ScalarExpr::Col(ti)),
                        Box::new(ScalarExpr::Col(pi)),
                    );
                    let items = items.into_iter().filter(|(_, n)| n != path_col).collect();
                    cur = Fra::Project {
                        input: Box::new(cur),
                        items,
                    };
                }
                cur
            }
            Nra::PathStart { input, node, path } => {
                let l = self.build(input)?;
                let schema = l.schema();
                let ni = pos(&schema, node)?;
                let mut items = identity(&schema);
                items.push((
                    ScalarExpr::PathSingle(Box::new(ScalarExpr::Col(ni))),
                    path.clone(),
                ));
                Fra::Project {
                    input: Box::new(l),
                    items,
                }
            }
            Nra::Unnest {
                input,
                var,
                prop,
                col,
            } => {
                let l = self.build(input)?;
                let schema = l.schema();
                if schema.iter().any(|c| c == col) {
                    // Push-down satisfied the request below us.
                    return Ok(l);
                }
                match self.mode {
                    SchemaMode::CarryMaps if schema.iter().any(|c| c == &map_col(var)) => {
                        let mi = pos(&schema, &map_col(var))?;
                        let mut items = identity(&schema);
                        items.push((
                            ScalarExpr::Index(
                                Box::new(ScalarExpr::Col(mi)),
                                Box::new(ScalarExpr::Lit(pgq_common::value::Value::str(
                                    prop.resolve().as_ref(),
                                ))),
                            ),
                            col.clone(),
                        ));
                        Fra::Project {
                            input: Box::new(l),
                            items,
                        }
                    }
                    _ => {
                        // The variable is not bound by any base scan in
                        // *this* subtree (introduced by UNWIND, or its
                        // scan's pushed column was dropped by a WITH
                        // projection): join with an auxiliary © / ⇑ scan
                        // that fetches the missing property.
                        self.join_aux_scan(l, var, *prop, col)?
                    }
                }
            }
            Nra::Select { input, predicate } => {
                let l = self.build(input)?;
                let schema = l.schema();
                let predicate = self.resolve(predicate, &schema)?;
                Fra::Filter {
                    input: Box::new(l),
                    predicate,
                }
            }
            Nra::Project { input, items } => {
                let l = self.build(input)?;
                let schema = l.schema();
                let items = items
                    .iter()
                    .map(|(e, n)| Ok((self.resolve(e, &schema)?, n.clone())))
                    .collect::<Result<_, AlgebraError>>()?;
                Fra::Project {
                    input: Box::new(l),
                    items,
                }
            }
            Nra::Distinct { input } => Fra::Distinct {
                input: Box::new(self.build(input)?),
            },
            Nra::Aggregate { input, group, aggs } => {
                let l = self.build(input)?;
                let schema = l.schema();
                let group = group
                    .iter()
                    .map(|(e, n)| Ok((self.resolve(e, &schema)?, n.clone())))
                    .collect::<Result<Vec<_>, AlgebraError>>()?;
                let aggs = aggs
                    .iter()
                    .map(|(e, n)| Ok((self.resolve_agg(e, &schema)?, n.clone())))
                    .collect::<Result<Vec<_>, AlgebraError>>()?;
                Fra::Aggregate {
                    input: Box::new(l),
                    group,
                    aggs,
                }
            }
            Nra::Unwind { input, expr, alias } => {
                let l = self.build(input)?;
                let schema = l.schema();
                let expr = self.resolve(expr, &schema)?;
                Fra::Unwind {
                    input: Box::new(l),
                    expr,
                    alias: alias.clone(),
                }
            }
        })
    }

    /// Join an auxiliary base scan to obtain a property of a variable not
    /// bound by any scan in the current subtree (an `UNWIND` alias, or a
    /// pushed column dropped by a WITH projection). The scan always
    /// fetches `(prop → col)`, plus any still-unclaimed wanted props of
    /// the variable.
    fn join_aux_scan(
        &mut self,
        left: Fra,
        var: &str,
        prop: Symbol,
        col: &str,
    ) -> Result<Fra, AlgebraError> {
        let kind = self.kinds.get(var).copied();
        let ls = left.schema();
        let li = pos(&ls, var)?;
        let ensure = |mut props: Vec<PropPush>, carry: bool| {
            if !carry && !props.iter().any(|p| p.col == col) {
                props.push(PropPush {
                    prop,
                    col: col.to_string(),
                });
            }
            props
        };
        let right: Fra = match kind {
            Some(VarKind::Node) => {
                let carry_map = self.mode == SchemaMode::CarryMaps || self.take_map(var);
                let props = ensure(self.take_props(var), carry_map);
                Fra::ScanVertices {
                    var: var.to_string(),
                    labels: Vec::new(),
                    props,
                    carry_map,
                }
            }
            Some(VarKind::Rel) => {
                self.fresh += 1;
                let s = format!("__s{}", self.fresh);
                self.fresh += 1;
                let d = format!("__d{}", self.fresh);
                let carry = self.mode == SchemaMode::CarryMaps || self.take_map(var);
                let edge_props = ensure(self.take_props(var), carry);
                Fra::ScanEdges {
                    src: s,
                    edge: var.to_string(),
                    dst: d,
                    types: Vec::new(),
                    src_labels: Vec::new(),
                    dst_labels: Vec::new(),
                    src_props: Vec::new(),
                    edge_props,
                    dst_props: Vec::new(),
                    dir: pgq_common::dir::Direction::Out,
                    carry_maps: (false, carry, false),
                }
            }
            _ => {
                return Err(AlgebraError::NotMaintainable(format!(
                    "property access on `{var}`, whose binding cannot be traced to a \
                     vertex or edge scan"
                )))
            }
        };
        let rs = right.schema();
        let ri = pos(&rs, var)?;
        let join = Fra::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            left_keys: vec![li],
            right_keys: vec![ri],
        };
        // In carry-maps mode the aux scan supplies the whole map; the
        // requested column still needs extracting.
        let schema = join.schema();
        if schema.iter().any(|c| c == col) {
            Ok(join)
        } else {
            let mi = pos(&schema, &map_col(var))?;
            let mut items = identity(&schema);
            items.push((
                ScalarExpr::Index(
                    Box::new(ScalarExpr::Col(mi)),
                    Box::new(ScalarExpr::Lit(pgq_common::value::Value::str(
                        prop.resolve().as_ref(),
                    ))),
                ),
                col.to_string(),
            ));
            Ok(Fra::Project {
                input: Box::new(join),
                items,
            })
        }
    }

    /// Resolve a (rewritten) parser expression to a column-indexed
    /// [`ScalarExpr`] against `schema`.
    pub(crate) fn resolve(&self, e: &Expr, schema: &[String]) -> Result<ScalarExpr, AlgebraError> {
        Ok(match e {
            Expr::Literal(v) => ScalarExpr::Lit(v.clone()),
            Expr::Variable(name) => ScalarExpr::Col(pos(schema, name)?),
            Expr::Property(base, key) => {
                // Only map-valued bases survive to this point (node/rel
                // property accesses were rewritten to columns in step 2).
                let b = self.resolve(base, schema)?;
                ScalarExpr::Index(
                    Box::new(b),
                    Box::new(ScalarExpr::Lit(pgq_common::value::Value::str(key))),
                )
            }
            Expr::Binary(op, l, r) => ScalarExpr::Binary(
                *op,
                Box::new(self.resolve(l, schema)?),
                Box::new(self.resolve(r, schema)?),
            ),
            Expr::Unary(op, x) => ScalarExpr::Unary(*op, Box::new(self.resolve(x, schema)?)),
            Expr::Function {
                name,
                distinct,
                args,
            } => {
                if AggFunc::from_name(name).is_some() {
                    return Err(AlgebraError::InvalidQuery(format!(
                        "aggregate {name}() outside an aggregating RETURN"
                    )));
                }
                if *distinct {
                    return Err(AlgebraError::Unsupported(
                        "DISTINCT inside a non-aggregate function".into(),
                    ));
                }
                ScalarExpr::Func {
                    name: name.clone(),
                    args: args
                        .iter()
                        .map(|a| self.resolve(a, schema))
                        .collect::<Result<_, _>>()?,
                }
            }
            Expr::CountStar => {
                return Err(AlgebraError::InvalidQuery(
                    "count(*) outside an aggregating RETURN".into(),
                ))
            }
            Expr::List(items) => ScalarExpr::List(
                items
                    .iter()
                    .map(|a| self.resolve(a, schema))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Map(entries) => ScalarExpr::Map(
                entries
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), self.resolve(v, schema)?)))
                    .collect::<Result<_, AlgebraError>>()?,
            ),
            Expr::Index(b, i) => ScalarExpr::Index(
                Box::new(self.resolve(b, schema)?),
                Box::new(self.resolve(i, schema)?),
            ),
            Expr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(self.resolve(expr, schema)?),
                negated: *negated,
            },
            Expr::HasLabel(..) => {
                return Err(AlgebraError::NotMaintainable(
                    "nested label predicate".into(),
                ))
            }
            Expr::Parameter(p) => return Err(AlgebraError::Unsupported(format!("parameter ${p}"))),
            Expr::PatternPredicate(_) => {
                return Err(AlgebraError::NotMaintainable(
                    "exists(pattern) nested inside an expression".into(),
                ))
            }
        })
    }

    fn resolve_agg(&self, e: &Expr, schema: &[String]) -> Result<AggCall, AlgebraError> {
        match e {
            Expr::CountStar => Ok(AggCall {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
            }),
            Expr::Function {
                name,
                distinct,
                args,
            } => {
                let func = AggFunc::from_name(name).ok_or_else(|| {
                    AlgebraError::InvalidQuery(format!("{name}() is not an aggregate"))
                })?;
                if args.len() != 1 {
                    return Err(AlgebraError::InvalidQuery(format!(
                        "{name}() takes exactly one argument"
                    )));
                }
                Ok(AggCall {
                    func,
                    arg: Some(self.resolve(&args[0], schema)?),
                    distinct: *distinct,
                })
            }
            other => Err(AlgebraError::InvalidQuery(format!(
                "expected an aggregate call, found {other}"
            ))),
        }
    }
}
